//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API surface it actually uses: `RwLock` / `Mutex` with
//! guard-returning `read()` / `write()` / `lock()` (no `LockResult`
//! plumbing — poisoning is swallowed, which matches parking_lot's
//! poison-free semantics closely enough for this engine).

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1i32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
