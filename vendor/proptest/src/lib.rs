//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API surface its property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, `Just`, `any::<T>()`,
//! range and tuple strategies, character-class string strategies
//! (`"[a-z]{1,8}"`), `prop::collection::vec`, `prop::num::f64::NORMAL`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, all acceptable for these tests:
//! no shrinking (a failing case prints its inputs via the assert message
//! and panics), no persisted failure seeds, and deterministic per-test
//! seeding (derived from the test name) instead of OS entropy, so runs
//! are reproducible by construction. `PROPTEST_CASES` overrides the
//! per-test case count like the real crate.

// ----- RNG ---------------------------------------------------------------

/// The generator handed to strategies (xoshiro256**, seeded from the
/// test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ----- Strategy core -----------------------------------------------------

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A value generator. Object-safe core (`generate`) plus `Sized`
    /// combinators mirroring proptest's names.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: at each of `depth` levels the result
        /// chooses between staying shallow and one more application of
        /// `branch` (proptest's depth-bounded recursion, without its
        /// size accounting — `_desired_size` / `_expected_branch` are
        /// accepted for signature compatibility).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                let deeper = branch(cur.clone()).boxed();
                cur = Union::new(vec![cur, deeper]).boxed();
            }
            cur
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    // Integer / float ranges act as strategies, as in proptest.
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    // Tuples of strategies generate tuples of values.
    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    // String literals are character-class patterns: `[class]{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }
}

// ----- character-class patterns ------------------------------------------

mod pattern {
    use super::TestRng;

    /// Generates a string for a `[class]{m,n}` pattern (`{m}` and a bare
    /// class meaning one repetition also work). Anything else is treated
    /// as a literal.
    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let Some(rest) = pat.strip_prefix('[') else {
            return pat.to_owned();
        };
        let Some(close) = rest.find(']') else {
            return pat.to_owned();
        };
        let class: Vec<char> = expand_class(&rest[..close]);
        assert!(!class.is_empty(), "empty character class in pattern {pat:?}");
        let (lo, hi) = parse_reps(&rest[close + 1..]);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    fn parse_reps(suffix: &str) -> (usize, usize) {
        let Some(body) = suffix.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
            return (1, 1);
        };
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("rep lower bound"),
                hi.trim().parse().expect("rep upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("rep count");
                (n, n)
            }
        }
    }
}

// ----- arbitrary ---------------------------------------------------------

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ----- prop:: modules ----------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for prop::collection::vec");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Normal (finite, non-zero, non-subnormal) doubles.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// proptest-compatible name.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

// ----- runner config -----------------------------------------------------

pub mod test_runner {
    /// The subset of proptest's config the workspace uses.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases per property (`PROPTEST_CASES` overrides).
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Cases to actually run, honoring `PROPTEST_CASES`.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

// ----- macros ------------------------------------------------------------

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts within a property (panics with the formatted inputs; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path (`prop::collection::vec`, `prop::num`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategies_respect_class_and_reps() {
        let mut rng = crate::TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9 _-]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || " _-".contains(c)));
            let t = Strategy::generate(&"[xyz]", &mut rng);
            assert_eq!(t.len(), 1);
            assert!("xyz".contains(&t));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..100).contains(v), "leaf out of strategy range");
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0..100i64).prop_map(Tree::Leaf).prop_recursive(3, 8, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::for_test("recursive");
        for _ in 0..300 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_inputs(
            n in 0..50i64,
            v in prop::collection::vec(any::<bool>(), 0..5),
            s in prop_oneof![Just("fixed".to_owned()), "[ab]{2,3}"],
        ) {
            prop_assert!((0..50).contains(&n));
            prop_assert!(v.len() < 5);
            prop_assert!(s == "fixed" || (2..=3).contains(&s.len()));
        }
    }
}
