//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API surface its benches use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size` / `finish`), `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up briefly, then time a
//! batch sized to fill a measurement window and report mean ns/iter to
//! stdout. No statistics, plots, or target directories. Two env knobs:
//! `BENCH_WARMUP_MS` (default 20) and `BENCH_MEASURE_MS` (default 150).

use std::hint::black_box;
use std::time::{Duration, Instant};

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default),
    )
}

/// How `iter_batched` amortizes setup (shape-compatible; the stub times
/// each routine invocation individually regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects one benchmark's timing.
pub struct Bencher {
    nanos: u128,
    iters: u64,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Bencher { nanos: 0, iters: 0, warmup, measure }
    }

    /// Times `f` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also yields a per-iter estimate for batch sizing.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = (self.measure.as_nanos() / per_iter.max(1)).clamp(1, 100_000_000) as u64;

        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.nanos = t0.elapsed().as_nanos();
        self.iters = batch;
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.warmup + self.measure;
        let mut timed = 0u128;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed().as_nanos();
            iters += 1;
            if Instant::now() >= deadline && iters >= 5 {
                break;
            }
        }
        self.nanos = timed;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no iterations)");
            return;
        }
        let per = self.nanos / u128::from(self.iters);
        println!("{name:<50} time: {:>12}  ({} iters)", fmt_ns(per), self.iters);
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The harness entry point.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warmup: env_ms("BENCH_WARMUP_MS", 20), measure: env_ms("BENCH_MEASURE_MS", 150) }
    }
}

impl Criterion {
    /// Accepts CLI args for drop-in compatibility (ignored: the stub has
    /// no filters or baselines).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(self.warmup, self.measure);
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// Opens a named group; ids inside are prefixed `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// No-op summary hook (criterion_main compatibility).
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's timing loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.c.bench_function(full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("BENCH_WARMUP_MS", "1");
        std::env::set_var("BENCH_MEASURE_MS", "2");
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0u64;
        c.bench_function("t", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = b.iters;
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        std::env::set_var("BENCH_WARMUP_MS", "1");
        std::env::set_var("BENCH_MEASURE_MS", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
