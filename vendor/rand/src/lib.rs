//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset it uses: `rngs::SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `random::<T>()`
//! and `random_range(range)` over integer and float ranges.
//!
//! `SmallRng` is xoshiro256** with a splitmix64-expanded seed — the same
//! construction real `rand` uses on 64-bit targets, so statistical
//! quality is comparable. Streams are *not* bit-compatible with the real
//! crate, which is fine: all in-repo consumers treat the generator as an
//! arbitrary deterministic source.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the single primitive everything else
/// derives from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (`bool`, integers, or `f64`
    /// in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive, integer or
    /// float). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::random`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `x % span` with the multiply-shift trick to avoid low-bit modulo bias
/// artifacts for small spans.
fn widening_mod(x: u64, span: u128) -> u128 {
    ((x as u128) * span) >> 64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the small fast generator `rand` itself uses for
    /// `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, as recommended by the
            // xoshiro authors (never all-zero).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = r.random_range(1..=100i64);
            assert!((1..=100).contains(&v));
            let v = r.random_range(0..7usize);
            assert!(v < 7);
            let f = r.random_range(0.25..=0.5f64);
            assert!((0.25..=0.5).contains(&f));
            let u = r.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_distribution_covers_support() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
