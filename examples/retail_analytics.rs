//! The thesis's end-to-end flow on a laptop-scale dataset: generate
//! TPC-DS data, write dsdgen-style `.dat` files, migrate them with the
//! Fig 4.3 algorithm, denormalize the fact collections (Figs 4.6/4.7),
//! and run the four analytical queries in both data models.
//!
//! Run with `cargo run --release --example retail_analytics`.

use doclite::core::experiment::{build_denormalized, WORKLOAD_TABLES};
use doclite::core::{fmt_duration, migrate_table, run_denormalized, run_normalized, TextTable};
use doclite::docstore::Database;
use doclite::tpcds::{Generator, QueryId, QueryParams, TableId};
use std::time::Instant;

const SF: f64 = 0.005;

fn main() {
    let gen = Generator::new(SF);
    let dir = std::env::temp_dir().join("doclite-retail-example");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. dsdgen: write the pipe-delimited .dat files.
    println!("generating .dat files at SF {SF}…");
    let mut extra = vec![TableId::Reason, TableId::TimeDim];
    extra.extend(WORKLOAD_TABLES);
    for t in &extra {
        let rows = doclite::tpcds::write_table(&dir, &gen, *t).expect("write");
        println!("  {:<24} {:>8} rows", t.name(), rows);
    }

    // 2. Migrate into the document store (thesis Fig 4.3).
    println!("\nmigrating into MongoDB-style collections…");
    let db = Database::new("Dataset_example");
    let mut table = TextTable::new(["table", "rows", "load time", "stored"]);
    for t in &extra {
        let report = migrate_table(&db, &dir, *t).expect("migrate");
        table.row([
            t.name().to_owned(),
            report.rows.to_string(),
            fmt_duration(report.elapsed),
            format!("{:.2} MB", report.stored_bytes as f64 / 1048576.0),
        ]);
    }
    println!("{}", table.render());

    // 3. Denormalize the fact collections (thesis Figs 4.6/4.7).
    println!("denormalizing fact collections…");
    let t0 = Instant::now();
    build_denormalized(&db).expect("denormalize");
    println!("  done in {}", fmt_duration(t0.elapsed()));

    // 4. Run the workload both ways.
    let params = QueryParams::for_scale(SF);
    let mut results = TextTable::new(["query", "normalized", "denormalized", "rows"]);
    for q in QueryId::ALL {
        let t0 = Instant::now();
        let norm = run_normalized(&db, q, &params).expect("normalized");
        let norm_time = t0.elapsed();
        let t0 = Instant::now();
        let den = run_denormalized(&db, q, &params).expect("denormalized");
        let den_time = t0.elapsed();
        assert_eq!(norm.len(), den.len(), "{q}: models disagree");
        results.row([
            q.to_string(),
            fmt_duration(norm_time),
            fmt_duration(den_time),
            den.len().to_string(),
        ]);
    }
    println!("\nquery runtimes (one run, warm):");
    println!("{}", results.render());

    // Show a sample of Query 7's output.
    let params = QueryParams::for_scale(SF);
    let out = run_denormalized(&db, QueryId::Q7, &params).expect("q7");
    println!("Query 7, first rows:");
    for row in out.iter().take(3) {
        println!("  {row}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
