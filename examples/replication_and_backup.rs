//! Redundancy features around the core store: replica sets (write
//! concerns, failover, resync — thesis Section 2.1.3.1's replicated
//! shards) and dump/restore persistence.
//!
//! Run with `cargo run --release --example replication_and_backup`.

use doclite::bson::doc;
use doclite::docstore::{dump_collection, restore_collection, Collection, Filter};
use doclite::sharding::{ReadPreference, ReplicaSet, WriteConcern};

fn main() {
    // --- replica set -----------------------------------------------------
    let rs = ReplicaSet::new("rs0", 3);
    println!(
        "replica set {} with {} members, primary = member {}",
        rs.name(),
        rs.member_count(),
        rs.primary_index()
    );

    for i in 0..100i64 {
        rs.insert_one("orders", doc! {"order" => i, "total" => (i * 7) as f64}, WriteConcern::Majority)
            .expect("write");
    }
    println!(
        "wrote 100 orders with w:majority; secondary read sees {}",
        rs.find("orders", &Filter::True, ReadPreference::Secondary).len()
    );

    // Fail the primary: the set elects a new one and keeps serving.
    let new_primary = rs.fail_member(0).expect("quorum survives");
    println!("primary failed → member {new_primary} elected");
    rs.insert_one("orders", doc! {"order" => 100i64}, WriteConcern::Majority)
        .expect("writes continue");

    // w:all is refused while a member is down…
    let err = rs.insert_one("orders", doc! {"order" => 101i64}, WriteConcern::All);
    println!("w:all with a member down → {}", err.unwrap_err());

    // …until it recovers and resyncs the writes it missed.
    rs.recover_member(0);
    rs.insert_one("orders", doc! {"order" => 101i64}, WriteConcern::All)
        .expect("w:all after recovery");
    println!(
        "member 0 recovered and resynced; healthy members = {}",
        rs.healthy_members()
    );

    // --- dump / restore --------------------------------------------------
    let coll = Collection::new("catalog");
    coll.insert_many((0..1000i64).map(|i| doc! {"_id" => i, "sku" => format!("SKU{i:05}")}))
        .expect("seed");
    let path = std::env::temp_dir().join("doclite-backup.dump");
    let dumped = dump_collection(&coll, &path).expect("dump");

    let restored = Collection::new("catalog_restored");
    let n = restore_collection(&restored, &path).expect("restore");
    assert_eq!(dumped, n);
    assert_eq!(
        coll.find(&Filter::eq("_id", 500i64)),
        restored.find(&Filter::eq("_id", 500i64))
    );
    println!(
        "dumped {} docs to {} ({} bytes) and restored them intact",
        dumped,
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    let _ = std::fs::remove_file(&path);
}
