//! Quickstart: the document store's public API in two minutes —
//! databases, collections, inserts, indexes, filters, updates, and an
//! aggregation pipeline.
//!
//! Run with `cargo run --example quickstart`.

use doclite::bson::{doc, Value};
use doclite::docstore::{
    Accumulator, Database, Expr, Filter, FindOptions, GroupId, IndexDef, Pipeline, UpdateSpec,
};

fn main() {
    // Databases and collections spring into being on first use, like
    // MongoDB's implicit creation.
    let db = Database::new("bookstore");
    let books = db.collection("books");

    // Documents are schemaless: embedded documents and arrays nest freely
    // (the thesis's Fig 2.3 embedded data model).
    books
        .insert_many([
            doc! {
                "title" => "MongoDB", "pages" => 216i64, "price" => 31.99f64,
                "publisher" => doc! {"name" => "O'Reilly Media", "founded" => 1978i64},
            },
            doc! {
                "title" => "Java in a Nutshell", "pages" => 418i64, "price" => 39.99f64,
                "publisher" => doc! {"name" => "O'Reilly Media", "founded" => 1978i64},
            },
            doc! {
                "title" => "Designing Data-Intensive Applications", "pages" => 616i64, "price" => 44.99f64,
                "publisher" => doc! {"name" => "O'Reilly Media", "founded" => 1978i64},
            },
            doc! {
                "title" => "The C Programming Language", "pages" => 272i64, "price" => 54.99f64,
                "publisher" => doc! {"name" => "Prentice Hall", "founded" => 1913i64},
            },
        ])
        .expect("inserts");

    // Filters navigate embedded documents with dotted paths.
    let oreilly = books.find(&Filter::eq("publisher.name", "O'Reilly Media"));
    println!("O'Reilly titles: {}", oreilly.len());

    // Secondary indexes accelerate lookups; explain() shows the plan.
    books.create_index(IndexDef::single("pages")).expect("index");
    let explain = books.explain(&Filter::gt("pages", 400i64));
    println!(
        "plan: {} (examined {}, returned {})",
        explain.plan, explain.docs_examined, explain.docs_returned
    );

    // Updates: $set / $inc with multi semantics.
    books
        .update(
            &Filter::lt("pages", 300i64),
            &UpdateSpec::set("format", "pocket").and_inc("price", -5.0),
            false,
            true,
        )
        .expect("update");

    // find with sort / limit / projection.
    let cheapest = books.find_with(
        &Filter::True,
        &FindOptions::new().sort_by("price", 1).with_limit(1).include("title").include("price"),
    );
    println!("cheapest: {}", cheapest[0]);

    // Aggregation pipeline: $match → $group → $sort.
    let by_publisher = db
        .aggregate(
            "books",
            &Pipeline::new()
                .match_stage(Filter::gt("price", 20.0f64))
                .group(
                    GroupId::Expr(Expr::field("publisher.name")),
                    [
                        ("titles", Accumulator::count()),
                        ("avg_price", Accumulator::avg_field("price")),
                        ("total_pages", Accumulator::sum_field("pages")),
                    ],
                )
                .sort([("titles", -1)]),
        )
        .expect("aggregate");
    println!("\nper publisher:");
    for row in &by_publisher {
        println!("  {row}");
    }

    let total: Value = Value::Int64(books.len() as i64);
    println!("\n{} documents, {} bytes stored", total, books.data_size());
}
