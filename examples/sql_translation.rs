//! SQL → document-store translation: parse the dsqgen text of Query 7,
//! translate it mechanically against the denormalized model, and show
//! the resulting pipeline and its answer — the thesis's "algorithm to
//! translate SQL queries to Mongo queries" as a library call.
//!
//! Run with `cargo run --release --example sql_translation`.

use doclite::core::experiment::{
    setup_environment, DataModel, Deployment, ExperimentSpec, SetupOptions,
};
use doclite::core::translate::translate_denormalized;
use doclite::sharding::NetworkModel;
use doclite::sql::parse;
use doclite::tpcds::{sql_text, QueryId, QueryParams};

const SF: f64 = 0.005;

fn main() {
    let params = QueryParams::for_scale(SF);
    let sql = sql_text(QueryId::Q7, &params);
    println!("— SQL (as dsqgen emits it) —\n{sql}\n");

    // Parse with the doclite-sql recursive-descent parser.
    let stmt = parse(&sql).expect("parse");
    println!(
        "parsed: {} select items, {} tables, group by {}, order by {}",
        stmt.items.len(),
        stmt.from.len(),
        stmt.group_by.len(),
        stmt.order_by.len()
    );

    // Translate against the denormalized model.
    let t = translate_denormalized(&stmt).expect("translate");
    println!("\n— translated pipeline against `{}` —", t.source);
    for (i, stage) in t.pipeline.stages().iter().enumerate() {
        let name = match stage {
            doclite::docstore::Stage::Match(_) => "$match",
            doclite::docstore::Stage::Group { .. } => "$group",
            doclite::docstore::Stage::Sort(_) => "$sort",
            doclite::docstore::Stage::Project(_) => "$project",
            doclite::docstore::Stage::Limit(_) => "$limit",
            doclite::docstore::Stage::Skip(_) => "$skip",
            doclite::docstore::Stage::Unwind(_) => "$unwind",
            doclite::docstore::Stage::Lookup { .. } => "$lookup",
            doclite::docstore::Stage::Count(_) => "$count",
            doclite::docstore::Stage::Out(_) => "$out",
        };
        println!("  stage {i}: {name}");
    }

    // Build a denormalized environment and execute.
    println!("\nloading SF {SF} dataset and denormalizing…");
    let env = setup_environment(
        &ExperimentSpec {
            id: 3,
            sf: SF,
            model: DataModel::Denormalized,
            deployment: Deployment::Standalone,
        },
        &SetupOptions { network: NetworkModel::free(), max_chunk_size: 1 << 20, ..SetupOptions::default() },
    )
    .expect("setup");

    let out = env
        .store()
        .aggregate(&t.source, &t.pipeline)
        .expect("aggregate");
    println!("translated Query 7 returned {} rows; first rows:", out.len());
    for row in out.iter().take(5) {
        println!("  {row}");
    }

    // Self-join queries fall back to hand translations, with a clear error.
    let q50 = parse(&sql_text(QueryId::Q50, &params)).expect("parse q50");
    match translate_denormalized(&q50) {
        Err(e) => println!("\nQuery 50 (self-join form): {e} → use doclite::core::queries::q50"),
        Ok(_) => unreachable!("Q50 requires the hand translation"),
    }
}
