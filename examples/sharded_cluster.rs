//! A 3-shard cluster end to end: shard a fact collection, watch chunks
//! split and balance, and contrast targeted routing against
//! scatter-gather broadcast — the mechanism behind the thesis's
//! Section 4.3 observations.
//!
//! Run with `cargo run --release --example sharded_cluster`.

use doclite::docstore::Filter;
use doclite::sharding::{NetworkModel, ShardKey, ShardedCluster};
use doclite::tpcds::{Generator, TableId};

fn main() {
    // The thesis's cluster: 3 shards, 1 config server, 1 mongos
    // (Fig 3.1). The network model stands in for the EC2 links.
    let cluster = ShardedCluster::new(3, "Dataset_1GB", NetworkModel::lan());

    // Shard store_sales on ticket number with a small chunk threshold so
    // this example's data splits into many chunks.
    cluster
        .shard_collection("store_sales", ShardKey::range(["ss_ticket_number"]), 256 * 1024)
        .expect("shard");

    // Load a slice of TPC-DS sales through the router.
    let gen = Generator::new(0.005);
    let router = cluster.router();
    let n = router
        .insert_many("store_sales", gen.documents(TableId::StoreSales).collect::<Vec<_>>())
        .expect("load");
    println!("loaded {n} sale lines through mongos");

    let meta = router.config().meta("store_sales").expect("sharded");
    println!("chunks after load: {}", meta.chunks.len());
    for (shard, chunks) in meta.chunks_per_shard() {
        println!("  Shard{}: {chunks} chunk(s)", shard + 1);
    }

    // Balance: move chunks until the spread is within threshold.
    let migrations = cluster.balance().expect("balance");
    println!("\nbalancer performed {migrations} migration(s)");
    let meta = router.config().meta("store_sales").expect("sharded");
    for (shard, chunks) in meta.chunks_per_shard() {
        let docs = router.shards()[shard]
            .db()
            .get_collection("store_sales")
            .map(|c| c.len())
            .unwrap_or(0);
        println!("  Shard{}: {chunks} chunk(s), {docs} docs", shard + 1);
    }

    // Targeted: the filter carries the shard key → one shard.
    let targeted = router.explain_targeting("store_sales", &Filter::eq("ss_ticket_number", 42i64));
    println!(
        "\nfind {{ss_ticket_number: 42}} → {} (shards {:?})",
        if targeted.is_targeted() { "TARGETED" } else { "BROADCAST" },
        targeted.shards()
    );

    // Broadcast: predicate on a non-key field → every shard.
    let broadcast = router.explain_targeting("store_sales", &Filter::eq("ss_quantity", 10i64));
    println!(
        "find {{ss_quantity: 10}}      → {} (shards {:?})",
        if broadcast.is_targeted() { "TARGETED" } else { "BROADCAST" },
        broadcast.shards()
    );

    // The simulated network ledger shows what the cluster paid.
    let stats = router.net_stats();
    println!(
        "\nnetwork: {} exchanges, {:.2} MB transferred, {:.1} ms serial / {:.1} ms parallel",
        stats.exchanges(),
        stats.bytes() as f64 / 1048576.0,
        stats.serial_time().as_secs_f64() * 1e3,
        stats.parallel_time().as_secs_f64() * 1e3,
    );

    // Run the two finds for real and show result parity.
    let hit = router.find("store_sales", &Filter::eq("ss_ticket_number", 42i64));
    let scan = router.find("store_sales", &Filter::eq("ss_quantity", 10i64));
    println!(
        "\ntargeted find returned {} line(s); broadcast find returned {} line(s); total stored {}",
        hit.len(),
        scan.len(),
        router.collection_len("store_sales"),
    );
}
