//! The full Table 4.1 experiment matrix at laptop scale: six setups,
//! four queries each, printed in the format of thesis Table 4.5.
//!
//! Run with `cargo run --release --example experiments`.
//! Environment knobs: `DOCLITE_SF_SMALL` / `DOCLITE_SF_LARGE` override the
//! two scale factors (defaults 0.005 / 0.025, keeping the paper's 1:5).

use doclite::core::experiment::{run_experiment, ExperimentSpec, SetupOptions};
use doclite::core::{fmt_duration, TextTable};
use doclite::tpcds::QueryId;

fn env_sf(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let small = env_sf("DOCLITE_SF_SMALL", 0.005);
    let large = env_sf("DOCLITE_SF_LARGE", 0.025);
    let opts = SetupOptions::default();
    let runs = 3;

    println!("experimental setups (thesis Table 4.1), SF {small} / {large}:");
    let specs = ExperimentSpec::table_4_1(small, large);
    for s in &specs {
        println!("  {} — {}", s.label(), s.describe());
    }
    println!();

    let mut table = TextTable::new(["", "Query 7", "Query 21", "Query 46", "Query 50"]);
    for spec in &specs {
        eprintln!("running {} ({})…", spec.label(), spec.describe());
        let timings = run_experiment(spec, &opts, runs).expect("experiment");
        let mut cells = vec![spec.label()];
        for q in QueryId::ALL {
            let t = timings
                .iter()
                .find(|t| t.query == q)
                .expect("all queries timed");
            cells.push(fmt_duration(t.best));
        }
        table.row(cells);
    }

    println!("\nquery execution runtimes (best of {runs}, as thesis Table 4.5):");
    println!("{}", table.render());
    println!("reading guide (expected shape, Section 4.3):");
    println!("  • Experiments 3/6 (denormalized) fastest for every query");
    println!("  • Experiments 2/5 (stand-alone) beat 1/4 (sharded) for Q7/Q21/Q46");
    println!("  • Query 50 inverts: its predicates carry the shard key");
}
