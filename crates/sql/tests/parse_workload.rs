//! The parser must accept all four thesis queries exactly as the
//! tpcds catalog emits them (dsqgen-style text).

use doclite_sql::{parse, SelectStmt};
use doclite_tpcds::{sql_text, QueryId, QueryParams};

fn parsed(q: QueryId) -> SelectStmt {
    let p = QueryParams::for_scale(1.0);
    let sql = sql_text(q, &p);
    parse(&sql).unwrap_or_else(|e| panic!("{q}: {e}\n{sql}"))
}

#[test]
fn query_7_shape() {
    let s = parsed(QueryId::Q7);
    assert_eq!(s.from.len(), 5);
    assert_eq!(s.items.len(), 5); // i_item_id + 4 aggregates
    assert!(s.has_aggregates());
    assert_eq!(s.group_by.len(), 1);
    assert_eq!(s.order_by.len(), 1);
    assert_eq!(
        s.base_tables(),
        vec!["store_sales", "customer_demographics", "date_dim", "item", "promotion"]
    );
}

#[test]
fn query_21_shape() {
    let s = parsed(QueryId::Q21);
    // outer: select * from (subquery) x where … order by …
    assert_eq!(s.from.len(), 1);
    assert!(matches!(&s.from[0], doclite_sql::FromItem::Subquery { alias, .. } if alias == "x"));
    assert_eq!(s.base_tables(), vec!["inventory", "warehouse", "item", "date_dim"]);
    assert!(s.where_clause.is_some());
    assert_eq!(s.order_by.len(), 2);
}

#[test]
fn query_46_shape() {
    let s = parsed(QueryId::Q46);
    assert_eq!(s.from.len(), 3); // dn, customer, customer_address current_addr
    assert_eq!(s.items.len(), 7);
    assert_eq!(
        s.base_tables(),
        vec![
            "store_sales",
            "date_dim",
            "store",
            "household_demographics",
            "customer_address",
            "customer",
            "customer_address"
        ]
    );
}

#[test]
fn query_50_shape() {
    let s = parsed(QueryId::Q50);
    assert_eq!(s.from.len(), 5);
    assert_eq!(s.items.len(), 15); // 10 store columns + 5 day buckets
    assert_eq!(s.group_by.len(), 10);
    assert_eq!(s.order_by.len(), 7);
    // The bucketed aggregates carry quoted aliases.
    let aliases: Vec<_> = s
        .items
        .iter()
        .filter_map(|i| match i {
            doclite_sql::SelectItem::Expr { alias: Some(a), .. } => Some(a.as_str()),
            _ => None,
        })
        .collect();
    assert!(aliases.contains(&"30 days"));
    assert!(aliases.contains(&">120 days"));
}

#[test]
fn workload_queries_roundtrip_through_display() {
    let p = QueryParams::for_scale(1.0);
    for q in QueryId::ALL {
        let ast = parsed(q);
        let rendered = ast.to_string();
        let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("{q}: {e}\n{rendered}"));
        assert_eq!(ast, reparsed, "{q}: display/parse roundtrip changed the AST");
        // And the original text still parses to the same AST.
        assert_eq!(parse(&sql_text(q, &p)).unwrap(), ast, "{q}");
    }
}
