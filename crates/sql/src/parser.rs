//! Recursive-descent parser for the analytical SQL subset.

use crate::ast::{BinOp, FromItem, OrderItem, SelectItem, SelectStmt, SqlExpr};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.to_string() }
    }
}

/// Parses one SELECT statement from SQL text.
pub fn parse(sql: &str) -> Result<SelectStmt, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.eat_if(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("trailing tokens starting at {}", p.peek_desc())));
    }
    Ok(stmt)
}

/// Keywords that terminate an alias-less expression list.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "and", "or", "not", "in", "between", "as",
    "case", "when", "then", "else", "end", "cast", "is", "null", "by", "asc", "desc", "having",
    "limit", "on", "join", "inner", "left", "right", "union",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek().map_or("<eof>".to_owned(), |t| t.to_string())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.eat_if(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek_desc())))
        }
    }

    /// True if the next token is the keyword (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {}", self.peek_desc())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map_or("<eof>".to_owned(), |t| t.to_string())
            ))),
        }
    }

    // -------- statement --------

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat_if(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat_if(&Token::Comma) {
            from.push(self.parse_from_item()?);
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            order_by.push(self.order_item()?);
            while self.eat_if(&Token::Comma) {
                order_by.push(self.order_item()?);
            }
        }
        Ok(SelectStmt { items, from, where_clause, group_by, order_by })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_if(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        let expr = self.expr()?;
        let alias = self.maybe_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn maybe_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => {
                let alias = s.clone();
                self.pos += 1;
                Ok(Some(alias))
            }
            Some(Token::QuotedIdent(s)) => {
                let alias = s.clone();
                self.pos += 1;
                Ok(Some(alias))
            }
            _ => Ok(None),
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem, ParseError> {
        if self.eat_if(&Token::LParen) {
            let query = self.select_stmt()?;
            self.expect(&Token::RParen)?;
            let alias = self
                .maybe_alias()?
                .ok_or_else(|| self.err("derived table requires an alias"))?;
            return Ok(FromItem::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = self.maybe_alias()?;
        Ok(FromItem::Table { name, alias })
    }

    fn order_item(&mut self) -> Result<OrderItem, ParseError> {
        let expr = self.expr()?;
        let ascending = if self.eat_kw("desc") {
            false
        } else {
            self.eat_kw("asc");
            true
        };
        Ok(OrderItem { expr, ascending })
    }

    // -------- expressions --------

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_kw("not") {
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr, ParseError> {
        let left = self.additive()?;
        if let Some(op) = self.comparison_op() {
            let right = self.additive()?;
            return Ok(SqlExpr::binary(op, left, right));
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_if(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(SqlExpr::InList { expr: Box::new(left), list });
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull { expr: Box::new(left), negated });
        }
        Ok(left)
    }

    fn comparison_op(&mut self) -> Option<BinOp> {
        let op = match self.peek()? {
            Token::Eq => BinOp::Eq,
            Token::Neq => BinOp::Neq,
            Token::Lt => BinOp::Lt,
            Token::Lte => BinOp::Lte,
            Token::Gt => BinOp::Gt,
            Token::Gte => BinOp::Gte,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn additive(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let mut right = self.multiplicative()?;
            // `<date expr> - 30 days`: the `days` keyword promotes the
            // operand to an interval (TPC-DS date arithmetic).
            if self.eat_kw("days") || self.eat_kw("day") {
                right = SqlExpr::IntervalDays(Box::new(right));
            }
            left = SqlExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = SqlExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<SqlExpr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(SqlExpr::Number(n))
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(SqlExpr::String(s))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.primary()?;
                Ok(SqlExpr::binary(BinOp::Sub, SqlExpr::Number(0.0), inner))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                if id.eq_ignore_ascii_case("case") {
                    return self.case_expr();
                }
                if id.eq_ignore_ascii_case("cast") {
                    return self.cast_expr();
                }
                if id.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(SqlExpr::Null);
                }
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&Token::LParen) && !is_reserved(&id) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        if self.eat_if(&Token::Star) {
                            // count(*)
                            args.push(SqlExpr::Number(1.0));
                        } else {
                            args.push(self.expr()?);
                            while self.eat_if(&Token::Comma) {
                                args.push(self.expr()?);
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::Func { name: id.to_ascii_lowercase(), args });
                }
                // Qualified column?
                if self.eat_if(&Token::Dot) {
                    let name = self.ident()?;
                    return Ok(SqlExpr::qcol(id, name));
                }
                Ok(SqlExpr::col(id))
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map_or("<eof>".to_owned(), |t| t.to_string())
            ))),
        }
    }

    fn case_expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expect_kw("case")?;
        let mut whens = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let value = self.expr()?;
            whens.push((cond, value));
        }
        if whens.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(SqlExpr::Case { whens, else_expr })
    }

    fn cast_expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expect_kw("cast")?;
        self.expect(&Token::LParen)?;
        let expr = self.expr()?;
        self.expect_kw("as")?;
        let ty = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok(SqlExpr::Cast { expr: Box::new(expr), ty: ty.to_ascii_lowercase() })
    }
}

fn is_reserved(s: &str) -> bool {
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse("select a, b.c x from t1, t2 alias where a = 1 and b.c <> 'z'").unwrap();
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "x"
        ));
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].binding_name(), "alias");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn aggregates_group_order() {
        let s = parse(
            "select k, avg(v) a1, sum(v) s1 from t group by k order by k desc, a1",
        )
        .unwrap();
        assert!(s.has_aggregates());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert!(s.order_by[1].ascending);
    }

    #[test]
    fn case_when_and_quoted_alias() {
        let s = parse(
            r#"select sum(case when a - b <= 30 then 1 else 0 end) as "30 days" from t"#,
        )
        .unwrap();
        let SelectItem::Expr { expr, alias } = &s.items[0] else { panic!() };
        assert_eq!(alias.as_deref(), Some("30 days"));
        assert!(expr.contains_aggregate());
    }

    #[test]
    fn between_in_and_date_arithmetic() {
        let s = parse(
            "select * from t where p between 0.99 and 1.49 \
             and d between (cast('2002-05-29' as date) - 30 days) and (cast('2002-05-29' as date) + 30 days) \
             and y in (1998, 1998+1, 1998+2)",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        // Check an IntervalDays node landed somewhere.
        fn has_interval(e: &SqlExpr) -> bool {
            match e {
                SqlExpr::IntervalDays(_) => true,
                SqlExpr::Binary { left, right, .. } => has_interval(left) || has_interval(right),
                SqlExpr::Between { expr, low, high } => {
                    has_interval(expr) || has_interval(low) || has_interval(high)
                }
                _ => false,
            }
        }
        assert!(has_interval(&w));
    }

    #[test]
    fn derived_table_with_alias() {
        let s = parse(
            "select x from (select a x, sum(b) s from t group by a) dn, u where x = u.k",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[0], FromItem::Subquery { alias, .. } if alias == "dn"));
        assert_eq!(s.base_tables(), vec!["t", "u"]);
    }

    #[test]
    fn star_and_semicolon() {
        let s = parse("select * from t;").unwrap();
        assert_eq!(s.items, vec![SelectItem::Star]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("select from t").is_err());
        assert!(parse("select a t").is_err()); // missing FROM
        assert!(parse("select a from t where").is_err());
        assert!(parse("select a from (select b from u)").is_err()); // no alias
        assert!(parse("select case end from t").is_err());
    }

    #[test]
    fn operator_precedence() {
        // a = 1 or b = 2 and c = 3  →  or(a=1, and(b=2, c=3))
        let s = parse("select * from t where a = 1 or b = 2 and c = 3").unwrap();
        let SqlExpr::Binary { op: BinOp::Or, right, .. } = s.where_clause.unwrap() else {
            panic!("expected top-level OR")
        };
        assert!(matches!(*right, SqlExpr::Binary { op: BinOp::And, .. }));
        // arithmetic: 1 + 2 * 3 → add(1, mul(2, 3))
        let s = parse("select 1 + 2 * 3 x from t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        assert!(matches!(
            expr,
            SqlExpr::Binary { op: BinOp::Add, right, .. }
                if matches!(**right, SqlExpr::Binary { op: BinOp::Mul, .. })
        ));
    }

    #[test]
    fn unary_minus() {
        let s = parse("select -5 x from t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        assert!(matches!(expr, SqlExpr::Binary { op: BinOp::Sub, .. }));
    }
}
