//! The SQL AST for the analytical select-from-where template
//! (thesis Section 4.1.3: "All the queries used for the purpose of this
//! thesis implement the select-from-where template").

/// Binary operators (arithmetic, comparison, boolean).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Lte | BinOp::Gt | BinOp::Gte
        )
    }
}

/// A scalar SQL expression.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// `col` or `alias.col`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Numeric literal.
    Number(f64),
    /// String literal.
    String(String),
    /// `NULL`.
    Null,
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
    },
    /// `expr IN (e1, e2, …)`.
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<SqlExpr>, negated: bool },
    /// `CASE WHEN c THEN v … [ELSE e] END`.
    Case {
        whens: Vec<(SqlExpr, SqlExpr)>,
        else_expr: Option<Box<SqlExpr>>,
    },
    /// Aggregate or scalar function call, e.g. `avg(x)`, `sum(…)`.
    Func { name: String, args: Vec<SqlExpr> },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<SqlExpr>, ty: String },
    /// `<n> days` — the interval form in TPC-DS date arithmetic.
    IntervalDays(Box<SqlExpr>),
}

impl SqlExpr {
    /// Shorthand for an unqualified column.
    pub fn col(name: impl Into<String>) -> Self {
        SqlExpr::Column { qualifier: None, name: name.into() }
    }

    /// Shorthand for a qualified column.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        SqlExpr::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }

    /// Shorthand for a binary node.
    pub fn binary(op: BinOp, left: SqlExpr, right: SqlExpr) -> Self {
        SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, .. } => {
                matches!(name.to_ascii_lowercase().as_str(), "sum" | "avg" | "min" | "max" | "count")
            }
            SqlExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            SqlExpr::Not(e) | SqlExpr::Cast { expr: e, .. } | SqlExpr::IntervalDays(e) => {
                e.contains_aggregate()
            }
            SqlExpr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            SqlExpr::InList { expr, list } => {
                expr.contains_aggregate() || list.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Case { whens, else_expr } => {
                whens.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            _ => false,
        }
    }

    /// Collects every column reference in the expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            SqlExpr::Column { qualifier, name } => out.push((qualifier, name)),
            SqlExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            SqlExpr::Not(e) | SqlExpr::Cast { expr: e, .. } | SqlExpr::IntervalDays(e) => {
                e.collect_columns(out)
            }
            SqlExpr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            SqlExpr::InList { expr, list } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            SqlExpr::IsNull { expr, .. } => expr.collect_columns(out),
            SqlExpr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            SqlExpr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            _ => {}
        }
    }
}

/// One item of the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// An expression with an optional alias.
    Expr { expr: SqlExpr, alias: Option<String> },
}

/// One item of the FROM list.
#[derive(Clone, Debug, PartialEq)]
pub enum FromItem {
    /// A base table with an optional alias.
    Table { name: String, alias: Option<String> },
    /// A derived table: `(SELECT …) alias`.
    Subquery { query: Box<SelectStmt>, alias: String },
}

impl FromItem {
    /// The name the rest of the query refers to this source by.
    pub fn binding_name(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::Subquery { alias, .. } => alias,
        }
    }
}

/// One ORDER BY key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    pub expr: SqlExpr,
    pub ascending: bool,
}

/// A SELECT statement.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub order_by: Vec<OrderItem>,
}

impl SelectStmt {
    /// Base table names referenced (recursing into derived tables).
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for f in &self.from {
            match f {
                FromItem::Table { name, .. } => out.push(name.as_str()),
                FromItem::Subquery { query, .. } => out.extend(query.base_tables()),
            }
        }
        out
    }

    /// True if any select item carries an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| match i {
            SelectItem::Star => false,
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = SqlExpr::binary(
            BinOp::Add,
            SqlExpr::Func { name: "sum".into(), args: vec![SqlExpr::col("x")] },
            SqlExpr::Number(1.0),
        );
        assert!(e.contains_aggregate());
        assert!(!SqlExpr::col("x").contains_aggregate());
        let cast = SqlExpr::Cast { expr: Box::new(SqlExpr::col("d")), ty: "date".into() };
        assert!(!cast.contains_aggregate());
    }

    #[test]
    fn columns_collects_qualified_refs() {
        let e = SqlExpr::binary(
            BinOp::Eq,
            SqlExpr::qcol("d1", "d_date_sk"),
            SqlExpr::col("ss_sold_date_sk"),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, "d_date_sk");
        assert_eq!(cols[0].0.as_deref(), Some("d1"));
    }

    #[test]
    fn binding_names() {
        let t = FromItem::Table { name: "date_dim".into(), alias: Some("d1".into()) };
        assert_eq!(t.binding_name(), "d1");
        let t = FromItem::Table { name: "store".into(), alias: None };
        assert_eq!(t.binding_name(), "store");
    }

    #[test]
    fn base_tables_recurse_into_subqueries() {
        let inner = SelectStmt {
            from: vec![FromItem::Table { name: "store_sales".into(), alias: None }],
            ..Default::default()
        };
        let outer = SelectStmt {
            from: vec![
                FromItem::Subquery { query: Box::new(inner), alias: "dn".into() },
                FromItem::Table { name: "customer".into(), alias: None },
            ],
            ..Default::default()
        };
        assert_eq!(outer.base_tables(), vec!["store_sales", "customer"]);
    }
}
