//! # doclite-sql
//!
//! A lexer, AST, and recursive-descent parser for the analytical
//! select-from-where SQL subset the TPC-DS workload queries use:
//! aggregate functions, `CASE WHEN`, `BETWEEN`, `IN` lists, derived
//! tables, qualified columns, `CAST(… AS date)` with `± N days` interval
//! arithmetic, `GROUP BY`, and `ORDER BY`.
//!
//! The thesis translates these queries into document-store operations
//! (Section 4.1.3); the translator lives in `doclite-core` and consumes
//! this crate's [`SelectStmt`].

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, FromItem, OrderItem, SelectItem, SelectStmt, SqlExpr};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, ParseError};
