//! SQL lexer for the analytical select-from-where dialect the TPC-DS
//! query templates use.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (case preserved; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// Double-quoted identifier, e.g. `"30 days"`.
    QuotedIdent(String),
    /// Single-quoted string literal.
    StringLit(String),
    /// Numeric literal (integer or decimal).
    Number(f64),
    Comma,
    Dot,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    /// `<>` or `!=`.
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Lte => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Gte => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SQL text. Line comments (`--`) are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if !next_is_digit(bytes, i + 1) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Neq);
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token::Lte);
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token::Neq);
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token::Lt);
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Gte);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = read_quoted(input, i, '\'')?;
                tokens.push(Token::StringLit(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(input, i, '"')?;
                tokens.push(Token::QuotedIdent(s));
                i = next;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    pos: start,
                    message: format!("bad number literal {text:?}"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError { pos: i, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| (*b as char).is_ascii_digit())
}

/// Reads a quoted token starting at `start` (which holds the quote);
/// doubling the quote escapes it. Returns (content, next index).
fn read_quoted(input: &str, start: usize, quote: char) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    let q = quote as u8;
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Safe: iterating byte-wise over ASCII-delimited content; SQL
            // text here is ASCII, but keep UTF-8 correctness anyway.
            let ch_start = i;
            let mut ch_end = i + 1;
            while ch_end < bytes.len() && (bytes[ch_end] & 0xC0) == 0x80 {
                ch_end += 1;
            }
            out.push_str(&input[ch_start..ch_end]);
            i = ch_end;
        }
    }
    Err(LexError { pos: start, message: format!("unterminated {quote} quote") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("select a, b.c from t where x <= 5 and y <> 'z'").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert!(toks.contains(&Token::Lte));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::StringLit("z".into())));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn lexes_numbers_including_decimals() {
        let toks = lex("0.99 1.49 2.0/3.0 42").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(0.99),
                Token::Number(1.49),
                Token::Number(2.0),
                Token::Slash,
                Token::Number(3.0),
                Token::Number(42.0),
            ]
        );
    }

    #[test]
    fn quoted_identifier_and_escapes() {
        let toks = lex(r#"sum(x) as "30 days""#).unwrap();
        assert!(toks.contains(&Token::QuotedIdent("30 days".into())));
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::StringLit("it's".into())]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("select -- a comment\n 1").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let err = lex("select 'unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = lex("select @").unwrap_err();
        assert_eq!(err.pos, 7);
    }

    #[test]
    fn minus_vs_comment() {
        let toks = lex("a - b").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Minus);
    }
}
