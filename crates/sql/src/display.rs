//! Canonical SQL rendering of the AST (unparse). `parse(render(ast))`
//! reproduces the AST — the roundtrip the parser tests rely on.

use crate::ast::{BinOp, FromItem, OrderItem, SelectItem, SelectStmt, SqlExpr};
use std::fmt;

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Lte => "<=",
            BinOp::Gt => ">",
            BinOp::Gte => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        })
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Lte | BinOp::Gt | BinOp::Gte => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn expr_precedence(e: &SqlExpr) -> u8 {
    match e {
        SqlExpr::Binary { op, .. } => precedence(*op),
        SqlExpr::Between { .. } | SqlExpr::InList { .. } | SqlExpr::IsNull { .. } => 3,
        SqlExpr::Not(_) => 2,
        _ => 6,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &SqlExpr, parent_prec: u8) -> fmt::Result {
    if expr_precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            SqlExpr::Column { qualifier: None, name } => f.write_str(name),
            SqlExpr::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            SqlExpr::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            SqlExpr::Null => f.write_str("null"),
            SqlExpr::Binary { op, left, right } => {
                let p = precedence(*op);
                write_child(f, left, p)?;
                write!(f, " {op} ")?;
                // Right operand binds tighter for left-associative ops.
                if expr_precedence(right) <= p
                    && matches!(op, BinOp::Sub | BinOp::Div)
                {
                    write!(f, "({right})")
                } else {
                    write_child(f, right, p)
                }
            }
            SqlExpr::Not(e) => {
                write!(f, "not ")?;
                write_child(f, e, 2)
            }
            SqlExpr::Between { expr, low, high } => {
                write_child(f, expr, 4)?;
                write!(f, " between ")?;
                write_child(f, low, 4)?;
                write!(f, " and ")?;
                write_child(f, high, 4)
            }
            SqlExpr::InList { expr, list } => {
                write_child(f, expr, 4)?;
                write!(f, " in (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SqlExpr::IsNull { expr, negated } => {
                write_child(f, expr, 4)?;
                write!(f, " is {}null", if *negated { "not " } else { "" })
            }
            SqlExpr::Case { whens, else_expr } => {
                write!(f, "case")?;
                for (c, v) in whens {
                    write!(f, " when {c} then {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            SqlExpr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            SqlExpr::Cast { expr, ty } => write!(f, "cast({expr} as {ty})"),
            SqlExpr::IntervalDays(e) => {
                write_child(f, e, 6)?;
                write!(f, " days")
            }
        }
    }
}

fn needs_quoting(alias: &str) -> bool {
    alias.is_empty()
        || !alias
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        || alias.chars().next().is_some_and(|c| c.is_ascii_digit())
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Expr { expr, alias: Some(a) } => {
                if needs_quoting(a) {
                    write!(f, "{expr} as \"{a}\"")
                } else {
                    write!(f, "{expr} as {a}")
                }
            }
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias: None } => f.write_str(name),
            FromItem::Table { name, alias: Some(a) } => write!(f, "{name} {a}"),
            FromItem::Subquery { query, alias } => write!(f, "({query}) {alias}"),
        }
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.expr, if self.ascending { "" } else { " desc" })
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " from ")?;
        for (i, from) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    fn roundtrip(sql: &str) {
        let ast = parse(sql).unwrap();
        let rendered = ast.to_string();
        let reparsed =
            parse(&rendered).unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        assert_eq!(ast, reparsed, "roundtrip changed the AST:\n{rendered}");
    }

    #[test]
    fn roundtrips_basic_selects() {
        roundtrip("select a, b.c as x from t1, t2 u where a = 1 and b.c <> 'z'");
        roundtrip("select * from t where p between 0.99 and 1.49 order by a desc, b");
        roundtrip("select k, avg(v) as m from t group by k order by m");
    }

    #[test]
    fn roundtrips_case_and_quoted_alias() {
        roundtrip(
            r#"select sum(case when a - b <= 30 then 1 else 0 end) as "30 days" from t"#,
        );
    }

    #[test]
    fn roundtrips_date_arithmetic_and_in() {
        roundtrip(
            "select * from t where d between (cast('2002-05-29' as date) - 30 days) \
             and (cast('2002-05-29' as date) + 30 days) and y in (1998, 1998+1)",
        );
    }

    #[test]
    fn roundtrips_derived_table() {
        roundtrip("select x from (select a as x, sum(b) as s from t group by a) dn where x = 1");
    }

    #[test]
    fn parenthesization_preserves_precedence() {
        // or(and(a,b), c) vs and(a, or(b,c)) must render differently.
        let a = parse("select * from t where a = 1 and b = 2 or c = 3").unwrap();
        let b = parse("select * from t where a = 1 and (b = 2 or c = 3)").unwrap();
        assert_ne!(a, b);
        roundtrip("select * from t where a = 1 and (b = 2 or c = 3)");
        roundtrip("select * from t where not (a = 1 or b = 2)");
        roundtrip("select (1 + 2) * 3 as x, 1 - (2 - 3) as y, 8 / (4 / 2) as z from t");
    }

    #[test]
    fn string_escaping() {
        roundtrip("select * from t where s = 'it''s'");
    }
}
