//! Mixed TPC-DS operation streams over a prepared environment.
//!
//! One [`StressEnv`] loads the thesis workload tables (plus the
//! denormalized fact collections) onto a standalone database or a
//! 3-shard cluster, then hands out [`MixedWorkload`]s: weighted streams
//! of ticket point reads, `$in` semi-join lookups, sale-line inserts,
//! field updates, and the paper's translated analytical aggregations.

use crate::driver::Workload;
use doclite_bson::{doc, Value};
use doclite_core::{
    denormalized_pipeline, setup_environment, DataModel, Deployment, Environment, ExperimentSpec,
    SetupOptions,
};
use doclite_docstore::{Filter, IndexDef, Pipeline, Result, Stage, UpdateSpec};
use doclite_tpcds::gen::LINES_PER_TICKET;
use doclite_tpcds::{Generator, QueryId, QueryParams, TableId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::atomic::{AtomicI64, Ordering};

/// One operation kind in a mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `find` on `store_sales` by one ticket number (targeted on the
    /// cluster; index-backed everywhere).
    PointRead,
    /// `$in` semi-join lookup over a batch of ticket numbers — the
    /// access shape of the paper's Query 50 fact probe.
    InLookup,
    /// Insert one new sale line with a fresh, monotonically growing
    /// ticket number (drives chunk growth and splits on the cluster).
    Insert,
    /// Targeted single-document field update on an existing ticket.
    Update,
    /// One of the paper's translated analytical aggregations over the
    /// denormalized fact collections.
    Analytical,
}

impl OpKind {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::PointRead => "point_read",
            OpKind::InLookup => "in_lookup",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Analytical => "analytical",
        }
    }
}

/// A weighted operation mix.
#[derive(Clone, Debug)]
pub struct OpMix {
    name: &'static str,
    weighted: Vec<(OpKind, u32)>,
    total: u32,
}

impl OpMix {
    /// Builds a mix from `(kind, weight)` pairs.
    pub fn new(name: &'static str, weighted: impl Into<Vec<(OpKind, u32)>>) -> Self {
        let weighted = weighted.into();
        let total = weighted.iter().map(|(_, w)| *w).sum();
        assert!(total > 0, "mix needs positive total weight");
        OpMix { name, weighted, total }
    }

    /// The mix's report label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Samples one kind according to the weights.
    pub fn pick(&self, rng: &mut SmallRng) -> OpKind {
        let mut roll = rng.random_range(0..self.total);
        for (kind, w) in &self.weighted {
            if roll < *w {
                return *kind;
            }
            roll -= w;
        }
        self.weighted.last().expect("non-empty").0
    }

    /// 100% ticket point reads.
    pub fn read_only() -> Self {
        OpMix::new("read_only", [(OpKind::PointRead, 1)])
    }

    /// The mixed OLTP+analytical stream: 40% point reads, 20% `$in`
    /// lookups, 20% inserts, 15% updates, 5% analytical aggregations.
    pub fn mixed() -> Self {
        OpMix::new(
            "mixed",
            [
                (OpKind::PointRead, 40),
                (OpKind::InLookup, 20),
                (OpKind::Insert, 20),
                (OpKind::Update, 15),
                (OpKind::Analytical, 5),
            ],
        )
    }

    /// 100% analytical aggregations.
    pub fn analytical() -> Self {
        OpMix::new("analytical", [(OpKind::Analytical, 1)])
    }
}

/// A loaded deployment plus the key-space metadata the ops draw from.
pub struct StressEnv {
    env: Environment,
    deployment: Deployment,
    /// Highest ticket number the generator loaded; point reads and
    /// updates draw uniformly from `1..=max_ticket`.
    max_ticket: i64,
    /// Next fresh ticket for inserts (strictly above the loaded range,
    /// shared across all workers).
    insert_seq: AtomicI64,
    /// The four workload aggregations with any trailing `$out` removed,
    /// so concurrent runs don't fight over output collections.
    analytical: Vec<(String, Pipeline)>,
}

impl StressEnv {
    /// Loads the workload tables (denormalized model, so the analytical
    /// pipelines have their source collections) onto the deployment and
    /// prepares the op streams.
    pub fn setup(deployment: Deployment, sf: f64, opts: &SetupOptions) -> Result<Self> {
        let spec = ExperimentSpec {
            id: match deployment {
                Deployment::Standalone => 91,
                Deployment::Sharded => 92,
            },
            sf,
            model: DataModel::Denormalized,
            deployment,
        };
        let env = setup_environment(&spec, opts)?;
        if deployment == Deployment::Standalone {
            // The paper's standalone deployment keeps the normalized base
            // collections unindexed; the interactive ops need the ticket
            // index, exactly as the sharded side gets one for free from
            // its shard key.
            env.store()
                .create_index("store_sales", IndexDef::single("ss_ticket_number"))?;
        }
        let gen = Generator::new(sf);
        let rows = gen.row_count(TableId::StoreSales);
        let max_ticket = ((rows.saturating_sub(1)) / LINES_PER_TICKET + 1) as i64;
        let params = QueryParams::for_scale(sf);
        let analytical = QueryId::ALL
            .iter()
            .map(|&q| {
                let (source, p) = denormalized_pipeline(q, &params);
                (source, strip_trailing_out(&p))
            })
            .collect();
        Ok(StressEnv {
            env,
            deployment,
            max_ticket,
            insert_seq: AtomicI64::new(max_ticket + 1),
            analytical,
        })
    }

    /// The underlying environment.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// The deployment this environment runs on.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Report label for the deployment.
    pub fn deployment_label(&self) -> &'static str {
        match self.deployment {
            Deployment::Standalone => "standalone",
            Deployment::Sharded => "sharded",
        }
    }

    /// Highest preloaded ticket number.
    pub fn max_ticket(&self) -> i64 {
        self.max_ticket
    }

    /// A workload running `mix` against this environment.
    pub fn workload(&self, mix: OpMix) -> MixedWorkload<'_> {
        MixedWorkload { env: self, mix }
    }
}

/// Removes a trailing `$out` stage so the pipeline returns its results
/// instead of materializing into a shared collection (which concurrent
/// runs would drop and rebuild under each other).
fn strip_trailing_out(p: &Pipeline) -> Pipeline {
    let stages = p.stages();
    let keep = match stages.last() {
        Some(Stage::Out(_)) => &stages[..stages.len() - 1],
        _ => stages,
    };
    let mut out = Pipeline::new();
    for s in keep {
        out = out.stage(s.clone());
    }
    out
}

/// `$in` lookup batch size (Query 50 probes tickets in small batches).
const IN_BATCH: usize = 8;

/// A weighted operation stream bound to an environment. Shared by all
/// worker threads via `&MixedWorkload`.
pub struct MixedWorkload<'a> {
    env: &'a StressEnv,
    mix: OpMix,
}

impl MixedWorkload<'_> {
    /// The mix's report label.
    pub fn name(&self) -> &'static str {
        self.mix.name()
    }

    fn random_ticket(&self, rng: &mut SmallRng) -> i64 {
        rng.random_range(1..=self.env.max_ticket)
    }
}

impl Workload for MixedWorkload<'_> {
    fn run(&self, op_id: u64, rng: &mut SmallRng) -> Result<()> {
        let store = self.env.env.store();
        match self.mix.pick(rng) {
            OpKind::PointRead => {
                let t = self.random_ticket(rng);
                let docs = store.find("store_sales", &Filter::eq("ss_ticket_number", t));
                if docs.is_empty() {
                    return Err(doclite_docstore::Error::InvalidQuery(format!(
                        "point read lost ticket {t}"
                    )));
                }
            }
            OpKind::InLookup => {
                let keys: Vec<Value> = (0..IN_BATCH)
                    .map(|_| Value::Int64(self.random_ticket(rng)))
                    .collect();
                let docs = store.find(
                    "store_sales",
                    &Filter::In { path: "ss_ticket_number".into(), values: keys },
                );
                if docs.is_empty() {
                    return Err(doclite_docstore::Error::InvalidQuery(
                        "$in lookup lost all tickets".into(),
                    ));
                }
            }
            OpKind::Insert => {
                let t = self.env.insert_seq.fetch_add(1, Ordering::Relaxed);
                store.insert_one(
                    "store_sales",
                    doc! {
                        "ss_ticket_number" => t,
                        "ss_item_sk" => rng.random_range(1..=1000i64),
                        "ss_quantity" => rng.random_range(1..=100i64),
                        "ss_sales_price" => (rng.random_range(100..=10_000i64) as f64) / 100.0,
                        "ss_stress_origin" => op_id as i64
                    },
                )?;
            }
            OpKind::Update => {
                let t = self.random_ticket(rng);
                store.update(
                    "store_sales",
                    &Filter::eq("ss_ticket_number", t),
                    &UpdateSpec::set("ss_stress_touch", op_id as i64),
                    false,
                    false,
                )?;
            }
            OpKind::Analytical => {
                let (source, pipeline) =
                    &self.env.analytical[op_id as usize % self.env.analytical.len()];
                store.aggregate(source, pipeline)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = OpMix::new("t", [(OpKind::PointRead, 90), (OpKind::Insert, 10)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 5000;
        let reads = (0..n)
            .filter(|_| mix.pick(&mut rng) == OpKind::PointRead)
            .count();
        let frac = reads as f64 / n as f64;
        assert!((0.85..0.95).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn strip_trailing_out_removes_only_trailing_out() {
        let p = Pipeline::new()
            .stage(Stage::Limit(5))
            .stage(Stage::Out("dest".into()));
        let s = strip_trailing_out(&p);
        assert_eq!(s.stages().len(), 1);
        assert!(matches!(s.stages()[0], Stage::Limit(5)));
        let no_out = Pipeline::new().stage(Stage::Limit(5));
        assert_eq!(strip_trailing_out(&no_out).stages().len(), 1);
    }

    #[test]
    fn workload_pipelines_lose_their_out_stage() {
        let params = QueryParams::for_scale(0.01);
        for &q in &QueryId::ALL {
            let (_, p) = denormalized_pipeline(q, &params);
            let s = strip_trailing_out(&p);
            assert!(
                !s.stages().iter().any(|st| matches!(st, Stage::Out(_))),
                "{q:?} still has $out"
            );
        }
    }

    #[test]
    fn every_op_kind_runs_against_a_small_standalone_env() {
        let env = StressEnv::setup(Deployment::Standalone, 0.001, &SetupOptions {
            network: doclite_sharding::NetworkModel::free(),
            ..SetupOptions::default()
        })
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for (i, kind) in [
            OpKind::PointRead,
            OpKind::InLookup,
            OpKind::Insert,
            OpKind::Update,
            OpKind::Analytical,
        ]
        .iter()
        .enumerate()
        {
            let w = env.workload(OpMix::new("one", [(*kind, 1)]));
            w.run(i as u64, &mut rng)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
        // Inserts landed above the preloaded ticket range.
        let inserted = env.environment().store().find(
            "store_sales",
            &Filter::eq("ss_ticket_number", env.max_ticket() + 1),
        );
        assert_eq!(inserted.len(), 1);
    }
}
