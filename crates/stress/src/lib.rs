//! # doclite-stress
//!
//! The concurrent workload driver: N worker threads share one target —
//! a standalone [`doclite_docstore::Database`] or a sharded
//! [`doclite_sharding::Mongos`] router — and push mixed TPC-DS operation
//! streams through it under a fixed-rate or max-throughput schedule,
//! recording coordinated-omission-corrected latencies into lock-free
//! log-bucketed histograms.
//!
//! The paper this repository reproduces measures one analytical query at
//! a time on an idle system; this subsystem is the harness for the
//! questions the paper leaves open — what the same deployments do under
//! sustained concurrent traffic.
//!
//! ```no_run
//! use doclite_core::{Deployment, SetupOptions};
//! use doclite_stress::{run_stress, OpMix, RateMode, StressConfig, StressEnv};
//!
//! let env = StressEnv::setup(Deployment::Standalone, 0.002, &SetupOptions::default()).unwrap();
//! let workload = env.workload(OpMix::read_only());
//! let result = run_stress(&workload, &StressConfig { threads: 4, ..StressConfig::default() });
//! println!("{}", result.summary());
//! ```

pub mod dist;
pub mod driver;
pub mod hist;
pub mod reconfig;
pub mod report;
pub mod sched;
pub mod views;
pub mod workload;

pub use dist::Distribution;
pub use driver::{run_stress, worker_seed, StressConfig, StressResult, Workload};
pub use hist::LogHistogram;
pub use views::{run_views, validate_views_report, ViewsConfig, ViewsReport, VIEWS_SCHEMA};
pub use reconfig::{
    derive_sale_doc, run_scenario, validate_reconfig_report, IntervalStat, ReconfigConfig,
    ReconfigReport, ReconfigScenario, ScenarioResult, RECONFIG_SCHEMA,
};
pub use report::{validate_report, CellResult, Scaling, StressReport, SCHEMA};
pub use sched::{RateLimiter, RateMode};
pub use workload::{MixedWorkload, OpKind, OpMix, StressEnv};

/// Compile-time concurrency contract: everything the driver shares
/// across worker threads must be `Send + Sync`. A regression here fails
/// the build of this function, not a test at runtime.
#[allow(dead_code)]
fn assert_driver_targets_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<doclite_docstore::Database>();
    check::<doclite_docstore::wal::DurableDb>();
    check::<doclite_sharding::Mongos>();
    check::<doclite_sharding::ShardedCluster>();
    check::<doclite_core::Environment>();
    check::<StressEnv>();
    check::<LogHistogram>();
    check::<RateLimiter>();
}
