//! The stress report: one JSON document per run
//! (`reports/BENCH_stress.json`), plus a schema validator built on a
//! minimal self-contained JSON parser (the workspace deliberately has no
//! JSON dependency). CI runs the smoke stress and validates the emitted
//! file against the same checks.

use crate::driver::StressResult;
use std::fmt::Write as _;

/// Schema tag the validator pins.
pub const SCHEMA: &str = "doclite-stress/v1";

/// One workload × deployment × thread-count × mode measurement.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub workload: String,
    pub deployment: String,
    pub threads: usize,
    pub mode: String,
    pub ops: u64,
    pub errors: u64,
    pub elapsed_s: f64,
    pub throughput_ops_s: f64,
    pub p50_us: f64,
    pub p90_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub max_us: f64,
    pub mean_us: f64,
}

impl CellResult {
    /// Extracts a cell from a finished run.
    pub fn from_run(
        workload: &str,
        deployment: &str,
        threads: usize,
        mode: &str,
        r: &StressResult,
    ) -> Self {
        CellResult {
            workload: workload.to_owned(),
            deployment: deployment.to_owned(),
            threads,
            mode: mode.to_owned(),
            ops: r.ops,
            errors: r.errors,
            elapsed_s: r.elapsed.as_secs_f64(),
            throughput_ops_s: r.throughput(),
            p50_us: r.p_us(50.0),
            p90_us: r.p_us(90.0),
            p99_us: r.p_us(99.0),
            p999_us: r.p_us(99.9),
            max_us: r.hist.max() as f64 / 1_000.0,
            mean_us: r.hist.mean() / 1_000.0,
        }
    }
}

/// Read-only max-throughput scaling between two thread counts on one
/// deployment (the acceptance headline).
#[derive(Clone, Debug)]
pub struct Scaling {
    pub workload: String,
    pub deployment: String,
    pub threads_lo: usize,
    pub threads_hi: usize,
    pub ratio: f64,
}

/// The full report.
#[derive(Clone, Debug, Default)]
pub struct StressReport {
    pub sf: f64,
    pub thread_counts: Vec<usize>,
    pub cells: Vec<CellResult>,
    pub scaling: Vec<Scaling>,
}

fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_owned()
    }
}

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and every control character U+0000–U+001F (as `\n` /
/// `\t` / `\r` or `\u00XX`). The writers used to interpolate raw —
/// a workload name with a newline produced unparseable output.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl StressReport {
    /// Serializes to the `doclite-stress/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"sf\": {},", fnum(self.sf));
        let threads: Vec<String> = self.thread_counts.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(s, "  \"thread_counts\": [{}],", threads.join(", "));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": \"{}\", \"deployment\": \"{}\", \"threads\": {}, \
                 \"mode\": \"{}\", \"ops\": {}, \"errors\": {}, \"elapsed_s\": {}, \
                 \"throughput_ops_s\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}, \"max_us\": {}, \"mean_us\": {}}}",
                escape_json(&c.workload),
                escape_json(&c.deployment),
                c.threads,
                escape_json(&c.mode),
                c.ops,
                c.errors,
                fnum(c.elapsed_s),
                fnum(c.throughput_ops_s),
                fnum(c.p50_us),
                fnum(c.p90_us),
                fnum(c.p99_us),
                fnum(c.p999_us),
                fnum(c.max_us),
                fnum(c.mean_us),
            );
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"scaling\": [\n");
        for (i, sc) in self.scaling.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": \"{}\", \"deployment\": \"{}\", \"threads_lo\": {}, \
                 \"threads_hi\": {}, \"ratio\": {}}}",
                escape_json(&sc.workload),
                escape_json(&sc.deployment),
                sc.threads_lo,
                sc.threads_hi,
                fnum(sc.ratio),
            );
            s.push_str(if i + 1 < self.scaling.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

// ----- minimal JSON parser (validation only) ---------------------------

/// A parsed JSON value. Objects keep insertion order; numbers are `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON text. Supports the full value grammar the reports use,
/// including `\uXXXX` escapes; raw control characters inside strings
/// are rejected (RFC 8259 forbids them), which is how `validate_report`
/// catches writers that forgot to escape.
pub fn parse_json(text: &str) -> std::result::Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> std::result::Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    v: Json,
) -> std::result::Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> std::result::Result<String, String> {
    expect(b, pos, b'"')?;
    // Accumulate raw UTF-8 bytes and decode once at the closing quote,
    // so multi-byte characters survive (the old byte-at-a-time `as
    // char` push read them as Latin-1).
    let mut out = Vec::new();
    let push_char = |out: &mut Vec<u8>, ch: char| {
        let mut buf = [0u8; 4];
        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
    };
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                if esc == b'u' {
                    let hex = b
                        .get(*pos + 1..*pos + 5)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
                    let ch = char::from_u32(code)
                        .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                    push_char(&mut out, ch);
                    *pos += 5;
                    continue;
                }
                let ch = match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => other as char,
                };
                push_char(&mut out, ch);
                *pos += 1;
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control character 0x{c:02x} in string at byte {}",
                    *pos
                ));
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

// ----- schema validation -----------------------------------------------

fn cell_num(cell: &Json, key: &str) -> std::result::Result<f64, String> {
    cell.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("cell missing numeric field '{key}'"))
}

/// Validates a serialized report against the `doclite-stress/v1` schema:
/// required fields, percentile ordering, ≥2 distinct thread counts per
/// deployment, and both deployments present.
pub fn validate_report(text: &str) -> std::result::Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be '{SCHEMA}'"));
    }
    root.get("sf")
        .and_then(Json::as_num)
        .filter(|sf| *sf > 0.0)
        .ok_or("'sf' must be a positive number")?;
    let cells = root
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("'cells' must be an array")?;
    if cells.is_empty() {
        return Err("'cells' must be non-empty".into());
    }
    let mut threads_by_deployment: std::collections::BTreeMap<String, std::collections::BTreeSet<u64>> =
        Default::default();
    for cell in cells {
        for key in ["workload", "deployment", "mode"] {
            cell.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell missing string field '{key}'"))?;
        }
        let threads = cell_num(cell, "threads")?;
        if threads < 1.0 {
            return Err("cell 'threads' must be >= 1".into());
        }
        for key in ["ops", "errors", "elapsed_s", "throughput_ops_s", "mean_us"] {
            cell_num(cell, key)?;
        }
        let p50 = cell_num(cell, "p50_us")?;
        let p90 = cell_num(cell, "p90_us")?;
        let p99 = cell_num(cell, "p99_us")?;
        let p999 = cell_num(cell, "p999_us")?;
        let max = cell_num(cell, "max_us")?;
        if !(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max) {
            return Err(format!(
                "percentiles out of order: p50={p50} p90={p90} p99={p99} p99.9={p999} max={max}"
            ));
        }
        let dep = cell.get("deployment").and_then(Json::as_str).expect("checked");
        threads_by_deployment
            .entry(dep.to_owned())
            .or_default()
            .insert(threads as u64);
    }
    for dep in ["standalone", "sharded"] {
        let counts = threads_by_deployment
            .get(dep)
            .ok_or_else(|| format!("no cells for deployment '{dep}'"))?;
        if counts.len() < 2 {
            return Err(format!(
                "deployment '{dep}' needs >=2 distinct thread counts, got {counts:?}"
            ));
        }
    }
    let scaling = root
        .get("scaling")
        .and_then(Json::as_arr)
        .ok_or("'scaling' must be an array")?;
    for sc in scaling {
        cell_num(sc, "ratio")?;
        cell_num(sc, "threads_lo")?;
        cell_num(sc, "threads_hi")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(dep: &str, threads: usize) -> CellResult {
        CellResult {
            workload: "read_only".into(),
            deployment: dep.into(),
            threads,
            mode: "max".into(),
            ops: 1000,
            errors: 0,
            elapsed_s: 1.0,
            throughput_ops_s: 1000.0,
            p50_us: 10.0,
            p90_us: 20.0,
            p99_us: 30.0,
            p999_us: 40.0,
            max_us: 50.0,
            mean_us: 12.0,
        }
    }

    fn full_report() -> StressReport {
        StressReport {
            sf: 0.002,
            thread_counts: vec![1, 4],
            cells: vec![
                cell("standalone", 1),
                cell("standalone", 4),
                cell("sharded", 1),
                cell("sharded", 4),
            ],
            scaling: vec![Scaling {
                workload: "read_only".into(),
                deployment: "sharded".into(),
                threads_lo: 1,
                threads_hi: 4,
                ratio: 3.1,
            }],
        }
    }

    #[test]
    fn roundtrip_report_validates() {
        let json = full_report().to_json();
        validate_report(&json).unwrap();
    }

    #[test]
    fn parser_handles_nested_values() {
        let v = parse_json(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_num(), Some(-300.0));
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }

    #[test]
    fn validator_rejects_missing_deployment() {
        let mut r = full_report();
        r.cells.retain(|c| c.deployment != "sharded");
        let err = validate_report(&r.to_json()).unwrap_err();
        assert!(err.contains("sharded"), "{err}");
    }

    #[test]
    fn validator_rejects_single_thread_count() {
        let mut r = full_report();
        r.cells.retain(|c| c.deployment != "standalone" || c.threads == 1);
        let err = validate_report(&r.to_json()).unwrap_err();
        assert!(err.contains("thread counts"), "{err}");
    }

    #[test]
    fn validator_rejects_unordered_percentiles() {
        let mut r = full_report();
        r.cells[0].p99_us = 5.0; // below p90
        assert!(validate_report(&r.to_json()).is_err());
    }

    #[test]
    fn validator_rejects_wrong_schema_tag() {
        let json = full_report().to_json().replace(SCHEMA, "other/v0");
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn control_characters_round_trip() {
        let mut r = full_report();
        let nasty = "a\nb\tc\rd\u{1}e\u{1f}f\"g\\h";
        for c in &mut r.cells {
            c.workload = nasty.to_owned();
        }
        for s in &mut r.scaling {
            s.workload = nasty.to_owned();
        }
        let json = r.to_json();
        validate_report(&json).expect("escaped report validates");
        let parsed = parse_json(&json).unwrap();
        let cell0 = &parsed.get("cells").unwrap().as_arr().unwrap()[0];
        assert_eq!(cell0.get("workload").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn parser_rejects_raw_control_characters() {
        let err = parse_json("{\"a\": \"x\u{1}y\"}").unwrap_err();
        assert!(err.contains("control character"), "{err}");
        assert!(parse_json("{\"a\nb\": 1}").is_err(), "raw newline in key");
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        let v = parse_json("{\"a\": \"\\u0041\\u001f\\u00e9\u{00e9}\"}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("A\u{1f}\u{e9}\u{e9}"));
        assert!(parse_json(r#""\ud800""#).is_err(), "lone surrogate");
        assert!(parse_json(r#""\u12""#).is_err(), "truncated escape");
    }

    #[test]
    fn escape_json_escapes_exactly_the_must_escape_set() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("\n\t\r"), "\\n\\t\\r");
        assert_eq!(escape_json("\u{0}\u{1f}"), "\\u0000\\u001f");
        assert_eq!(escape_json("é→"), "é→"); // non-ASCII passes through
    }
}
