//! Materialized-view stress: seeded writer threads churn a sales
//! collection (key skew chosen by a [`Distribution`] spec) while a
//! refresher keeps a Q7-shaped incremental view current and a sampler
//! times view reads against full pipeline recomputes.
//!
//! The run ends with three quiesced drills:
//!
//! 1. **Divergence sweep** — the view's materialization must equal a
//!    fresh `aggregate` of the registered pipeline, byte for byte.
//! 2. **Truncation drill** — shrink the change buffer, checkpoint, and
//!    write past the cursor: the view must detect the truncated resume
//!    token, fall back to a full rebuild, and converge again.
//! 3. **Heartbeat drill** — with writers idle, `heartbeat_on_idle`
//!    must advance the staleness watermark to the log tip.
//!
//! `divergences == 0` and `speedup_mean >= 10` are the acceptance bar
//! (EXPERIMENTS.md ablation 13).

use crate::dist::Distribution;
use crate::driver::worker_seed;
use crate::hist::LogHistogram;
use crate::report::{escape_json, parse_json, Json};
use doclite_bson::{doc, Document};
use doclite_docstore::wal::{DurableDb, SyncPolicy, WalOptions};
use doclite_docstore::{
    Accumulator, Expr, Filter, GroupId, Pipeline, UpdateSpec, ViewSet,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Schema tag of the views report.
pub const VIEWS_SCHEMA: &str = "doclite-views/v1";

/// The view under test, shaped like the thesis's Q7: filter, group by
/// category, revenue / row count / average quantity, ordered output.
fn q7_pipeline() -> Pipeline {
    Pipeline::new()
        .match_stage(Filter::gte("qty", 0i64))
        .group(
            GroupId::Expr(Expr::field("cat")),
            [
                ("revenue_cents", Accumulator::sum_field("price_cents")),
                ("n", Accumulator::count()),
                ("avg_qty", Accumulator::avg_field("qty")),
            ],
        )
        .sort([("_id", 1)])
}

/// The document for id `i` with category key `cat`. All numerics are
/// integers (cents), so incremental retraction is exact.
fn sale_doc(i: i64, cat: i64, rng: &mut SmallRng) -> Document {
    doc! {
        "_id" => i,
        "cat" => format!("c{cat}"),
        "price_cents" => rng.random_range(0..100_000i64),
        "qty" => rng.random_range(0..100i64),
    }
}

/// Knobs for one run.
#[derive(Clone, Debug)]
pub struct ViewsConfig {
    /// Writer threads.
    pub threads: usize,
    /// Wall-clock length of the concurrent phase.
    pub duration: Duration,
    /// Root seed (documents, op mixing, key skew).
    pub seed: u64,
    /// Documents inserted before the clock starts — also the recompute
    /// baseline's scan size.
    pub preload: i64,
    /// Category-key skew, as a [`Distribution`] spec
    /// (e.g. `gaussian(0..50)`).
    pub key_dist: String,
    /// Hard cap on concurrent-phase writes, across all threads. Bounds
    /// the final quiesced drain (and the WAL) even when writers outrun
    /// the applier for the whole window.
    pub max_writes: u64,
}

impl Default for ViewsConfig {
    fn default() -> Self {
        ViewsConfig {
            threads: 4,
            duration: Duration::from_millis(1500),
            seed: 42_4242,
            preload: 20_000,
            key_dist: "gaussian(0..50)".into(),
            max_writes: 300_000,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug, Default)]
pub struct ViewsReport {
    pub seed: u64,
    pub threads: usize,
    pub duration_s: f64,
    pub key_dist: String,
    pub preload: i64,
    /// Writes acknowledged during the concurrent phase.
    pub writes: u64,
    /// Refresher totals across the whole run.
    pub frames_applied: u64,
    pub full_rebuilds: u64,
    pub groups_recomputed: u64,
    pub heartbeats: u64,
    /// Worst watermark lag (frames) a sampled read observed.
    pub staleness_max_frames: u64,
    /// Groups in the final materialization.
    pub view_groups: usize,
    pub view_read_p50_us: u64,
    pub view_read_p99_us: u64,
    pub view_read_mean_us: f64,
    pub recompute_p50_us: u64,
    pub recompute_p99_us: u64,
    pub recompute_mean_us: f64,
    /// recompute_mean / view_read_mean.
    pub speedup_mean: f64,
    /// View-vs-recompute mismatches across all sweeps. Must be zero.
    pub divergences: u64,
}

impl ViewsReport {
    /// Renders the report as JSON (hand-rolled; no serde in-tree).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"{VIEWS_SCHEMA}\",\n  \"seed\": {},\n  \"threads\": {},\n  \
             \"duration_s\": {},\n  \"key_dist\": \"{}\",\n  \"preload\": {},\n  \
             \"writes\": {},\n  \"frames_applied\": {},\n  \"full_rebuilds\": {},\n  \
             \"groups_recomputed\": {},\n  \"heartbeats\": {},\n  \
             \"staleness_max_frames\": {},\n  \"view_groups\": {},\n  \
             \"view_read_p50_us\": {},\n  \"view_read_p99_us\": {},\n  \
             \"view_read_mean_us\": {:.3},\n  \"recompute_p50_us\": {},\n  \
             \"recompute_p99_us\": {},\n  \"recompute_mean_us\": {:.3},\n  \
             \"speedup_mean\": {:.2},\n  \"divergences\": {}\n}}\n",
            self.seed,
            self.threads,
            self.duration_s,
            escape_json(&self.key_dist),
            self.preload,
            self.writes,
            self.frames_applied,
            self.full_rebuilds,
            self.groups_recomputed,
            self.heartbeats,
            self.staleness_max_frames,
            self.view_groups,
            self.view_read_p50_us,
            self.view_read_p99_us,
            self.view_read_mean_us,
            self.recompute_p50_us,
            self.recompute_p99_us,
            self.recompute_mean_us,
            self.speedup_mean,
            self.divergences,
        );
        s
    }
}

/// Checks a rendered report against the `doclite-views/v1` schema.
pub fn validate_views_report(text: &str) -> std::result::Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(VIEWS_SCHEMA) {
        return Err(format!("schema tag must be '{VIEWS_SCHEMA}'"));
    }
    root.get("key_dist")
        .and_then(Json::as_str)
        .ok_or("missing string field 'key_dist'")?;
    for key in [
        "seed",
        "threads",
        "duration_s",
        "preload",
        "writes",
        "frames_applied",
        "full_rebuilds",
        "groups_recomputed",
        "heartbeats",
        "staleness_max_frames",
        "view_groups",
        "view_read_p50_us",
        "view_read_p99_us",
        "view_read_mean_us",
        "recompute_p50_us",
        "recompute_p99_us",
        "recompute_mean_us",
        "speedup_mean",
        "divergences",
    ] {
        let v = root
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
        if v < 0.0 {
            return Err(format!("'{key}' must be >= 0"));
        }
    }
    let div = root.get("divergences").and_then(Json::as_num).expect("checked");
    if div != 0.0 {
        return Err(format!("view diverged from recompute {div} time(s)"));
    }
    let hb = root.get("heartbeats").and_then(Json::as_num).expect("checked");
    if hb < 1.0 {
        return Err("heartbeat drill did not run".into());
    }
    let reb = root.get("full_rebuilds").and_then(Json::as_num).expect("checked");
    if reb < 1.0 {
        return Err("truncation drill did not force a rebuild".into());
    }
    Ok(())
}

/// Compares the view's served snapshot against a fresh pipeline
/// execution; returns the number of differing positions.
fn divergence_count(ddb: &DurableDb, views: &ViewSet, name: &str) -> u64 {
    let (source, pipeline) = views.pipeline(name).expect("view exists");
    let fresh = ddb.db().aggregate(&source, &pipeline).expect("recompute");
    let (served, _) = views.read(name).expect("view read");
    if *served == fresh {
        return 0;
    }
    let max = served.len().max(fresh.len());
    let mut bad = 0;
    for i in 0..max {
        if served.get(i) != fresh.get(i) {
            bad += 1;
        }
    }
    bad.max(1)
}

/// Runs the workload end to end. Uses a throwaway on-disk directory
/// (WAL-backed store); the directory is removed afterwards.
pub fn run_views(cfg: &ViewsConfig) -> ViewsReport {
    let dir = std::env::temp_dir().join(format!(
        "doclite-stress-views-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (ddb, _) = DurableDb::open(
        "views",
        &dir,
        WalOptions { sync: SyncPolicy::Never, faults: None },
    )
    .expect("open durable store");
    let key_dist = Distribution::parse(&cfg.key_dist).expect("key_dist spec");

    let sales = ddb.db().collection("sales");
    let mut seed_rng = SmallRng::seed_from_u64(cfg.seed);
    let preload_docs: Vec<Document> = (0..cfg.preload)
        .map(|i| sale_doc(i, key_dist.sample(&mut seed_rng), &mut seed_rng))
        .collect();
    sales.insert_many(preload_docs).expect("preload");

    let views = ViewSet::for_durable(&ddb).expect("view set");
    views
        .create_view("q7", "sales", q7_pipeline())
        .expect("create view");

    let mut report = ViewsReport {
        seed: cfg.seed,
        threads: cfg.threads,
        duration_s: cfg.duration.as_secs_f64(),
        key_dist: key_dist.spec(),
        preload: cfg.preload,
        ..ViewsReport::default()
    };

    let stop = AtomicBool::new(false);
    let next_id = AtomicI64::new(cfg.preload);
    let tickets = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let refresh_frames = AtomicU64::new(0);
    let refresh_rebuilds = AtomicU64::new(0);
    let refresh_recomputed = AtomicU64::new(0);
    let staleness_max = AtomicU64::new(0);
    let view_hist = LogHistogram::new();
    let recompute_hist = LogHistogram::new();

    std::thread::scope(|scope| {
        for w in 0..cfg.threads {
            let sales = &sales;
            let stop = &stop;
            let next_id = &next_id;
            let tickets = &tickets;
            let writes = &writes;
            let key_dist = &key_dist;
            let seed = worker_seed(cfg.seed, w);
            let max_writes = cfg.max_writes;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    // Claim a write ticket first: the cap bounds the WAL
                    // (and the final quiesced drain) no matter how far
                    // the writers outrun the applier.
                    if tickets.fetch_add(1, Ordering::Relaxed) >= max_writes {
                        break;
                    }
                    let roll: u32 = rng.random_range(0..100u32);
                    let hi = next_id.load(Ordering::Relaxed);
                    if roll < 70 || hi == 0 {
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        let cat = key_dist.sample(&mut rng);
                        let _ = sales.insert_one(sale_doc(id, cat, &mut rng));
                    } else if roll < 85 {
                        let id = rng.random_range(0..hi);
                        let _ = sales.update(
                            &Filter::eq("_id", id),
                            &UpdateSpec::set("price_cents", rng.random_range(0..100_000i64)),
                            false,
                            false,
                        );
                    } else {
                        let id = rng.random_range(0..hi);
                        sales.delete_many(&Filter::eq("_id", id));
                    }
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The refresher: keeps the view current and tracks staleness.
        {
            let views = &views;
            let stop = &stop;
            let (frames, rebuilds, recomputed, stale) = (
                &refresh_frames,
                &refresh_rebuilds,
                &refresh_recomputed,
                &staleness_max,
            );
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = views.refresh().expect("refresh");
                    frames.fetch_add(s.frames_applied, Ordering::Relaxed);
                    rebuilds.fetch_add(s.full_rebuilds, Ordering::Relaxed);
                    recomputed.fetch_add(s.groups_recomputed, Ordering::Relaxed);
                    let lag = views.staleness("q7").expect("staleness");
                    stale.fetch_max(lag, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }

        // The stop controller: ends the run on wall-clock alone, so
        // stopping never waits on threads parked behind the view mutex.
        {
            let stop = &stop;
            let duration = cfg.duration;
            scope.spawn(move || {
                std::thread::sleep(duration);
                stop.store(true, Ordering::Relaxed);
            });
        }

        // The sampler (this thread): view read vs full recompute.
        let deadline = Instant::now() + cfg.duration;
        let pipeline = q7_pipeline();
        while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
            let t = Instant::now();
            let (snapshot, _) = views.read("q7").expect("view read");
            std::hint::black_box(snapshot.len());
            view_hist.record(t.elapsed().as_micros() as u64);

            let t = Instant::now();
            let fresh = ddb.db().aggregate("sales", &pipeline).expect("recompute");
            std::hint::black_box(fresh.len());
            recompute_hist.record(t.elapsed().as_micros() as u64);
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    report.writes = writes.load(Ordering::Relaxed);
    report.staleness_max_frames = staleness_max.load(Ordering::Relaxed);

    let mut frames = refresh_frames.load(Ordering::Relaxed);
    let mut rebuilds = refresh_rebuilds.load(Ordering::Relaxed);
    let mut recomputed = refresh_recomputed.load(Ordering::Relaxed);
    // Each refresh applies a bounded number of frames; quiesced, loop
    // until the cursor is dry before judging convergence.
    let drain_all = |frames: &mut u64, rebuilds: &mut u64, recomputed: &mut u64| loop {
        let s = views.refresh().expect("quiesced refresh");
        *frames += s.frames_applied;
        *rebuilds += s.full_rebuilds;
        *recomputed += s.groups_recomputed;
        if s.frames_applied == 0 {
            return;
        }
    };

    // Drill 1: quiesced divergence sweep.
    drain_all(&mut frames, &mut rebuilds, &mut recomputed);
    report.divergences += divergence_count(&ddb, &views, "q7");

    // Drill 2: checkpoint truncation must force a clean full rebuild.
    ddb.wal().set_change_capacity(4);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xDEAD);
    for _ in 0..64 {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let cat = key_dist.sample(&mut rng);
        sales.insert_one(sale_doc(id, cat, &mut rng)).expect("drill insert");
    }
    ddb.checkpoint().expect("checkpoint");
    drain_all(&mut frames, &mut rebuilds, &mut recomputed);
    report.divergences += divergence_count(&ddb, &views, "q7");

    // Drill 3: idle heartbeat advances the watermark to the tip.
    views.set_heartbeat_on_idle(true);
    let s = views.refresh().expect("heartbeat refresh");
    report.heartbeats = s.heartbeats;
    frames += s.frames_applied;
    if views.staleness("q7").expect("staleness") != 0 {
        report.divergences += 1;
    }

    report.frames_applied = frames;
    report.full_rebuilds = rebuilds;
    report.groups_recomputed = recomputed;
    report.view_groups = views.read("q7").expect("view read").0.len();
    report.view_read_p50_us = view_hist.percentile(50.0);
    report.view_read_p99_us = view_hist.percentile(99.0);
    report.view_read_mean_us = view_hist.mean();
    report.recompute_p50_us = recompute_hist.percentile(50.0);
    report.recompute_p99_us = recompute_hist.percentile(99.0);
    report.recompute_mean_us = recompute_hist.mean();
    report.speedup_mean = if report.view_read_mean_us > 0.0 {
        report.recompute_mean_us / report.view_read_mean_us
    } else {
        report.recompute_mean_us.max(1.0)
    };

    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_converges_and_validates() {
        let cfg = ViewsConfig {
            threads: 2,
            duration: Duration::from_millis(250),
            preload: 2_000,
            ..ViewsConfig::default()
        };
        let report = run_views(&cfg);
        assert_eq!(report.divergences, 0);
        assert!(report.writes > 0);
        assert!(report.frames_applied > 0);
        assert!(report.full_rebuilds >= 1, "truncation drill must rebuild");
        assert!(report.heartbeats >= 1);
        let json = report.to_json();
        validate_views_report(&json).unwrap();
    }

    #[test]
    fn validator_rejects_divergence_and_missing_drills() {
        let mut report = ViewsReport {
            heartbeats: 1,
            full_rebuilds: 1,
            key_dist: "uniform(0..9)".into(),
            ..ViewsReport::default()
        };
        validate_views_report(&report.to_json()).unwrap();
        report.divergences = 1;
        assert!(validate_views_report(&report.to_json()).is_err());
        report.divergences = 0;
        report.heartbeats = 0;
        assert!(validate_views_report(&report.to_json()).is_err());
        assert!(validate_views_report("{}").is_err());
    }
}
