//! The multi-threaded workload driver.
//!
//! N workers share one target and one op-id sequence. In fixed-rate mode
//! they also share one [`RateLimiter`]: each worker claims the next
//! schedule slot, sleeps until it, runs the op, and records latency from
//! the slot's *intended* start — so an op that queues behind a stall is
//! charged its full wait (coordinated-omission correction). In
//! max-throughput mode workers run back-to-back and latency is the
//! plain service time.

use crate::hist::LogHistogram;
use crate::sched::{RateLimiter, RateMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One operation stream. `run` is called from every worker thread with a
/// globally unique op id and a per-worker deterministic RNG.
pub trait Workload: Sync {
    /// Executes one operation. Errors are counted, not fatal.
    fn run(&self, op_id: u64, rng: &mut SmallRng) -> doclite_docstore::Result<()>;
}

impl<F> Workload for F
where
    F: Fn(u64, &mut SmallRng) -> doclite_docstore::Result<()> + Sync,
{
    fn run(&self, op_id: u64, rng: &mut SmallRng) -> doclite_docstore::Result<()> {
        self(op_id, rng)
    }
}

/// Driver knobs.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Worker threads sharing the target.
    pub threads: usize,
    /// Pacing mode.
    pub mode: RateMode,
    /// Unrecorded warmup before the measured window opens.
    pub warmup: Duration,
    /// Length of the measured window.
    pub duration: Duration,
    /// Optional cap on measured ops; the run stops at whichever of
    /// duration / max_ops is hit first.
    pub max_ops: Option<u64>,
    /// Root seed; worker `w` derives its RNG deterministically from
    /// `seed` and `w`.
    pub seed: u64,
    /// Print live progress lines to stderr about once a second.
    pub progress: bool,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 1,
            mode: RateMode::MaxThroughput,
            warmup: Duration::from_millis(200),
            duration: Duration::from_secs(2),
            max_ops: None,
            seed: 0xD0C1,
            progress: false,
        }
    }
}

/// Aggregate result of one stress run.
pub struct StressResult {
    /// Ops recorded in the measured window.
    pub ops: u64,
    /// Errors among them.
    pub errors: u64,
    /// Measured-window wall time.
    pub elapsed: Duration,
    /// Merged latency histogram (nanoseconds).
    pub hist: LogHistogram,
    /// Recorded ops per worker (deterministic-seeding visibility).
    pub per_worker_ops: Vec<u64>,
}

impl StressResult {
    /// Ops/second over the measured window.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Percentile latency in microseconds.
    pub fn p_us(&self, p: f64) -> f64 {
        self.hist.percentile(p) as f64 / 1_000.0
    }

    /// One-line summary for progress output.
    pub fn summary(&self) -> String {
        format!(
            "{:>8} ops  {:>9.0} ops/s  p50 {:>8.1}us  p99 {:>9.1}us  p99.9 {:>9.1}us  max {:>9.1}us{}",
            self.ops,
            self.throughput(),
            self.p_us(50.0),
            self.p_us(99.0),
            self.p_us(99.9),
            self.hist.max() as f64 / 1_000.0,
            if self.errors > 0 {
                format!("  ERRORS {}", self.errors)
            } else {
                String::new()
            }
        )
    }
}

/// Deterministic per-worker RNG seed: the root seed mixed with the
/// worker index through a splitmix-style multiply, so every worker draws
/// an independent, reproducible stream.
pub fn worker_seed(seed: u64, worker: usize) -> u64 {
    let mut z = seed ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Op ids at or above this mean "stop": a worker observing one exits.
/// Storing it into the shared op counter halts every worker at its next
/// claim (cql-stress's invalid-op-id scheme).
const ASK_TO_STOP: u64 = 1 << 63;

/// Runs `workload` under `cfg` and returns the merged result.
pub fn run_stress<W: Workload + ?Sized>(workload: &W, cfg: &StressConfig) -> StressResult {
    assert!(cfg.threads >= 1, "need at least one worker");
    let started = Instant::now();
    let record_after = started + cfg.warmup;
    let deadline = record_after + cfg.duration;

    let op_ids = AtomicU64::new(0);
    let measured = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let limiter = match cfg.mode {
        RateMode::FixedRate(r) => Some(RateLimiter::new(started, r)),
        RateMode::MaxThroughput => None,
    };
    let hists: Vec<LogHistogram> = (0..cfg.threads).map(|_| LogHistogram::new()).collect();
    let mut per_worker_ops = vec![0u64; cfg.threads];

    std::thread::scope(|s| {
        let handles: Vec<_> = hists
            .iter()
            .enumerate()
            .map(|(w, hist)| {
                let op_ids = &op_ids;
                let measured = &measured;
                let errors = &errors;
                let limiter = limiter.as_ref();
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(worker_seed(cfg.seed, w));
                    let mut my_ops = 0u64;
                    loop {
                        let id = op_ids.fetch_add(1, Ordering::Relaxed);
                        if id >= ASK_TO_STOP {
                            break;
                        }
                        let intended = limiter.map(|l| l.issue_next_start_time());
                        match intended {
                            Some(t) => {
                                // A slot past the deadline will never be
                                // measured; don't sleep into it.
                                if t >= deadline {
                                    break;
                                }
                                let now = Instant::now();
                                if t > now {
                                    std::thread::sleep(t - now);
                                }
                            }
                            None => {
                                if Instant::now() >= deadline {
                                    break;
                                }
                            }
                        }
                        let begin = Instant::now();
                        let res = workload.run(id, &mut rng);
                        let end = Instant::now();
                        // Coordinated omission: charge from the intended
                        // start when one exists, not the actual one.
                        let latency = end.duration_since(intended.unwrap_or(begin));
                        if end >= record_after {
                            hist.record_duration(latency);
                            if res.is_err() {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            my_ops += 1;
                            let total = measured.fetch_add(1, Ordering::Relaxed) + 1;
                            if let Some(cap) = cfg.max_ops {
                                if total >= cap {
                                    op_ids.store(ASK_TO_STOP, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    my_ops
                })
            })
            .collect();

        if cfg.progress {
            let done = &done;
            let measured = &measured;
            s.spawn(move || {
                let mut last_ops = 0u64;
                let mut last_t = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(100));
                    if last_t.elapsed() >= Duration::from_secs(1) {
                        let m = measured.load(Ordering::Relaxed);
                        eprintln!(
                            "    t+{:5.1}s  {:>9} ops  {:>9.0} ops/s",
                            started.elapsed().as_secs_f64(),
                            m,
                            (m - last_ops) as f64 / last_t.elapsed().as_secs_f64()
                        );
                        last_ops = m;
                        last_t = Instant::now();
                    }
                }
            });
        }

        for (w, h) in handles.into_iter().enumerate() {
            per_worker_ops[w] = h.join().expect("stress worker panicked");
        }
        done.store(true, Ordering::Relaxed);
    });

    let finished = Instant::now();
    let merged = LogHistogram::new();
    for h in &hists {
        merged.merge(h);
    }
    StressResult {
        ops: measured.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: finished.saturating_duration_since(record_after),
        hist: merged,
        per_worker_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn max_throughput_runs_and_stops_on_time() {
        let cfg = StressConfig {
            threads: 2,
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(120),
            ..StressConfig::default()
        };
        let r = run_stress(
            &|_id: u64, _rng: &mut SmallRng| {
                std::thread::sleep(Duration::from_micros(200));
                Ok(())
            },
            &cfg,
        );
        assert!(r.ops > 0);
        assert_eq!(r.errors, 0);
        assert_eq!(r.ops, r.hist.count());
        assert_eq!(r.per_worker_ops.iter().sum::<u64>(), r.ops);
        // Latency of a 200us op must be recorded in the right ballpark.
        assert!(r.p_us(50.0) >= 200.0, "p50 {}", r.p_us(50.0));
    }

    #[test]
    fn max_ops_cap_stops_early() {
        let cfg = StressConfig {
            threads: 4,
            warmup: Duration::ZERO,
            duration: Duration::from_secs(30),
            max_ops: Some(500),
            ..StressConfig::default()
        };
        let start = Instant::now();
        let r = run_stress(&|_id: u64, _rng: &mut SmallRng| Ok(()), &cfg);
        assert!(start.elapsed() < Duration::from_secs(10));
        // Every worker may overshoot by at most its in-flight op.
        assert!(r.ops >= 500 && r.ops < 500 + 4, "{}", r.ops);
    }

    #[test]
    fn errors_are_counted_not_fatal() {
        let cfg = StressConfig {
            threads: 2,
            warmup: Duration::ZERO,
            duration: Duration::from_secs(5),
            max_ops: Some(100),
            ..StressConfig::default()
        };
        let n = AtomicUsize::new(0);
        let r = run_stress(
            &|_id: u64, _rng: &mut SmallRng| {
                if n.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                    Err(doclite_docstore::Error::InvalidQuery("boom".into()))
                } else {
                    Ok(())
                }
            },
            &cfg,
        );
        assert!(r.errors > 0);
        assert_eq!(r.ops, r.hist.count());
    }

    #[test]
    fn fixed_rate_offers_approximately_the_rate() {
        let cfg = StressConfig {
            threads: 2,
            mode: RateMode::FixedRate(500.0),
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(400),
            ..StressConfig::default()
        };
        let r = run_stress(&|_id: u64, _rng: &mut SmallRng| Ok(()), &cfg);
        let t = r.throughput();
        assert!(t > 300.0 && t < 700.0, "offered-rate throughput {t}");
    }

    /// The coordinated-omission acceptance test: at a low offered rate a
    /// single injected stall must inflate the recorded p99, because the
    /// ops queued behind it are charged from their *intended* starts.
    #[test]
    fn injected_stall_inflates_p99_at_low_rate() {
        let slow_op = |id: u64, _rng: &mut SmallRng| {
            if id == 40 {
                // One 60ms stall in an otherwise instant stream.
                std::thread::sleep(Duration::from_millis(60));
            }
            Ok(())
        };
        let cfg = StressConfig {
            threads: 1,
            mode: RateMode::FixedRate(200.0), // 5ms between intended starts
            warmup: Duration::ZERO,
            duration: Duration::from_millis(500),
            ..StressConfig::default()
        };
        let r = run_stress(&slow_op, &cfg);
        // ~100 ops at 200/s for 0.5s; the stall backs up ~12 slots whose
        // corrected latencies step down 60, 55, 50, ... ms.
        assert!(r.ops >= 50, "{}", r.ops);
        assert!(
            r.p_us(99.0) >= 30_000.0,
            "CO-corrected p99 should see the stall: {}us",
            r.p_us(99.0)
        );
        // Control: the same stream without the stall stays fast.
        let calm = run_stress(&|_id: u64, _rng: &mut SmallRng| Ok(()), &cfg);
        assert!(
            calm.p_us(99.0) < 30_000.0,
            "calm p99 {}us",
            calm.p_us(99.0)
        );
    }

    #[test]
    fn worker_seeding_is_deterministic() {
        use rand::Rng;
        // A single worker replays the same value stream for the same
        // seed, and a different stream for a different seed.
        let cfg = StressConfig {
            threads: 1,
            warmup: Duration::ZERO,
            duration: Duration::from_secs(5),
            max_ops: Some(200),
            seed: 42,
            ..StressConfig::default()
        };
        let sample = |cfg: &StressConfig| {
            let vals = std::sync::Mutex::new(Vec::new());
            run_stress(
                &|_id: u64, rng: &mut SmallRng| {
                    vals.lock().unwrap().push(rng.random_range(0..1_000_000u64));
                    Ok(())
                },
                cfg,
            );
            let v = vals.into_inner().unwrap();
            v[..200.min(v.len())].to_vec()
        };
        let a = sample(&cfg);
        assert_eq!(a, sample(&cfg));
        assert_ne!(a, sample(&StressConfig { seed: 43, ..cfg.clone() }));

        // Distinct workers derive distinct seeds from one root seed.
        let seeds: std::collections::BTreeSet<u64> =
            (0..64).map(|w| worker_seed(42, w)).collect();
        assert_eq!(seeds.len(), 64);
    }
}
