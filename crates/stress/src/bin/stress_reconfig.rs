//! The reconfiguration stress binary: runs all four topology-change
//! scenarios (shard add, drain-remove, live rebalance, rolling
//! crash/restart) under mixed seeded traffic and writes
//! `reports/BENCH_reconfig.json`. Exits non-zero if any scenario
//! reports `validation_errors > 0` — a lost, doubled, or corrupted
//! document anywhere fails the run.
//!
//! Knobs (environment variables):
//!
//! * `DOCLITE_STRESS_RECONFIG=1` — CI smoke scale: short windows and a
//!   lower ticket ceiling.
//! * `DOCLITE_RECONFIG_SECS` — measured seconds per scenario (default
//!   1.5; smoke 0.5).
//! * `DOCLITE_RECONFIG_THREADS` — worker threads (default 4).
//! * `DOCLITE_RECONFIG_SEED` — root seed for document derivation and
//!   op mixing (default 90210).

use doclite_stress::{
    validate_reconfig_report, ReconfigConfig, ReconfigReport, ReconfigScenario, run_scenario,
};
use std::time::Duration;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let smoke = std::env::var("DOCLITE_STRESS_RECONFIG").map(|v| v == "1").unwrap_or(false);
    let secs = env_f64("DOCLITE_RECONFIG_SECS", if smoke { 0.5 } else { 1.5 });
    let threads = env_f64("DOCLITE_RECONFIG_THREADS", 4.0) as usize;
    let seed = env_f64("DOCLITE_RECONFIG_SEED", 90210.0) as u64;
    let cfg = ReconfigConfig {
        threads,
        duration: Duration::from_secs_f64(secs),
        interval: Duration::from_secs_f64(secs / 8.0),
        seed,
        preload: 400,
        max_tickets: if smoke { 20_000 } else { 60_000 },
        ..ReconfigConfig::default()
    };

    let mut report = ReconfigReport {
        seed,
        threads,
        duration_s: secs,
        ..ReconfigReport::default()
    };
    for scenario in ReconfigScenario::ALL {
        eprintln!("== scenario: {} ==", scenario.name());
        let r = run_scenario(scenario, &cfg);
        eprintln!(
            "[{:>16}] {:>8} ops  {:>9.0} ops/s  p99 {:>9.1}us  {} errors  \
             {} rows validated  {} validation errors",
            r.scenario, r.ops, r.throughput_ops_s, r.p99_us, r.errors, r.validated_rows,
            r.validation_errors
        );
        report.scenarios.push(r);
    }

    let json = report.to_json();
    validate_reconfig_report(&json).expect("emitted report must satisfy its own schema");

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    std::fs::create_dir_all(dir).expect("create reports dir");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../reports/BENCH_reconfig.json"
    );
    std::fs::write(path, &json).expect("write report");
    println!("wrote {path}");
    println!("{json}");

    let bad = report.validation_errors();
    if bad > 0 {
        eprintln!("FAILED: {bad} validation error(s) across scenarios");
        std::process::exit(1);
    }
    eprintln!("all scenarios validated clean");
}
