//! The stress report binary: runs the workload matrix
//! (workload × deployment × thread count, max-throughput plus a
//! fixed-rate cell per deployment) and writes
//! `reports/BENCH_stress.json`.
//!
//! Knobs (environment variables):
//!
//! * `DOCLITE_STRESS_SMOKE=1` — CI smoke: tiny scale factor, short
//!   windows, thread counts {1, 2, 4}.
//! * `DOCLITE_STRESS_SF` — dataset scale factor (default 0.002; smoke
//!   0.001).
//! * `DOCLITE_STRESS_SECS` — measured seconds per cell (default 1.2;
//!   smoke 0.3).
//! * `DOCLITE_STRESS_SEED` — root RNG seed (default 53441).
//! * `DOCLITE_STRESS_EXEC` — aggregation executor: `parallel`
//!   (default: PR 6's morsel-driven executor) or `streaming` (the
//!   serial baseline).
//! * `DOCLITE_STRESS_REQUIRE_SCALING=1` — fail (exit 1) if the
//!   standalone read-only max-throughput scaling from 1 to 4 threads
//!   comes in under 1.5×. Only enforced when the machine actually has
//!   ≥ 4 cores; on smaller runners the gate logs and passes, because a
//!   single core cannot overlap anything.
//!
//! The sharded deployment runs with the paper's LAN model in *sleeping*
//! mode, so router↔shard exchanges block the worker the way real network
//! round-trips block a driver thread — that blocking is what concurrency
//! overlaps, and the read-only scaling cells measure exactly that.

use doclite_core::{Deployment, SetupOptions};
use doclite_docstore::{set_default_exec_mode, ExecMode};
use doclite_sharding::NetworkModel;
use doclite_stress::{
    run_stress, validate_report, CellResult, OpMix, RateMode, Scaling, StressConfig, StressEnv,
    StressReport,
};
use std::time::Duration;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn deployment_label(d: Deployment) -> &'static str {
    match d {
        Deployment::Standalone => "standalone",
        Deployment::Sharded => "sharded",
    }
}

fn main() {
    let smoke = env_flag("DOCLITE_STRESS_SMOKE");
    let sf = env_f64("DOCLITE_STRESS_SF", if smoke { 0.001 } else { 0.002 });
    let secs = env_f64("DOCLITE_STRESS_SECS", if smoke { 0.3 } else { 1.2 });
    let seed = env_f64("DOCLITE_STRESS_SEED", 53441.0) as u64;
    let thread_counts: Vec<usize> = if smoke { vec![1, 2, 4] } else { vec![1, 2, 4, 8] };
    let warmup = Duration::from_secs_f64((secs * 0.25).max(0.05));
    let duration = Duration::from_secs_f64(secs);

    // Aggregations run on the morsel-parallel executor by default; the
    // serial streaming executor stays one env var away for A/B runs.
    let exec = std::env::var("DOCLITE_STRESS_EXEC").unwrap_or_else(|_| "parallel".into());
    match exec.as_str() {
        "parallel" => set_default_exec_mode(ExecMode::Parallel),
        "streaming" => set_default_exec_mode(ExecMode::Streaming),
        other => panic!("DOCLITE_STRESS_EXEC must be parallel|streaming, got '{other}'"),
    }
    eprintln!("aggregation executor: {exec}");

    let mut report = StressReport {
        sf,
        thread_counts: thread_counts.clone(),
        ..StressReport::default()
    };

    for deployment in [Deployment::Standalone, Deployment::Sharded] {
        let dep = deployment_label(deployment);
        eprintln!("== {dep}: loading TPC-DS workload tables at SF {sf} ==");
        let opts = SetupOptions {
            // Sleeping LAN: exchanges cost real wall time per leg, as on
            // the paper's EC2 cluster (standalone ignores the model).
            network: NetworkModel::lan().sleeping(),
            max_chunk_size: 256 * 1024,
            ..SetupOptions::default()
        };
        let env = StressEnv::setup(deployment, sf, &opts)
            .unwrap_or_else(|e| panic!("setup {dep} failed: {e}"));

        let mixes: Vec<OpMix> = if smoke {
            vec![OpMix::read_only(), OpMix::mixed()]
        } else {
            vec![OpMix::read_only(), OpMix::mixed(), OpMix::analytical()]
        };
        let mut read_only_throughput: Vec<(usize, f64)> = Vec::new();
        for mix in &mixes {
            for &threads in &thread_counts {
                let workload = env.workload(mix.clone());
                let cfg = StressConfig {
                    threads,
                    mode: RateMode::MaxThroughput,
                    warmup,
                    duration,
                    max_ops: None,
                    seed,
                    progress: !smoke,
                };
                let r = run_stress(&workload, &cfg);
                eprintln!("[{dep:>10}/{:<10} t={threads}] {}", mix.name(), r.summary());
                if mix.name() == "read_only" {
                    read_only_throughput.push((threads, r.throughput()));
                }
                report.cells.push(CellResult::from_run(
                    mix.name(),
                    dep,
                    threads,
                    "max",
                    &r,
                ));
            }
        }

        // One fixed-rate cell per deployment: read-only at ~25% of the
        // measured max throughput on the highest thread count, with
        // coordinated-omission-corrected recording.
        if let Some(&(threads, max_tp)) = read_only_throughput.last() {
            let rate = (max_tp * 0.25).max(50.0);
            let mode = RateMode::FixedRate(rate);
            let workload = env.workload(OpMix::read_only());
            let cfg = StressConfig {
                threads,
                mode,
                warmup,
                duration,
                max_ops: None,
                seed,
                progress: false,
            };
            let r = run_stress(&workload, &cfg);
            eprintln!("[{dep:>10}/read_only  t={threads}] {} ({})", r.summary(), mode.label());
            report
                .cells
                .push(CellResult::from_run("read_only", dep, threads, &mode.label(), &r));
        }

        // Read-only max-throughput scaling from the lowest thread count
        // to 4 (or the highest measured).
        let lo = read_only_throughput.first().copied();
        let hi = read_only_throughput
            .iter()
            .find(|(t, _)| *t == 4)
            .or(read_only_throughput.last())
            .copied();
        if let (Some((t_lo, tp_lo)), Some((t_hi, tp_hi))) = (lo, hi) {
            if t_hi > t_lo && tp_lo > 0.0 {
                let ratio = tp_hi / tp_lo;
                eprintln!(
                    "[{dep:>10}] read_only scaling {t_lo}->{t_hi} threads: {ratio:.2}x"
                );
                report.scaling.push(Scaling {
                    workload: "read_only".into(),
                    deployment: dep.into(),
                    threads_lo: t_lo,
                    threads_hi: t_hi,
                    ratio,
                });
            }
        }
    }

    let json = report.to_json();
    validate_report(&json).expect("emitted report must satisfy its own schema");

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    std::fs::create_dir_all(dir).expect("create reports dir");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../reports/BENCH_stress.json"
    );
    std::fs::write(path, &json).expect("write report");
    println!("wrote {path}");
    println!("{json}");

    // Optional scaling gate (report is written first so a failing run
    // still leaves its evidence behind): standalone read-only must reach
    // 1.5× going 1 → 4 threads. A box without 4 cores cannot overlap
    // 4 threads of CPU-bound work, so the gate only arms there.
    if env_flag("DOCLITE_STRESS_REQUIRE_SCALING") {
        let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let cell = report
            .scaling
            .iter()
            .find(|s| s.deployment == "standalone" && s.workload == "read_only");
        match cell {
            Some(s) if cores >= 4 => {
                eprintln!(
                    "scaling gate: standalone read_only {}->{} threads = {:.2}x \
                     (cores={cores}, require >= 1.50x)",
                    s.threads_lo, s.threads_hi, s.ratio
                );
                if s.ratio < 1.5 {
                    eprintln!("scaling gate FAILED");
                    std::process::exit(1);
                }
            }
            Some(s) => eprintln!(
                "scaling gate skipped: only {cores} core(s) available \
                 (measured {:.2}x {}->{})",
                s.ratio, s.threads_lo, s.threads_hi
            ),
            None => {
                eprintln!("scaling gate FAILED: no standalone read_only scaling cell");
                std::process::exit(1);
            }
        }
    }
}
