//! The materialized-view stress binary: seeded writers churn a sales
//! collection while a refresher maintains a Q7-shaped incremental view,
//! then quiesced drills check divergence, checkpoint-truncation
//! fallback, and idle heartbeats. Writes `reports/BENCH_views.json`.
//! Exits non-zero on any view-vs-recompute divergence, or when the
//! view's read speedup over recomputation falls below 10x.
//!
//! Knobs (environment variables):
//!
//! * `DOCLITE_STRESS_VIEWS=1` — CI smoke scale: shorter window, smaller
//!   preload.
//! * `DOCLITE_VIEWS_SECS` — concurrent seconds (default 1.5; smoke 0.5).
//! * `DOCLITE_VIEWS_THREADS` — writer threads (default 4).
//! * `DOCLITE_VIEWS_SEED` — root seed (default 424242).
//! * `DOCLITE_VIEWS_DIST` — category-key skew spec (default
//!   `gaussian(0..50)`; also accepts `uniform(a..b)`, `seq(a..b)`,
//!   `fixed(n)`).
//! * `DOCLITE_VIEWS_MAX_WRITES` — hard cap on concurrent-phase writes
//!   (default 300000; smoke 100000) bounding the WAL and final drain.

use doclite_stress::{run_views, validate_views_report, ViewsConfig};
use std::time::Duration;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let smoke = std::env::var("DOCLITE_STRESS_VIEWS").map(|v| v == "1").unwrap_or(false);
    let secs = env_f64("DOCLITE_VIEWS_SECS", if smoke { 0.5 } else { 1.5 });
    let cfg = ViewsConfig {
        threads: env_f64("DOCLITE_VIEWS_THREADS", 4.0) as usize,
        duration: Duration::from_secs_f64(secs),
        seed: env_f64("DOCLITE_VIEWS_SEED", 424_242.0) as u64,
        preload: if smoke { 5_000 } else { 20_000 },
        key_dist: std::env::var("DOCLITE_VIEWS_DIST")
            .unwrap_or_else(|_| "gaussian(0..50)".into()),
        max_writes: env_f64(
            "DOCLITE_VIEWS_MAX_WRITES",
            if smoke { 100_000.0 } else { 300_000.0 },
        ) as u64,
    };

    let report = run_views(&cfg);
    eprintln!(
        "{} writes  {} frames applied  {} full rebuilds  {} groups recomputed  \
         staleness max {} frames",
        report.writes,
        report.frames_applied,
        report.full_rebuilds,
        report.groups_recomputed,
        report.staleness_max_frames,
    );
    eprintln!(
        "view read p50 {}us p99 {}us mean {:.1}us | recompute p50 {}us p99 {}us mean {:.1}us \
         | speedup {:.1}x | {} divergences",
        report.view_read_p50_us,
        report.view_read_p99_us,
        report.view_read_mean_us,
        report.recompute_p50_us,
        report.recompute_p99_us,
        report.recompute_mean_us,
        report.speedup_mean,
        report.divergences,
    );

    let json = report.to_json();
    validate_views_report(&json).expect("emitted report must satisfy its own schema");

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    std::fs::create_dir_all(dir).expect("create reports dir");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/BENCH_views.json");
    std::fs::write(path, &json).expect("write report");
    println!("wrote {path}");
    println!("{json}");

    if report.divergences > 0 {
        eprintln!("FAILED: view diverged from recompute {} time(s)", report.divergences);
        std::process::exit(1);
    }
    if report.speedup_mean < 10.0 {
        eprintln!(
            "FAILED: view read speedup {:.1}x is below the 10x acceptance bar",
            report.speedup_mean
        );
        std::process::exit(1);
    }
    eprintln!("view stayed convergent; reads {:.1}x faster than recompute", report.speedup_mean);
}
