//! Seeded value distributions for workload key generation, after the
//! `cassandra-stress`/`cql-stress` population DSL: a compact spec like
//! `uniform(1..100)`, `gaussian(1..100)`, `seq(1..100)`, or `fixed(7)`
//! chooses how a workload's keys are spread — and therefore how skewed
//! the group sizes a materialized view maintains are.
//!
//! All distributions are deterministic given the caller's seeded RNG
//! (`seq` given its construction order), so two runs with the same seed
//! generate the same key stream.

use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::atomic::{AtomicI64, Ordering};

/// A bounded integer distribution.
#[derive(Debug)]
pub enum Distribution {
    /// Every value in `[min, max]` equally likely.
    Uniform { min: i64, max: i64 },
    /// Normal around the range midpoint, with the `cassandra-stress`
    /// convention `stddev = (max - min) / 6` (±3σ spans the range);
    /// samples clamp to `[min, max]`.
    Gaussian { min: i64, max: i64 },
    /// `min, min+1, …, max, min, …` — a shared wrapping counter, so
    /// concurrent samplers partition the keyspace instead of colliding.
    Sequential { min: i64, max: i64, next: AtomicI64 },
    /// Always the same value.
    Fixed(i64),
}

impl Distribution {
    /// Uniform over `[min, max]` (inclusive).
    pub fn uniform(min: i64, max: i64) -> Distribution {
        assert!(min <= max, "empty distribution range");
        Distribution::Uniform { min, max }
    }

    /// Gaussian over `[min, max]` (see [`Distribution::Gaussian`]).
    pub fn gaussian(min: i64, max: i64) -> Distribution {
        assert!(min <= max, "empty distribution range");
        Distribution::Gaussian { min, max }
    }

    /// Sequential over `[min, max]`, wrapping.
    pub fn sequential(min: i64, max: i64) -> Distribution {
        assert!(min <= max, "empty distribution range");
        Distribution::Sequential { min, max, next: AtomicI64::new(min) }
    }

    /// Draws one value. `rng` feeds the random distributions; `seq`
    /// ignores it and steps its counter.
    pub fn sample(&self, rng: &mut SmallRng) -> i64 {
        match self {
            Distribution::Uniform { min, max } => rng.random_range(*min..=*max),
            Distribution::Gaussian { min, max } => {
                let mean = (*min as f64 + *max as f64) / 2.0;
                let stddev = (*max - *min) as f64 / 6.0;
                let v = (mean + gaussian_unit(rng) * stddev).round() as i64;
                v.clamp(*min, *max)
            }
            Distribution::Sequential { min, max, next } => {
                let span = max - min + 1;
                let n = next.fetch_add(1, Ordering::Relaxed);
                min + (n - min).rem_euclid(span)
            }
            Distribution::Fixed(v) => *v,
        }
    }

    /// Parses the `cassandra-stress` style spec: `uniform(1..100)`,
    /// `gaussian(1..100)`, `seq(1..100)`, `fixed(7)`.
    pub fn parse(spec: &str) -> Result<Distribution, String> {
        let spec = spec.trim();
        let (name, rest) = spec
            .split_once('(')
            .ok_or_else(|| format!("'{spec}': expected name(args)"))?;
        let args = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("'{spec}': missing closing paren"))?;
        let range = || -> Result<(i64, i64), String> {
            let (lo, hi) = args
                .split_once("..")
                .ok_or_else(|| format!("'{spec}': expected lo..hi"))?;
            let lo = lo.trim().parse::<i64>().map_err(|e| format!("'{spec}': {e}"))?;
            let hi = hi.trim().parse::<i64>().map_err(|e| format!("'{spec}': {e}"))?;
            if lo > hi {
                return Err(format!("'{spec}': empty range"));
            }
            Ok((lo, hi))
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "uniform" => range().map(|(lo, hi)| Distribution::uniform(lo, hi)),
            "gaussian" | "gauss" | "normal" => range().map(|(lo, hi)| Distribution::gaussian(lo, hi)),
            "seq" | "sequential" => range().map(|(lo, hi)| Distribution::sequential(lo, hi)),
            "fixed" => args
                .trim()
                .parse::<i64>()
                .map(Distribution::Fixed)
                .map_err(|e| format!("'{spec}': {e}")),
            other => Err(format!("unknown distribution '{other}'")),
        }
    }

    /// The canonical spec string (round-trips through [`parse`]).
    ///
    /// [`parse`]: Distribution::parse
    pub fn spec(&self) -> String {
        match self {
            Distribution::Uniform { min, max } => format!("uniform({min}..{max})"),
            Distribution::Gaussian { min, max } => format!("gaussian({min}..{max})"),
            Distribution::Sequential { min, max, .. } => format!("seq({min}..{max})"),
            Distribution::Fixed(v) => format!("fixed({v})"),
        }
    }
}

/// A standard-normal deviate via Box–Muller (the polar branch is not
/// worth the rejection loop here).
fn gaussian_unit(rng: &mut SmallRng) -> f64 {
    // 1 - u maps [0,1) to (0,1]: ln(0) is the only hazard.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_round_trips_and_samples_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for spec in ["uniform(1..100)", "gaussian(1..100)", "seq(1..100)", "fixed(7)"] {
            let d = Distribution::parse(spec).unwrap();
            assert_eq!(d.spec(), spec);
            for _ in 0..1000 {
                let v = d.sample(&mut rng);
                assert!((1..=100).contains(&v) || matches!(d, Distribution::Fixed(7)), "{spec}: {v}");
            }
        }
        assert!(Distribution::parse("zipf(1..10)").is_err());
        assert!(Distribution::parse("uniform(10..1)").is_err());
        assert!(Distribution::parse("uniform 1..10").is_err());
    }

    #[test]
    fn sequential_wraps_and_partitions() {
        let d = Distribution::sequential(0, 2);
        let mut rng = SmallRng::seed_from_u64(0);
        let seen: Vec<i64> = (0..7).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn gaussian_concentrates_around_the_midpoint() {
        let d = Distribution::gaussian(0, 600);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut near = 0;
        let n = 4000;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            // Within ±1σ of the mean (300 ± 100): ~68% for a normal.
            if (200..=400).contains(&v) {
                near += 1;
            }
        }
        let frac = near as f64 / n as f64;
        assert!((0.6..0.76).contains(&frac), "got {frac}");
    }

    #[test]
    fn uniform_spreads_evenly() {
        let d = Distribution::uniform(0, 9);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((800..1200).contains(c), "bucket {i}: {c}");
        }
    }
}
