//! Operation scheduling: max-throughput and fixed-rate modes.
//!
//! In fixed-rate mode a single shared [`RateLimiter`] hands every worker
//! the *intended* start time of its next operation — a monotone sequence
//! `base + k * interval` advanced by one atomic `fetch_add` per op
//! (cql-stress's scheme). Latency is then measured from the intended
//! start rather than the actual one, so a stalled server inflates the
//! recorded tail instead of silently delaying the load: the classic
//! coordinated-omission correction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How the driver paces operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateMode {
    /// Every worker issues its next op as soon as the previous returns.
    MaxThroughput,
    /// A fixed offered rate in operations/second, shared across all
    /// workers, with coordinated-omission-corrected latency recording.
    FixedRate(f64),
}

impl RateMode {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            RateMode::MaxThroughput => "max".to_owned(),
            RateMode::FixedRate(r) => format!("fixed:{r:.0}/s"),
        }
    }
}

/// Issues intended start times on a fixed schedule.
pub struct RateLimiter {
    base: Instant,
    increment_nanos: u64,
    nanos_counter: AtomicU64,
}

impl RateLimiter {
    /// A limiter issuing `ops_per_sec` slots per second, starting at
    /// `base`.
    pub fn new(base: Instant, ops_per_sec: f64) -> Self {
        assert!(
            ops_per_sec.is_finite() && ops_per_sec > 0.0,
            "rate must be positive"
        );
        RateLimiter {
            base,
            increment_nanos: (1e9 / ops_per_sec).max(1.0) as u64,
            nanos_counter: AtomicU64::new(0),
        }
    }

    /// Claims the next schedule slot and returns its intended start
    /// time. Slots are handed out in order across all callers; callers
    /// sleep until their slot if it lies in the future.
    pub fn issue_next_start_time(&self) -> Instant {
        let nanos = self
            .nanos_counter
            .fetch_add(self.increment_nanos, Ordering::Relaxed);
        self.base + Duration::from_nanos(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_evenly_spaced() {
        let base = Instant::now();
        let rl = RateLimiter::new(base, 1000.0); // 1ms apart
        let a = rl.issue_next_start_time();
        let b = rl.issue_next_start_time();
        let c = rl.issue_next_start_time();
        assert_eq!(a, base);
        assert_eq!(b - a, Duration::from_millis(1));
        assert_eq!(c - b, Duration::from_millis(1));
    }

    #[test]
    fn concurrent_claims_are_distinct_and_complete() {
        let base = Instant::now();
        let rl = RateLimiter::new(base, 1e9); // 1ns apart
        let mut all: Vec<Instant> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..1000).map(|_| rl.issue_next_start_time()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        all.sort();
        all.dedup();
        // 4000 claims -> 4000 distinct slots: no slot lost or reused.
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(RateMode::MaxThroughput.label(), "max");
        assert_eq!(RateMode::FixedRate(500.0).label(), "fixed:500/s");
    }
}
