//! A lock-free log-bucketed latency histogram (HdrHistogram-style).
//!
//! Values (nanoseconds) are assigned to buckets that are exact below 64
//! and logarithmic above: each power-of-two octave is divided into
//! [`SUB_BUCKETS`] equal sub-buckets, bounding the relative recording
//! error by `1 / SUB_BUCKETS` (~3.1%). Every bucket is an `AtomicU64`
//! bumped with a relaxed `fetch_add`, so any number of worker threads
//! record into one histogram — or into private histograms merged at the
//! end — without locks and without losing counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave `[2^k, 2^(k+1))` is split into
/// this many linear sub-buckets.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 5

/// Exact region: values below `2 * SUB_BUCKETS` get one bucket each.
const EXACT_LIMIT: u64 = SUB_BUCKETS * 2;

/// Bucket count covering the full `u64` range:
/// 64 exact buckets + 32 per octave for octaves 6..=63.
const N_BUCKETS: usize = EXACT_LIMIT as usize + (64 - SUB_BITS as usize - 1) * SUB_BUCKETS as usize;

/// The histogram. ~15 KiB of atomics; cheap to allocate per worker.
pub struct LogHistogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: identity below [`EXACT_LIMIT`], otherwise
/// log-linear on the top `SUB_BITS + 1` significant bits.
fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let octave = msb - SUB_BITS; // 1-based above the exact region
    let sub = (v >> octave) & (SUB_BUCKETS - 1);
    EXACT_LIMIT as usize + (octave as usize - 1) * SUB_BUCKETS as usize + sub as usize
}

/// Upper bound (inclusive) of a bucket — what percentile queries report,
/// so reported quantiles never understate the true value.
fn bucket_high(idx: usize) -> u64 {
    if idx < EXACT_LIMIT as usize {
        return idx as u64;
    }
    let rel = idx - EXACT_LIMIT as usize;
    let octave = (rel / SUB_BUCKETS as usize + 1) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    // Width minus one is added first so the topmost bucket's bound
    // (u64::MAX exactly) doesn't overflow mid-expression.
    ((SUB_BUCKETS + sub) << octave) + ((1u64 << octave) - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` has no Copy, so build the boxed array from a Vec.
        let v: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v.into_boxed_slice().try_into().expect("length matches");
        LogHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value. Lock-free; safe from any number of threads.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a `Duration` in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (exact). 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Mean of recorded values. 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The value at percentile `p` (0–100): the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(p/100 * count)`.
    /// Within one bucket (~3.1% relative error) of the exact
    /// sorted-vector percentile; the true maximum caps the answer.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let target = target.min(n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_high(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every count from `other` into `self` (worker → global merge).
    pub fn merge(&self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                a.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Snapshot of the non-empty buckets as `(index, count)` pairs —
    /// lets tests compare two histograms structurally.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    /// The bucket index a raw value falls into (exposed for the
    /// "within one bucket of exact" property tests).
    pub fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_identity() {
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover() {
        // Every bucket's high bound maps back to the same bucket, and
        // bounds strictly increase.
        let mut prev = 0u64;
        for i in 0..N_BUCKETS {
            let hi = bucket_high(i);
            assert_eq!(bucket_index(hi), i, "high bound of bucket {i}");
            if i > 0 {
                assert!(hi > prev, "bucket {i} bound not increasing");
            }
            prev = hi;
        }
    }

    #[test]
    fn relative_error_bounded() {
        // For values above the exact region the bucket width is at most
        // v / SUB_BUCKETS, i.e. ~3.1% relative error.
        for v in [100u64, 1_000, 12_345, 1_000_000, 123_456_789, u64::MAX / 2] {
            let hi = bucket_high(bucket_index(v));
            assert!(hi >= v);
            assert!(
                (hi - v) as f64 <= v as f64 / SUB_BUCKETS as f64,
                "v={v} hi={hi}"
            );
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1ms steps in ns-ish units
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        // Exact values are 500_000 and 990_000; allow one bucket.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.04, "{p99}");
        assert_eq!(h.percentile(100.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let all = LogHistogram::new();
        for v in 0..500u64 {
            a.record(v * 7 + 3);
            all.record(v * 7 + 3);
        }
        for v in 0..300u64 {
            b.record(v * 131 + 11);
            all.record(v * 131 + 11);
        }
        a.merge(&b);
        assert_eq!(a.nonzero_buckets(), all.nonzero_buckets());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogHistogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
