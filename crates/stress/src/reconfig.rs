//! Reconfiguration stress: a seeded write-then-validate workload runs
//! against a sharded cluster while a controller thread reshapes it —
//! adding a shard, drain-removing one, bouncing chunks between shards,
//! or rolling crash/restarts through every replica set.
//!
//! The workload follows the row-generator pattern: every document is a
//! pure function of `(seed, ticket)` ([`derive_sale_doc`]), so any read
//! can verify the stored bytes without a shadow copy, and the final
//! sweep ([`doclite_sharding::check_content`]) re-derives every
//! acknowledged ticket and demands it exists exactly once,
//! byte-identical. `validation_errors == 0` across all four scenarios
//! is the acceptance bar for elastic topology.

use crate::driver::worker_seed;
use crate::hist::LogHistogram;
use crate::report::{escape_json, parse_json, Json};
use doclite_bson::codec::encode_document;
use doclite_bson::{doc, Document};
use doclite_docstore::Filter;
use doclite_sharding::{
    chaos, check_content, ClusterConfig, NetworkModel, RetryPolicy, ShardKey, ShardedCluster,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Schema tag of the reconfiguration report.
pub const RECONFIG_SCHEMA: &str = "doclite-reconfig/v1";

/// The collection every scenario writes into.
const COLLECTION: &str = "store_sales";

/// Derives the one true document for a ticket. Every field is a pure
/// function of `(seed, ticket)` (splitmix-style hashing), and `_id` is
/// the ticket itself, so a validator can re-derive the exact bytes the
/// writer inserted and compare encodings bit-for-bit.
pub fn derive_sale_doc(seed: u64, ticket: i64) -> Document {
    let mut z = seed ^ (ticket as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    doc! {
        "_id" => ticket,
        "ss_ticket_number" => ticket,
        "ss_item_sk" => (next() % 18_000) as i64 + 1,
        "ss_customer_sk" => (next() % 100_000) as i64 + 1,
        "ss_quantity" => (next() % 100) as i64 + 1,
        "ss_net_paid_cents" => (next() % 1_000_000) as i64,
    }
}

/// One topology-change scenario run under mixed traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigScenario {
    /// Online `add_shard` mid-run, followed by a balancing round that
    /// migrates chunks onto the newcomer.
    AddShard,
    /// Drain-remove the highest-id non-primary shard mid-run: mark
    /// draining, migrate every chunk off, deregister.
    DrainRemove,
    /// Continuous chunk shuffling: deliberately skew placement, then
    /// rebalance, in a loop — migrations overlap traffic the whole run.
    LiveRebalance,
    /// Roll a crash/restart through one member of every shard while
    /// writes keep flowing (needs `replicas_per_shard >= 2`).
    RollingRestart,
}

impl ReconfigScenario {
    /// Every scenario, in report order.
    pub const ALL: [ReconfigScenario; 4] = [
        ReconfigScenario::AddShard,
        ReconfigScenario::DrainRemove,
        ReconfigScenario::LiveRebalance,
        ReconfigScenario::RollingRestart,
    ];

    /// The report label.
    pub fn name(self) -> &'static str {
        match self {
            ReconfigScenario::AddShard => "add_shard",
            ReconfigScenario::DrainRemove => "drain_remove",
            ReconfigScenario::LiveRebalance => "live_rebalance",
            ReconfigScenario::RollingRestart => "rolling_restart",
        }
    }
}

/// Knobs for one scenario run.
#[derive(Clone, Debug)]
pub struct ReconfigConfig {
    /// Worker threads driving mixed traffic.
    pub threads: usize,
    /// Wall-clock length of the measured run.
    pub duration: Duration,
    /// Reporting interval for the throughput/p99 curves.
    pub interval: Duration,
    /// Root seed: drives document derivation and per-worker op mixing.
    pub seed: u64,
    /// Tickets inserted (and balanced across shards) before the clock
    /// starts, so migrations have substance from the first step.
    pub preload: i64,
    /// Ticket ceiling: once claimed, workers switch to verified reads.
    /// Bounds the final content sweep.
    pub max_tickets: i64,
    /// Percentage of ops that are verified point reads (0–100).
    pub read_pct: u32,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            threads: 4,
            duration: Duration::from_millis(1500),
            interval: Duration::from_millis(200),
            seed: 90210,
            preload: 400,
            max_tickets: 60_000,
            read_pct: 30,
        }
    }
}

/// One reporting interval of one scenario.
#[derive(Clone, Copy, Debug)]
pub struct IntervalStat {
    /// Interval end, seconds from run start.
    pub t_s: f64,
    pub ops: u64,
    pub errors: u64,
    pub throughput_ops_s: f64,
    pub p99_us: f64,
}

/// The outcome of one scenario: aggregate numbers, the per-interval
/// curve, and the validation verdict.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub scenario: String,
    pub threads: usize,
    pub ops: u64,
    pub errors: u64,
    pub elapsed_s: f64,
    pub throughput_ops_s: f64,
    pub p99_us: f64,
    pub intervals: Vec<IntervalStat>,
    /// Tickets the final content sweep re-derived and checked.
    pub validated_rows: usize,
    /// Lost + duplicated + corrupted rows, live read mismatches, and
    /// convergence failures. The acceptance bar is zero.
    pub validation_errors: usize,
}

/// Runs one scenario end to end: build cluster, preload, drive mixed
/// traffic while the controller reshapes the topology, then heal,
/// finish any interrupted drain, and validate every acknowledged ticket
/// byte-for-byte.
pub fn run_scenario(scenario: ReconfigScenario, cfg: &ReconfigConfig) -> ScenarioResult {
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 3,
        replicas_per_shard: 2,
        db_name: format!("reconfig_{}", scenario.name()),
        network: NetworkModel::free(),
        retry: RetryPolicy::elastic(),
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection(COLLECTION, ShardKey::range(["ss_ticket_number"]), 8 * 1024)
        .expect("shard the workload collection");

    let seed = cfg.seed;
    let mut acked: Vec<i64> = Vec::new();
    for t in 0..cfg.preload {
        cluster
            .router()
            .insert_one(COLLECTION, derive_sale_doc(seed, t))
            .expect("preload insert on a healthy cluster");
        acked.push(t);
    }
    cluster.balance().expect("preload balance");

    let n_intervals =
        (cfg.duration.as_secs_f64() / cfg.interval.as_secs_f64()).ceil() as usize + 1;
    let hists: Vec<LogHistogram> = (0..n_intervals).map(|_| LogHistogram::new()).collect();
    let interval_errors: Vec<AtomicU64> =
        (0..n_intervals).map(|_| AtomicU64::new(0)).collect();
    let total_errors = AtomicU64::new(0);
    let read_mismatches = AtomicU64::new(0);
    let next_ticket = AtomicI64::new(cfg.preload);
    let stop = AtomicBool::new(false);
    let started = Instant::now();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..cfg.threads {
            let (cluster, hists, interval_errors) = (&cluster, &hists, &interval_errors);
            let (total_errors, read_mismatches) = (&total_errors, &read_mismatches);
            let (next_ticket, stop, cfg) = (&next_ticket, &stop, &cfg);
            handles.push(s.spawn(move || {
                let mut rng = worker_seed(cfg.seed, w);
                let mut roll = move || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng >> 32
                };
                let mut acked_local: Vec<i64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let idx = ((started.elapsed().as_nanos() / cfg.interval.as_nanos())
                        as usize)
                        .min(n_intervals - 1);
                    let capped = next_ticket.load(Ordering::Relaxed) >= cfg.max_tickets;
                    let read = !acked_local.is_empty()
                        && (capped || roll() % 100 < cfg.read_pct as u64);
                    let t0 = Instant::now();
                    let ok = if read {
                        // Verified point read of a ticket this worker
                        // itself got acknowledged: must return exactly
                        // the derived bytes, through any migration.
                        let t = acked_local[(roll() % acked_local.len() as u64) as usize];
                        match cluster.router().try_find_with(
                            COLLECTION,
                            &Filter::eq("ss_ticket_number", t),
                            &Default::default(),
                        ) {
                            Ok(docs) => {
                                let expect = encode_document(&derive_sale_doc(seed, t));
                                if docs.len() != 1 || encode_document(&docs[0]) != expect {
                                    read_mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                true
                            }
                            Err(_) => false,
                        }
                    } else {
                        let t = next_ticket.fetch_add(1, Ordering::Relaxed);
                        match cluster
                            .router()
                            .insert_one(COLLECTION, derive_sale_doc(seed, t))
                        {
                            Ok(()) => {
                                acked_local.push(t);
                                true
                            }
                            Err(_) => false,
                        }
                    };
                    hists[idx].record_duration(t0.elapsed());
                    if !ok {
                        interval_errors[idx].fetch_add(1, Ordering::Relaxed);
                        total_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                acked_local
            }));
        }
        let controller = {
            let (cluster, stop) = (&cluster, &stop);
            let duration = cfg.duration;
            s.spawn(move || run_controller(scenario, cluster, stop, duration))
        };
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            acked.extend(h.join().expect("worker panicked"));
        }
        controller.join().expect("controller panicked");
    });
    let elapsed = started.elapsed();

    // Quiesce: complete any drain the controller left half-done, spread
    // chunks, then validate both replica convergence and content.
    let mut validation_errors = 0usize;
    if let Err(e) = cluster.finish_drains() {
        eprintln!("[{}] finish_drains failed: {e}", scenario.name());
        validation_errors += 1;
    }
    if let Err(e) = cluster.balance() {
        eprintln!("[{}] post-run balance failed: {e}", scenario.name());
        validation_errors += 1;
    }
    if let Err(e) = chaos::check_convergence(&cluster) {
        eprintln!("[{}] convergence check failed: {e}", scenario.name());
        validation_errors += 1;
    }
    acked.sort_unstable();
    let content = check_content(&cluster, COLLECTION, "_id", acked.iter().copied(), |t| {
        derive_sale_doc(seed, t)
    });
    if !content.is_clean() {
        eprintln!(
            "[{}] content sweep: {} missing, {} duplicated, {} corrupted of {}",
            scenario.name(),
            content.missing,
            content.duplicated,
            content.corrupted,
            content.checked
        );
    }
    validation_errors += content.errors() + read_mismatches.load(Ordering::Relaxed) as usize;

    let interval_s = cfg.interval.as_secs_f64();
    let intervals: Vec<IntervalStat> = hists
        .iter()
        .zip(&interval_errors)
        .enumerate()
        .take_while(|(i, _)| (*i as f64) * interval_s < elapsed.as_secs_f64())
        .map(|(i, (h, e))| IntervalStat {
            t_s: (i + 1) as f64 * interval_s,
            ops: h.count(),
            errors: e.load(Ordering::Relaxed),
            throughput_ops_s: h.count() as f64 / interval_s,
            p99_us: h.percentile(99.0) as f64 / 1_000.0,
        })
        .collect();
    let total = LogHistogram::new();
    for h in &hists {
        total.merge(h);
    }
    ScenarioResult {
        scenario: scenario.name().to_owned(),
        threads: cfg.threads,
        ops: total.count(),
        errors: total_errors.load(Ordering::Relaxed),
        elapsed_s: elapsed.as_secs_f64(),
        throughput_ops_s: total.count() as f64 / elapsed.as_secs_f64().max(1e-9),
        p99_us: total.percentile(99.0) as f64 / 1_000.0,
        intervals,
        validated_rows: content.checked,
        validation_errors,
    }
}

/// Sleeps in small slices so a finished run never waits on a dozing
/// controller.
fn nap(stop: &AtomicBool, d: Duration) {
    let end = Instant::now() + d;
    while !stop.load(Ordering::Relaxed) && Instant::now() < end {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The topology-change side of a scenario, run concurrently with the
/// worker threads. Errors are tolerated (the run validates outcomes,
/// not controller luck); panics are not.
fn run_controller(
    scenario: ReconfigScenario,
    cluster: &ShardedCluster,
    stop: &AtomicBool,
    duration: Duration,
) {
    match scenario {
        ReconfigScenario::AddShard => {
            nap(stop, duration / 3);
            match cluster.add_shard() {
                Ok(id) => eprintln!("[add_shard] shard {id} joined"),
                Err(e) => eprintln!("[add_shard] add failed: {e}"),
            }
            if let Err(e) = cluster.balance() {
                eprintln!("[add_shard] balance failed: {e}");
            }
        }
        ReconfigScenario::DrainRemove => {
            nap(stop, duration / 3);
            let victim = cluster
                .router()
                .shards()
                .iter()
                .map(|s| s.id())
                .filter(|&id| id != 0)
                .max();
            if let Some(id) = victim {
                match cluster.remove_shard(id) {
                    Ok(moved) => {
                        eprintln!("[drain_remove] shard {id} drained ({moved} chunks) and left")
                    }
                    Err(e) => eprintln!("[drain_remove] removal of {id} deferred: {e}"),
                }
            }
        }
        ReconfigScenario::LiveRebalance => {
            nap(stop, duration / 6);
            while !stop.load(Ordering::Relaxed) {
                // Skew deliberately — push one chunk onto shard 0 —
                // then let the balancer pull the spread tight again, so
                // migrations overlap traffic for the whole run.
                if let Some(meta) = cluster.router().config().meta(COLLECTION) {
                    if let Some(i) = meta.chunks.iter().position(|c| c.shard != 0) {
                        let _ = cluster.router().move_chunk(COLLECTION, i, 0);
                    }
                }
                let _ = cluster.balance();
                nap(stop, duration / 10);
            }
        }
        ReconfigScenario::RollingRestart => {
            nap(stop, duration / 5);
            for shard in cluster.router().shards() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let rs = shard.replica_set();
                let member = rs.member_count() - 1;
                rs.crash_member(member);
                nap(stop, duration / 12);
                if let Err(e) = rs.restart_member(member) {
                    eprintln!("[rolling_restart] restart on {} failed: {e}", shard.name());
                }
                nap(stop, duration / 12);
            }
        }
    }
}

// ----- report ----------------------------------------------------------

/// The full reconfiguration report (`reports/BENCH_reconfig.json`).
#[derive(Clone, Debug, Default)]
pub struct ReconfigReport {
    pub seed: u64,
    pub threads: usize,
    pub duration_s: f64,
    pub scenarios: Vec<ScenarioResult>,
}

fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_owned()
    }
}

impl ReconfigReport {
    /// Total validation errors across every scenario — the number CI
    /// gates on.
    pub fn validation_errors(&self) -> usize {
        self.scenarios.iter().map(|s| s.validation_errors).sum()
    }

    /// Serializes to the `doclite-reconfig/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{RECONFIG_SCHEMA}\",");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"duration_s\": {},", fnum(self.duration_s));
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"scenario\": \"{}\",", escape_json(&sc.scenario));
            let _ = writeln!(s, "      \"threads\": {},", sc.threads);
            let _ = writeln!(s, "      \"ops\": {},", sc.ops);
            let _ = writeln!(s, "      \"errors\": {},", sc.errors);
            let _ = writeln!(s, "      \"elapsed_s\": {},", fnum(sc.elapsed_s));
            let _ = writeln!(
                s,
                "      \"throughput_ops_s\": {},",
                fnum(sc.throughput_ops_s)
            );
            let _ = writeln!(s, "      \"p99_us\": {},", fnum(sc.p99_us));
            let _ = writeln!(s, "      \"validated_rows\": {},", sc.validated_rows);
            let _ = writeln!(s, "      \"validation_errors\": {},", sc.validation_errors);
            s.push_str("      \"intervals\": [\n");
            for (j, iv) in sc.intervals.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"t_s\": {}, \"ops\": {}, \"errors\": {}, \
                     \"throughput_ops_s\": {}, \"p99_us\": {}}}",
                    fnum(iv.t_s),
                    iv.ops,
                    iv.errors,
                    fnum(iv.throughput_ops_s),
                    fnum(iv.p99_us),
                );
                s.push_str(if j + 1 < sc.intervals.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ]\n");
            s.push_str("    }");
            s.push_str(if i + 1 < self.scenarios.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Validates a serialized report against the `doclite-reconfig/v1`
/// schema: tag, all four scenarios present, every numeric field in
/// place, non-empty interval curves, and non-negative validation
/// counters. Does *not* fail on `validation_errors > 0` — that verdict
/// belongs to the caller (the binary exits non-zero; CI checks both).
pub fn validate_reconfig_report(text: &str) -> std::result::Result<(), String> {
    let root = parse_json(text)?;
    if root.get("schema").and_then(Json::as_str) != Some(RECONFIG_SCHEMA) {
        return Err(format!("schema tag must be '{RECONFIG_SCHEMA}'"));
    }
    for key in ["seed", "threads", "duration_s"] {
        root.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
    }
    let scenarios = root
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("'scenarios' must be an array")?;
    let mut seen: Vec<&str> = Vec::new();
    for sc in scenarios {
        let name = sc
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("scenario missing string field 'scenario'")?;
        seen.push(name);
        for key in [
            "threads",
            "ops",
            "errors",
            "elapsed_s",
            "throughput_ops_s",
            "p99_us",
            "validated_rows",
            "validation_errors",
        ] {
            let v = sc
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("scenario '{name}' missing numeric '{key}'"))?;
            if v < 0.0 {
                return Err(format!("scenario '{name}': '{key}' must be >= 0"));
            }
        }
        let rows = sc.get("validated_rows").and_then(Json::as_num).expect("checked");
        if rows < 1.0 {
            return Err(format!("scenario '{name}' validated no rows"));
        }
        let intervals = sc
            .get("intervals")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("scenario '{name}' missing 'intervals' array"))?;
        if intervals.is_empty() {
            return Err(format!("scenario '{name}' has an empty interval curve"));
        }
        for iv in intervals {
            for key in ["t_s", "ops", "errors", "throughput_ops_s", "p99_us"] {
                iv.get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("scenario '{name}' interval missing '{key}'"))?;
            }
        }
    }
    for want in ReconfigScenario::ALL {
        if !seen.contains(&want.name()) {
            return Err(format!("scenario '{}' missing from report", want.name()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_docs_are_deterministic_and_distinct() {
        let a = derive_sale_doc(7, 42);
        let b = derive_sale_doc(7, 42);
        assert_eq!(encode_document(&a), encode_document(&b));
        assert_ne!(
            encode_document(&derive_sale_doc(7, 43)),
            encode_document(&a),
            "neighboring tickets must differ"
        );
        assert_ne!(
            encode_document(&derive_sale_doc(8, 42)),
            encode_document(&a),
            "different seeds must differ"
        );
        assert_eq!(a.get("_id").and_then(|v| v.as_i64()), Some(42));
    }

    fn tiny_cfg() -> ReconfigConfig {
        ReconfigConfig {
            threads: 2,
            duration: Duration::from_millis(250),
            interval: Duration::from_millis(50),
            preload: 150,
            max_tickets: 4_000,
            ..ReconfigConfig::default()
        }
    }

    #[test]
    fn add_shard_scenario_validates_clean() {
        let r = run_scenario(ReconfigScenario::AddShard, &tiny_cfg());
        assert_eq!(r.validation_errors, 0, "{r:?}");
        assert!(r.validated_rows >= 150);
        assert!(!r.intervals.is_empty());
    }

    #[test]
    fn drain_remove_scenario_validates_clean() {
        let r = run_scenario(ReconfigScenario::DrainRemove, &tiny_cfg());
        assert_eq!(r.validation_errors, 0, "{r:?}");
    }

    #[test]
    fn live_rebalance_scenario_validates_clean() {
        let r = run_scenario(ReconfigScenario::LiveRebalance, &tiny_cfg());
        assert_eq!(r.validation_errors, 0, "{r:?}");
    }

    #[test]
    fn rolling_restart_scenario_validates_clean() {
        let r = run_scenario(ReconfigScenario::RollingRestart, &tiny_cfg());
        assert_eq!(r.validation_errors, 0, "{r:?}");
    }

    fn fake_result(name: &str) -> ScenarioResult {
        ScenarioResult {
            scenario: name.into(),
            threads: 2,
            ops: 100,
            errors: 0,
            elapsed_s: 0.3,
            throughput_ops_s: 333.0,
            p99_us: 50.0,
            intervals: vec![IntervalStat {
                t_s: 0.1,
                ops: 40,
                errors: 0,
                throughput_ops_s: 400.0,
                p99_us: 45.0,
            }],
            validated_rows: 90,
            validation_errors: 0,
        }
    }

    fn full_report() -> ReconfigReport {
        ReconfigReport {
            seed: 1,
            threads: 2,
            duration_s: 0.3,
            scenarios: ReconfigScenario::ALL
                .iter()
                .map(|s| fake_result(s.name()))
                .collect(),
        }
    }

    #[test]
    fn reconfig_report_roundtrip_validates() {
        validate_reconfig_report(&full_report().to_json()).unwrap();
    }

    #[test]
    fn reconfig_validator_rejects_missing_scenario() {
        let mut r = full_report();
        r.scenarios.retain(|s| s.scenario != "drain_remove");
        let err = validate_reconfig_report(&r.to_json()).unwrap_err();
        assert!(err.contains("drain_remove"), "{err}");
    }

    #[test]
    fn reconfig_validator_rejects_empty_intervals_and_zero_rows() {
        let mut r = full_report();
        r.scenarios[0].intervals.clear();
        assert!(validate_reconfig_report(&r.to_json()).is_err());
        let mut r = full_report();
        r.scenarios[1].validated_rows = 0;
        assert!(validate_reconfig_report(&r.to_json()).is_err());
    }

    #[test]
    fn reconfig_validator_rejects_wrong_schema() {
        let json = full_report().to_json().replace(RECONFIG_SCHEMA, "other/v0");
        assert!(validate_reconfig_report(&json).is_err());
    }
}
