//! Concurrency smoke suite (runs in CI): 8 writer + 8 reader threads
//! hammer one collection — on a WAL-backed standalone database and on a
//! WAL-backed 3-shard cluster — and must finish without deadlock or
//! panic, with every written document accounted for at the end.

use doclite_bson::doc;
use doclite_docstore::wal::{DurableDb, SyncPolicy, WalOptions};
use doclite_docstore::Filter;
use doclite_sharding::{
    ClusterConfig, DurabilityConfig, NetworkModel, ShardKey, ShardedCluster,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const WRITERS: usize = 8;
const READERS: usize = 8;
const DOCS_PER_WRITER: i64 = 200;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "doclite-stress-smoke-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the 8w+8r pattern against any insert/read closure pair. Writer
/// `w` inserts keys `w*DOCS_PER_WRITER..(w+1)*DOCS_PER_WRITER`; readers
/// spin point reads and counts until the writers finish, checking the
/// count never exceeds the final total and never shrinks.
fn hammer(
    insert: impl Fn(i64, i64) + Sync,
    count: impl Fn() -> usize + Sync,
    point_read: impl Fn(i64) -> usize + Sync,
) {
    let total = (WRITERS as i64) * DOCS_PER_WRITER;
    let writers_done = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(120);
    std::thread::scope(|s| {
        for w in 0..WRITERS as i64 {
            let insert = &insert;
            s.spawn(move || {
                for i in 0..DOCS_PER_WRITER {
                    insert(w, w * DOCS_PER_WRITER + i);
                }
            });
        }
        for r in 0..READERS {
            let count = &count;
            let point_read = &point_read;
            let writers_done = &writers_done;
            s.spawn(move || {
                let mut seen = 0usize;
                let mut k = r as i64;
                loop {
                    let n = count();
                    assert!(n <= total as usize, "count {n} overshot {total}");
                    assert!(n >= seen, "count shrank from {seen} to {n}");
                    seen = n;
                    // Point-read a key that may or may not exist yet;
                    // at most one document may carry it.
                    let hits = point_read(k % total);
                    assert!(hits <= 1, "duplicate key {}: {hits} docs", k % total);
                    k += 7;
                    if writers_done.load(Ordering::Relaxed) {
                        break;
                    }
                    assert!(Instant::now() < deadline, "smoke run deadlocked");
                }
            });
        }
        // The scope joins writers implicitly; flip the flag once their
        // handles are all done by spawning a watcher over the count.
        let writers_done = &writers_done;
        let count = &count;
        s.spawn(move || {
            while count() < total as usize {
                assert!(Instant::now() < deadline, "writers stalled");
                std::thread::sleep(Duration::from_millis(2));
            }
            writers_done.store(true, Ordering::Relaxed);
        });
    });
    assert_eq!(count(), total as usize);
}

#[test]
fn standalone_with_wal_8_writers_8_readers() {
    let dir = tmp("standalone");
    let (ddb, report) = DurableDb::open(
        "smoke",
        &dir,
        WalOptions { sync: SyncPolicy::Never, faults: None },
    )
    .unwrap();
    assert_eq!(report.frames_replayed, 0);
    let db = ddb.db().clone();
    hammer(
        |w, k| {
            db.collection("conc")
                .insert_one(doc! {"k" => k, "writer" => w, "pad" => "x".repeat(20)})
                .unwrap();
        },
        || db.collection("conc").count(&Filter::True),
        |k| db.collection("conc").find(&Filter::eq("k", k)).len(),
    );

    // The WAL captured every insert: a fresh recovery sees all of them.
    drop(db);
    drop(ddb);
    let (re, report) = DurableDb::open(
        "smoke",
        &dir,
        WalOptions { sync: SyncPolicy::Never, faults: None },
    )
    .unwrap();
    assert_eq!(
        re.db().collection("conc").count(&Filter::True),
        WRITERS * DOCS_PER_WRITER as usize
    );
    assert!(report.frames_replayed > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_with_wal_8_writers_8_readers() {
    let dir = tmp("sharded");
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 3,
        db_name: "smoke".into(),
        network: NetworkModel::free(),
        durability: Some(DurabilityConfig { dir: dir.clone(), sync: SyncPolicy::Never }),
        ..ClusterConfig::default()
    });
    // Small chunks so concurrent inserts race against live splits.
    cluster
        .shard_collection("conc", ShardKey::range(["k"]), 8 * 1024)
        .unwrap();
    let router = cluster.router();
    hammer(
        |w, k| {
            router
                .insert_one("conc", doc! {"k" => k, "writer" => w, "pad" => "x".repeat(20)})
                .unwrap();
        },
        || router.count("conc", &Filter::True),
        |k| router.find("conc", &Filter::eq("k", k)).len(),
    );

    // Chunk accounting survived the concurrent splits: totals match and
    // the chunk map invariants hold.
    let meta = cluster.router().config().meta("conc").unwrap();
    meta.check_invariants().unwrap();
    let total = WRITERS * DOCS_PER_WRITER as usize;
    let chunk_docs: usize = meta.chunks.iter().map(|c| c.docs).sum();
    assert_eq!(chunk_docs, total, "chunk doc accounting drifted");
    assert!(meta.chunks.len() > 1, "splits should have happened");
    let _ = std::fs::remove_dir_all(&dir);
}
