//! Property tests for the log-bucketed histogram: percentiles stay
//! within one bucket of the exact sorted-vector percentile across random
//! distributions, and merging is associative and commutative.

use doclite_stress::LogHistogram;
use proptest::prelude::*;

/// The exact percentile under the histogram's rank rule: the
/// `ceil(p/100 * n)`-th smallest value (1-based, clamped).
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((p / 100.0) * n).ceil().max(1.0).min(n) as usize;
    sorted[rank - 1]
}

fn build(values: &[u64]) -> LogHistogram {
    let h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn assert_within_one_bucket(values: &[u64], p: f64) {
    let h = build(values);
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let exact = exact_percentile(&sorted, p);
    let got = h.percentile(p);
    // Same bucket (or an adjacent one), never below the exact value,
    // and no further above it than one bucket width.
    let db = (LogHistogram::bucket_of(got) as i64 - LogHistogram::bucket_of(exact) as i64).abs();
    assert!(db <= 1, "p{p}: got {got} exact {exact}: {db} buckets apart");
    assert!(got >= exact, "p{p}: got {got} below exact {exact}");
    let width = (exact / 32).max(1);
    assert!(
        got - exact <= width,
        "p{p}: got {got} exceeds exact {exact} by more than a bucket ({width})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_match_sorted_vector_narrow(
        values in prop::collection::vec(0u64..100_000, 1..300),
    ) {
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_within_one_bucket(&values, p);
        }
    }

    #[test]
    fn percentiles_match_sorted_vector_full_range(
        values in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_within_one_bucket(&values, p);
        }
    }

    #[test]
    fn percentiles_match_sorted_vector_latency_shaped(
        // Microsecond-to-minute latencies with a heavy tail, the shape
        // the driver actually records.
        base in prop::collection::vec(1_000u64..1_000_000, 1..200),
        tail in prop::collection::vec(1_000_000u64..60_000_000_000, 0..20),
    ) {
        let mut values = base;
        values.extend(tail);
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_within_one_bucket(&values, p);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
        c in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        // (a ⊕ b) ⊕ c
        let left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a ⊕ (b ⊕ c)
        let bc = build(&b);
        bc.merge(&build(&c));
        let right = build(&a);
        right.merge(&bc);
        // b ⊕ a (commutativity, against a ⊕ b)
        let ab = build(&a);
        ab.merge(&build(&b));
        let ba = build(&b);
        ba.merge(&build(&a));

        for (x, y) in [(&left, &right), (&ab, &ba)] {
            prop_assert_eq!(x.nonzero_buckets(), y.nonzero_buckets());
            prop_assert_eq!(x.count(), y.count());
            prop_assert_eq!(x.max(), y.max());
            prop_assert_eq!(x.min(), y.min());
            prop_assert!((x.mean() - y.mean()).abs() <= f64::EPSILON * x.mean().abs().max(1.0) * 4.0);
        }
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
    }

    #[test]
    fn merged_percentiles_equal_combined_recording(
        a in prop::collection::vec(1_000u64..10_000_000, 1..150),
        b in prop::collection::vec(1_000u64..10_000_000, 1..150),
    ) {
        let merged = build(&a);
        merged.merge(&build(&b));
        let mut all = a.clone();
        all.extend(&b);
        let combined = build(&all);
        for p in [50.0, 99.0, 99.9] {
            prop_assert_eq!(merged.percentile(p), combined.percentile(p));
        }
    }
}
