//! Replica sets: "a feature of MongoDB that ensures redundancy by
//! storing the same data on multiple servers" (thesis Section 2.1.3.1 —
//! a shard may be "either a single mongod instance or a replica set";
//! Fig 2.5's production cluster replicates every shard).
//!
//! This implementation keeps the thesis-relevant semantics: synchronous
//! statement replication from primary to healthy secondaries under a
//! write concern, read preferences, primary failover by election of the
//! lowest-id healthy member, and resynchronization of recovered members.

use doclite_bson::Document;
use doclite_docstore::{Database, Error, Filter, FindOptions, Result, UpdateResult, UpdateSpec};
use parking_lot::RwLock;

/// Health of one replica-set member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Serving reads/writes.
    Up,
    /// Crashed or partitioned; receives no traffic and misses writes.
    Down,
}

/// Where reads are served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReadPreference {
    /// From the primary (MongoDB's default; always up to date).
    #[default]
    Primary,
    /// From a healthy secondary if one exists (may trail the primary
    /// while a member resyncs).
    Secondary,
}

/// How many members must acknowledge a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WriteConcern {
    /// Primary only.
    #[default]
    W1,
    /// Strict majority of the configured member count.
    Majority,
    /// Every configured member (fails while any member is down).
    All,
}

struct Member {
    db: Database,
    state: MemberState,
}

/// A replica set: one primary plus secondaries holding copies of the
/// data.
pub struct ReplicaSet {
    name: String,
    members: RwLock<Vec<Member>>,
    primary: RwLock<usize>,
}

impl ReplicaSet {
    /// Creates a set with `n` members (`n ≥ 1`); member 0 starts as
    /// primary.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        assert!(n >= 1, "replica set needs at least one member");
        let name = name.into();
        let members = (0..n)
            .map(|i| Member {
                db: Database::new(format!("{name}_m{i}")),
                state: MemberState::Up,
            })
            .collect();
        ReplicaSet { name, members: RwLock::new(members), primary: RwLock::new(0) }
    }

    /// The set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of configured members.
    pub fn member_count(&self) -> usize {
        self.members.read().len()
    }

    /// Index of the current primary.
    pub fn primary_index(&self) -> usize {
        *self.primary.read()
    }

    /// Health of a member.
    pub fn member_state(&self, index: usize) -> MemberState {
        self.members.read()[index].state
    }

    /// Healthy member count.
    pub fn healthy_members(&self) -> usize {
        self.members
            .read()
            .iter()
            .filter(|m| m.state == MemberState::Up)
            .count()
    }

    fn acknowledged(&self, concern: WriteConcern) -> Result<()> {
        let total = self.member_count();
        let healthy = self.healthy_members();
        let needed = match concern {
            WriteConcern::W1 => 1,
            WriteConcern::Majority => total / 2 + 1,
            WriteConcern::All => total,
        };
        if healthy < needed {
            return Err(Error::InvalidQuery(format!(
                "write concern not satisfiable: {healthy} healthy of {total}, need {needed}"
            )));
        }
        Ok(())
    }

    /// Runs a closure against the primary and every healthy secondary
    /// (synchronous statement replication).
    fn replicate<R>(
        &self,
        concern: WriteConcern,
        f: impl Fn(&Database) -> Result<R>,
    ) -> Result<R> {
        self.acknowledged(concern)?;
        let members = self.members.read();
        let primary = *self.primary.read();
        if members[primary].state != MemberState::Up {
            return Err(Error::InvalidQuery("no primary available".into()));
        }
        let result = f(&members[primary].db)?;
        for (i, m) in members.iter().enumerate() {
            if i != primary && m.state == MemberState::Up {
                f(&m.db)?;
            }
        }
        Ok(result)
    }

    /// Inserts one document under a write concern.
    pub fn insert_one(
        &self,
        collection: &str,
        doc: Document,
        concern: WriteConcern,
    ) -> Result<()> {
        // ensure_id first so every member stores the same _id.
        let mut doc = doc;
        doc.ensure_id();
        self.replicate(concern, |db| {
            db.collection(collection).insert_one(doc.clone()).map(|_| ())
        })
    }

    /// Updates under a write concern.
    pub fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
        concern: WriteConcern,
    ) -> Result<UpdateResult> {
        self.replicate(concern, |db| {
            db.collection(collection).update(filter, spec, upsert, multi)
        })
    }

    /// Deletes under a write concern; returns the primary's count.
    pub fn delete_many(
        &self,
        collection: &str,
        filter: &Filter,
        concern: WriteConcern,
    ) -> Result<usize> {
        self.replicate(concern, |db| {
            Ok(db
                .get_collection(collection)
                .map(|c| c.delete_many(filter))
                .unwrap_or(0))
        })
    }

    /// Reads under a read preference.
    pub fn find_with(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
        pref: ReadPreference,
    ) -> Vec<Document> {
        let members = self.members.read();
        let primary = *self.primary.read();
        let target = match pref {
            ReadPreference::Primary => primary,
            ReadPreference::Secondary => members
                .iter()
                .enumerate()
                .find(|(i, m)| *i != primary && m.state == MemberState::Up)
                .map(|(i, _)| i)
                .unwrap_or(primary),
        };
        match members[target].db.get_collection(collection) {
            Ok(c) => c.find_with(filter, opts),
            Err(_) => Vec::new(),
        }
    }

    /// Reads with default options.
    pub fn find(&self, collection: &str, filter: &Filter, pref: ReadPreference) -> Vec<Document> {
        self.find_with(collection, filter, &FindOptions::default(), pref)
    }

    /// Marks a member down. If it was the primary, the lowest-index
    /// healthy member is elected (returns the new primary, or `None` if
    /// the set lost quorum entirely).
    pub fn fail_member(&self, index: usize) -> Option<usize> {
        let mut members = self.members.write();
        members[index].state = MemberState::Down;
        let mut primary = self.primary.write();
        if *primary == index {
            let next = members
                .iter()
                .position(|m| m.state == MemberState::Up)?;
            *primary = next;
        }
        Some(*primary)
    }

    /// Brings a member back up, resynchronizing its data from the
    /// current primary (initial-sync semantics: its state is replaced by
    /// a copy of the primary's).
    pub fn recover_member(&self, index: usize) {
        let mut members = self.members.write();
        let primary = *self.primary.read();
        if index == primary {
            members[index].state = MemberState::Up;
            return;
        }
        // Rebuild the member's database from the primary.
        let fresh = Database::new(format!("{}_m{index}", self.name));
        for name in members[primary].db.collection_names() {
            let docs = members[primary]
                .db
                .get_collection(&name)
                .map(|c| c.all_docs())
                .unwrap_or_default();
            let coll = fresh.collection(&name);
            coll.insert_many(docs).ok();
        }
        members[index].db = fresh;
        members[index].state = MemberState::Up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn seeded(n: usize) -> ReplicaSet {
        let rs = ReplicaSet::new("rs0", n);
        for i in 0..10i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::All).unwrap();
        }
        rs
    }

    #[test]
    fn writes_replicate_to_all_members() {
        let rs = seeded(3);
        let members = rs.members.read();
        for m in members.iter() {
            assert_eq!(m.db.get_collection("c").unwrap().len(), 10);
        }
    }

    #[test]
    fn replicated_docs_share_ids() {
        let rs = seeded(2);
        let a = rs.find("c", &Filter::eq("k", 3i64), ReadPreference::Primary);
        let b = rs.find("c", &Filter::eq("k", 3i64), ReadPreference::Secondary);
        assert_eq!(a, b);
        assert_eq!(a[0].id(), b[0].id());
    }

    #[test]
    fn secondary_reads_serve_from_secondary() {
        let rs = seeded(3);
        // Make the primary diverge by writing with W1 while secondaries
        // are down — simpler: fail secondaries, write, recover, then the
        // recovered member is resynced and identical again.
        assert_eq!(
            rs.find("c", &Filter::True, ReadPreference::Secondary).len(),
            10
        );
    }

    #[test]
    fn failover_elects_new_primary_and_keeps_data() {
        let rs = seeded(3);
        assert_eq!(rs.primary_index(), 0);
        let new_primary = rs.fail_member(0).unwrap();
        assert_eq!(new_primary, 1);
        // Reads and writes continue.
        assert_eq!(rs.find("c", &Filter::True, ReadPreference::Primary).len(), 10);
        rs.insert_one("c", doc! {"k" => 99i64}, WriteConcern::Majority).unwrap();
        assert_eq!(rs.find("c", &Filter::eq("k", 99i64), ReadPreference::Primary).len(), 1);
    }

    #[test]
    fn write_concern_all_fails_with_a_member_down() {
        let rs = seeded(3);
        rs.fail_member(2);
        let err = rs.insert_one("c", doc! {"k" => 100i64}, WriteConcern::All);
        assert!(err.is_err());
        // Majority still succeeds (2 of 3).
        rs.insert_one("c", doc! {"k" => 100i64}, WriteConcern::Majority).unwrap();
    }

    #[test]
    fn majority_fails_when_quorum_lost() {
        let rs = seeded(3);
        rs.fail_member(1);
        rs.fail_member(2);
        assert!(rs
            .insert_one("c", doc! {"k" => 1i64}, WriteConcern::Majority)
            .is_err());
        // W1 still works on the surviving primary.
        rs.insert_one("c", doc! {"k" => 1i64}, WriteConcern::W1).unwrap();
    }

    #[test]
    fn recovered_member_resyncs_missed_writes() {
        let rs = seeded(3);
        rs.fail_member(2);
        for i in 100..110i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::Majority).unwrap();
        }
        rs.recover_member(2);
        assert_eq!(rs.healthy_members(), 3);
        let member2_len = rs.members.read()[2].db.get_collection("c").unwrap().len();
        assert_eq!(member2_len, 20);
    }

    #[test]
    fn total_failure_leaves_no_primary() {
        let rs = seeded(2);
        rs.fail_member(1);
        assert_eq!(rs.fail_member(0), None);
        assert!(rs.insert_one("c", doc! {"k" => 1i64}, WriteConcern::W1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_set_panics() {
        let _ = ReplicaSet::new("rs0", 0);
    }
}
