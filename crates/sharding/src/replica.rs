//! Replica sets: "a feature of MongoDB that ensures redundancy by
//! storing the same data on multiple servers" (thesis Section 2.1.3.1 —
//! a shard may be "either a single mongod instance or a replica set";
//! Fig 2.5's production cluster replicates every shard).
//!
//! This implementation keeps the thesis-relevant semantics: synchronous
//! statement replication from primary to healthy secondaries under a
//! write concern, read preferences, primary failover by election of the
//! lowest-id healthy member, and resynchronization of recovered members.
//!
//! Two divergence hazards of naive statement replication are handled
//! explicitly:
//!
//! * **Upserts** materialize the document once on the primary and
//!   replicate it *by value*, so every member stores the same `_id`
//!   (re-running the upsert statement per member would mint a fresh
//!   `_id` on each).
//! * **Partial replication**: a secondary whose apply fails mid-write is
//!   marked [`MemberState::Stale`] and excluded from traffic until
//!   [`ReplicaSet::recover_member`] resyncs it; the write concern is
//!   then judged against the applies that actually succeeded, never
//!   against pre-checked member health alone.

use doclite_bson::Document;
use doclite_docstore::wal::{apply_record, DurableDb, RecoveryReport, SyncPolicy, Wal, WalOptions};
use doclite_docstore::{
    Database, Error, Filter, FindOptions, IndexDef, Result, UpdateResult, UpdateSpec,
};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Health of one replica-set member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Serving reads/writes.
    Up,
    /// Unreachable (network fault); its process — and therefore its
    /// in-memory data — is intact, and recovery only needs a resync of
    /// the writes it missed.
    Down,
    /// A replicated apply failed on this member after the primary had
    /// already committed: its copy may silently trail the primary, so it
    /// receives no traffic until [`ReplicaSet::recover_member`] resyncs
    /// it from the primary.
    Stale,
    /// The member's *process* died: its in-memory data is gone. A
    /// durable member restarts from checkpoint + WAL
    /// ([`ReplicaSet::restart_member`]); a non-durable one restarts
    /// empty and relies entirely on resync from a surviving primary.
    Crashed,
}

/// Per-member durability bookkeeping: where the WAL/checkpoint live and
/// the live handle (dropped while the member is crashed).
struct MemberDurability {
    dir: PathBuf,
    sync: SyncPolicy,
    handle: Option<DurableDb>,
}

/// Where reads are served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReadPreference {
    /// From the primary (MongoDB's default; always up to date).
    #[default]
    Primary,
    /// From a healthy secondary if one exists (may trail the primary
    /// while a member resyncs).
    Secondary,
}

/// How many members must acknowledge a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WriteConcern {
    /// Primary only.
    #[default]
    W1,
    /// Strict majority of the configured member count.
    Majority,
    /// Every configured member (fails while any member is down).
    All,
}

impl WriteConcern {
    /// Acknowledgements required out of `total` configured members.
    pub fn required(self, total: usize) -> usize {
        match self {
            WriteConcern::W1 => 1,
            WriteConcern::Majority => total / 2 + 1,
            WriteConcern::All => total,
        }
    }
}

struct Member {
    db: Arc<Database>,
    state: MemberState,
    durable: Option<MemberDurability>,
    /// The highest primary-WAL sequence this member's copy reflects —
    /// its log-shipping resume token. Advanced on every acknowledged
    /// apply and on resync; zeroed by a crash (memory gone).
    synced_to: u64,
}

/// How members were brought back in sync (see
/// [`ReplicaSet::resync_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResyncStats {
    /// Catch-ups served incrementally from the primary's log tail.
    pub log_shipped: u64,
    /// Catch-ups that fell back to a full copy (non-durable primary,
    /// token truncated by a checkpoint, or a diverged member whose
    /// frame apply failed).
    pub full_copies: u64,
}

/// A replica set: one primary plus secondaries holding copies of the
/// data.
pub struct ReplicaSet {
    name: String,
    members: RwLock<Vec<Member>>,
    primary: RwLock<usize>,
    log_shipped: AtomicU64,
    full_copies: AtomicU64,
}

// Lock ordering: `members` before `primary`, everywhere. Every method
// below that takes both acquires them in that order, so writers cannot
// deadlock against failover.
impl ReplicaSet {
    /// Creates a set with `n` members (`n ≥ 1`); member 0 starts as
    /// primary.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        assert!(n >= 1, "replica set needs at least one member");
        let name = name.into();
        let members = (0..n)
            .map(|i| Member {
                db: Arc::new(Database::new(format!("{name}_m{i}"))),
                state: MemberState::Up,
                durable: None,
                synced_to: 0,
            })
            .collect();
        ReplicaSet {
            name,
            members: RwLock::new(members),
            primary: RwLock::new(0),
            log_shipped: AtomicU64::new(0),
            full_copies: AtomicU64::new(0),
        }
    }

    /// Creates a set whose members are durable: each member keeps a WAL
    /// and checkpoints under `<base_dir>/m<i>`, so a crashed member can
    /// restart with every write it acknowledged before dying. Reopening
    /// an existing directory recovers whatever a previous incarnation
    /// persisted.
    pub fn new_durable(
        name: impl Into<String>,
        n: usize,
        base_dir: &Path,
        sync: SyncPolicy,
    ) -> Result<Self> {
        assert!(n >= 1, "replica set needs at least one member");
        let name = name.into();
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let dir = base_dir.join(format!("m{i}"));
            let (handle, _) = DurableDb::open(
                format!("{name}_m{i}"),
                &dir,
                WalOptions { sync, faults: None },
            )?;
            members.push(Member {
                db: Arc::clone(handle.db()),
                state: MemberState::Up,
                durable: Some(MemberDurability { dir, sync, handle: Some(handle) }),
                synced_to: 0,
            });
        }
        Ok(ReplicaSet {
            name,
            members: RwLock::new(members),
            primary: RwLock::new(0),
            log_shipped: AtomicU64::new(0),
            full_copies: AtomicU64::new(0),
        })
    }

    /// The set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of configured members.
    pub fn member_count(&self) -> usize {
        self.members.read().len()
    }

    /// Index of the current primary.
    pub fn primary_index(&self) -> usize {
        *self.primary.read()
    }

    /// Health of a member.
    pub fn member_state(&self, index: usize) -> MemberState {
        self.members.read()[index].state
    }

    /// Healthy member count.
    pub fn healthy_members(&self) -> usize {
        self.members
            .read()
            .iter()
            .filter(|m| m.state == MemberState::Up)
            .count()
    }

    /// The current primary's database handle, regardless of its health —
    /// for inspection (balancer bookkeeping, tests, data-size reports),
    /// not for serving traffic.
    pub fn db(&self) -> Arc<Database> {
        let members = self.members.read();
        Arc::clone(&members[*self.primary.read()].db)
    }

    /// A specific member's database handle (inspection/convergence
    /// checks).
    pub fn member_db(&self, index: usize) -> Arc<Database> {
        Arc::clone(&self.members.read()[index].db)
    }

    /// A durable member's live WAL handle (inspection: change streams,
    /// log-shipping tests); `None` while crashed or non-durable.
    pub fn member_wal(&self, index: usize) -> Option<Arc<Wal>> {
        Self::wal_of(&self.members.read()[index]).cloned()
    }

    /// The primary's database for serving traffic; fails when the
    /// primary is down and no election has replaced it.
    pub fn primary_db(&self) -> Result<Arc<Database>> {
        let members = self.members.read();
        let primary = *self.primary.read();
        if members[primary].state != MemberState::Up {
            return Err(Error::Unavailable(format!(
                "replica set {}: no primary available",
                self.name
            )));
        }
        Ok(Arc::clone(&members[primary].db))
    }

    /// The database a read under `pref` is served from: the primary by
    /// default, a healthy secondary under
    /// [`ReadPreference::Secondary`] — and, either way, *any* healthy
    /// member as a fallback, so reads fail over while the set retains at
    /// least one live member.
    pub fn read_db(&self, pref: ReadPreference) -> Result<Arc<Database>> {
        let members = self.members.read();
        let primary = *self.primary.read();
        let pick = |want_secondary: bool| {
            members
                .iter()
                .enumerate()
                .find(|(i, m)| (*i != primary) == want_secondary && m.state == MemberState::Up)
        };
        let chosen = match pref {
            ReadPreference::Primary => pick(false).or_else(|| pick(true)),
            ReadPreference::Secondary => pick(true).or_else(|| pick(false)),
        };
        match chosen {
            Some((_, m)) => Ok(Arc::clone(&m.db)),
            None => Err(Error::Unavailable(format!(
                "replica set {}: no healthy member to read from",
                self.name
            ))),
        }
    }

    /// Runs `primary_op` against the primary, then `secondary_op`
    /// against every healthy secondary (synchronous statement
    /// replication). A secondary whose apply fails is marked
    /// [`MemberState::Stale`] — never silently left behind — and the
    /// write concern is honored against the applies that *succeeded*.
    ///
    /// A statically unsatisfiable concern (fewer healthy members than
    /// acknowledgements required) is rejected before touching the
    /// primary; a concern that becomes unsatisfiable because applies
    /// failed en route returns an error *after* the primary committed,
    /// exactly like a MongoDB write-concern error (the write is not
    /// rolled back).
    fn replicate_with<R>(
        &self,
        concern: WriteConcern,
        primary_op: impl FnOnce(&Database) -> Result<R>,
        secondary_op: impl Fn(&Database, &R) -> Result<()>,
    ) -> Result<R> {
        let mut members = self.members.write();
        let primary = *self.primary.read();
        let total = members.len();
        let needed = concern.required(total);
        let healthy = members
            .iter()
            .filter(|m| m.state == MemberState::Up)
            .count();
        if members[primary].state != MemberState::Up {
            return Err(Error::Unavailable(format!(
                "replica set {}: no primary available",
                self.name
            )));
        }
        if healthy < needed {
            return Err(Error::Unavailable(format!(
                "write concern not satisfiable: {healthy} healthy of {total}, need {needed}"
            )));
        }
        let result = primary_op(&members[primary].db)?;
        // The primary's log position after this write: a secondary that
        // acknowledges it is synced through here, which is the resume
        // token a later log-shipping catch-up starts from.
        let tip = Self::wal_of(&members[primary]).map(|w| w.last_seq());
        let mut acked = 1usize;
        for (i, m) in members.iter_mut().enumerate() {
            if i == primary || m.state != MemberState::Up {
                continue;
            }
            match secondary_op(&m.db, &result) {
                Ok(()) => {
                    acked += 1;
                    if let Some(tip) = tip {
                        m.synced_to = tip;
                    }
                }
                // The member's copy may now trail the primary: take it
                // out of rotation until recovery resyncs it.
                Err(_) => m.state = MemberState::Stale,
            }
        }
        if acked < needed {
            return Err(Error::Unavailable(format!(
                "write concern not satisfied: {acked} of {total} members acknowledged, need \
                 {needed} (failed members marked stale; write committed on primary)"
            )));
        }
        Ok(result)
    }

    /// The sole member of a single-member set, if it is up — the fast
    /// path for the thesis's unreplicated evaluation cluster, where
    /// writes move straight into the store without defensive clones.
    /// (With one member every concern requires exactly one ack, and
    /// there is no secondary to mark stale, so the slow path's
    /// bookkeeping is all vacuous.)
    fn solo_member(&self) -> Option<Result<Arc<Database>>> {
        let members = self.members.read();
        if members.len() != 1 {
            return None;
        }
        Some(if members[0].state == MemberState::Up {
            Ok(Arc::clone(&members[0].db))
        } else {
            Err(Error::Unavailable(format!(
                "replica set {}: no primary available",
                self.name
            )))
        })
    }

    /// Inserts one document under a write concern.
    pub fn insert_one(
        &self,
        collection: &str,
        doc: Document,
        concern: WriteConcern,
    ) -> Result<()> {
        let mut doc = doc;
        if let Some(solo) = self.solo_member() {
            return solo?.collection(collection).insert_one(doc).map(|_| ());
        }
        // ensure_id first so every member stores the same _id.
        doc.ensure_id();
        self.replicate_with(
            concern,
            |db| db.collection(collection).insert_one(doc.clone()).map(|_| ()),
            |db, ()| db.collection(collection).insert_one(doc.clone()).map(|_| ()),
        )
    }

    /// Inserts a batch under a write concern; returns the batch size.
    pub fn insert_many(
        &self,
        collection: &str,
        docs: Vec<Document>,
        concern: WriteConcern,
    ) -> Result<usize> {
        let mut docs = docs;
        let n = docs.len();
        if let Some(solo) = self.solo_member() {
            return solo?
                .collection(collection)
                .insert_many(docs)
                .map(|_| n)
                .map_err(|(_, e)| e);
        }
        for d in &mut docs {
            d.ensure_id();
        }
        self.replicate_with(
            concern,
            |db| {
                db.collection(collection)
                    .insert_many(docs.clone())
                    .map(|_| ())
                    .map_err(|(_, e)| e)
            },
            |db, ()| {
                db.collection(collection)
                    .insert_many(docs.clone())
                    .map(|_| ())
                    .map_err(|(_, e)| e)
            },
        )
        .map(|()| n)
    }

    /// Updates under a write concern.
    ///
    /// Upserts are replicated by value: the primary materializes the new
    /// document (minting its `_id` exactly once), and secondaries insert
    /// that document verbatim instead of re-running the upsert — the one
    /// statement whose re-execution is not deterministic across members.
    pub fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
        concern: WriteConcern,
    ) -> Result<UpdateResult> {
        let (result, _) = self.replicate_with(
            concern,
            |db| {
                let r = db.collection(collection).update(filter, spec, upsert, multi)?;
                // Fetch the upserted document (if any) from the primary
                // so secondaries can store an identical copy.
                let upserted = match &r.upserted_id {
                    Some(id) => db
                        .get_collection(collection)?
                        .find_one(&Filter::eq("_id", id.clone())),
                    None => None,
                };
                Ok((r, upserted))
            },
            |db, (_, upserted)| match upserted {
                Some(doc) => db.collection(collection).insert_one(doc.clone()).map(|_| ()),
                // No upsert happened on the primary, so replicate the
                // statement itself with upsert disabled: a stale
                // secondary must not invent its own document.
                None => db
                    .collection(collection)
                    .update(filter, spec, false, multi)
                    .map(|_| ()),
            },
        )?;
        Ok(result)
    }

    /// Deletes under a write concern; returns the primary's count.
    pub fn delete_many(
        &self,
        collection: &str,
        filter: &Filter,
        concern: WriteConcern,
    ) -> Result<usize> {
        self.replicate_with(
            concern,
            // The fallible form surfaces a primary-side WAL append
            // failure (the delete was rolled back) instead of
            // acknowledging a count the log cannot reproduce.
            |db| match db.get_collection(collection) {
                Ok(c) => c.try_delete_many(filter),
                Err(_) => Ok(0),
            },
            |db, _| {
                db.get_collection(collection)
                    .map(|c| c.delete_many(filter))
                    .ok();
                Ok(())
            },
        )
    }

    /// Creates an index on every healthy member (replicated DDL, so
    /// secondaries can serve index-backed reads after failover).
    pub fn create_index(&self, collection: &str, def: IndexDef) -> Result<()> {
        self.replicate_with(
            WriteConcern::W1,
            |db| db.collection(collection).create_index(def.clone()),
            |db, ()| db.collection(collection).create_index(def.clone()),
        )
    }

    /// Drops a collection on every healthy member; true if the primary
    /// had it.
    pub fn drop_collection(&self, collection: &str) -> bool {
        let mut members = self.members.write();
        let primary = *self.primary.read();
        let mut existed = false;
        for (i, m) in members.iter().enumerate() {
            let dropped = m.db.drop_collection(collection);
            if i == primary {
                existed = dropped;
            }
        }
        // Healthy members got the drop; replaying the DropCollection
        // frame onto an unhealthy one later is idempotent, so their
        // tokens are left where they were.
        if let Some(tip) = Self::wal_of(&members[primary]).map(|w| w.last_seq()) {
            for m in members.iter_mut() {
                if m.state == MemberState::Up {
                    m.synced_to = tip;
                }
            }
        }
        existed
    }

    /// Reads under a read preference, failing over to any healthy member
    /// when the preferred one is gone. Returns an empty result when no
    /// member is reachable (use [`ReplicaSet::read_db`] for a fallible
    /// handle).
    pub fn find_with(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
        pref: ReadPreference,
    ) -> Vec<Document> {
        let Ok(db) = self.read_db(pref) else {
            return Vec::new();
        };
        match db.get_collection(collection) {
            Ok(c) => c.find_with(filter, opts),
            Err(_) => Vec::new(),
        }
    }

    /// Reads with default options.
    pub fn find(&self, collection: &str, filter: &Filter, pref: ReadPreference) -> Vec<Document> {
        self.find_with(collection, filter, &FindOptions::default(), pref)
    }

    /// Marks a member down. If it was the primary, the lowest-index
    /// healthy member is elected (returns the new primary, or `None` if
    /// the set lost quorum entirely).
    pub fn fail_member(&self, index: usize) -> Option<usize> {
        let mut members = self.members.write();
        members[index].state = MemberState::Down;
        let mut primary = self.primary.write();
        if *primary == index {
            let next = members
                .iter()
                .position(|m| m.state == MemberState::Up)?;
            *primary = next;
        }
        Some(*primary)
    }

    /// Brings a member back up, resynchronizing its data from the
    /// current primary (initial-sync semantics: its state is replaced by
    /// a copy of the primary's, index definitions included). The
    /// member's database handle stays the same `Arc`, so held references
    /// observe the resynced state. A [`MemberState::Crashed`] member is
    /// routed through [`ReplicaSet::restart_member`] instead — its
    /// in-memory data is gone and must come back from disk first.
    pub fn recover_member(&self, index: usize) {
        if self.member_state(index) == MemberState::Crashed {
            let _ = self.restart_member(index);
            return;
        }
        let mut members = self.members.write();
        let mut primary = self.primary.write();
        if index == *primary {
            members[index].state = MemberState::Up;
            return;
        }
        if members[*primary].state == MemberState::Crashed {
            // The configured primary is a crashed placeholder: the
            // recovering member's intact memory is strictly newer than
            // an empty shell, so elect it instead of resyncing from
            // (i.e. being wiped by) the placeholder.
            members[index].state = MemberState::Up;
            *primary = index;
            return;
        }
        if Self::ship_log(&mut members, *primary, index) {
            self.log_shipped.fetch_add(1, Ordering::Relaxed);
        } else {
            Self::resync_from(&mut members, *primary, index);
            self.full_copies.fetch_add(1, Ordering::Relaxed);
        }
        members[index].state = MemberState::Up;
    }

    /// The primary-side WAL of a member, when it is durable and alive.
    fn wal_of(member: &Member) -> Option<&Arc<Wal>> {
        member
            .durable
            .as_ref()
            .and_then(|d| d.handle.as_ref())
            .map(|h| h.wal())
    }

    /// Tries to catch `index` up by replaying the primary's log tail
    /// above the member's resume token instead of copying everything.
    /// Returns `false` — leaving the member for a full resync — when
    /// the primary keeps no log, a checkpoint truncated the needed
    /// range, or a frame fails to apply (a diverged copy: e.g. replaying
    /// an insert the member half-applied before going stale trips its
    /// unique `_id` check).
    fn ship_log(members: &mut [Member], primary: usize, index: usize) -> bool {
        let Some(wal) = Self::wal_of(&members[primary]).cloned() else {
            return false;
        };
        let Ok(frames) = wal.frames_since(members[index].synced_to) else {
            return false;
        };
        let target = Arc::clone(&members[index].db);
        let mut token = members[index].synced_to;
        for frame in &frames {
            // Re-logging into the member's own WAL is intended: the
            // shipped writes must survive the member's next crash too.
            if apply_record(&target, &frame.record).is_err() {
                return false;
            }
            token = frame.seq;
        }
        members[index].synced_to = token;
        true
    }

    /// Rebuilds `index`'s data in place from `primary`'s copy. When the
    /// target is durable (WAL attached), the drops and inserts are
    /// logged like any other writes, so the resynced state is itself
    /// crash-safe.
    fn resync_from(members: &mut [Member], primary: usize, index: usize) {
        let target = Arc::clone(&members[index].db);
        for name in target.collection_names() {
            target.drop_collection(&name);
        }
        for name in members[primary].db.collection_names() {
            let Ok(src) = members[primary].db.get_collection(&name) else { continue };
            let dst = target.collection(&name);
            for def in src.index_defs() {
                dst.create_index(def).ok();
            }
            dst.insert_many(src.all_docs()).ok();
        }
        // The copy reflects the primary as of now (the members lock
        // blocks concurrent writes), so the token moves to its tip.
        members[index].synced_to =
            Self::wal_of(&members[primary]).map_or(0, |w| w.last_seq());
    }

    /// How recoveries were served so far: incrementally from the log
    /// tail vs. by full copy.
    pub fn resync_stats(&self) -> ResyncStats {
        ResyncStats {
            log_shipped: self.log_shipped.load(Ordering::Relaxed),
            full_copies: self.full_copies.load(Ordering::Relaxed),
        }
    }

    /// Kills a member's *process*: its in-memory database is replaced by
    /// an empty placeholder (memory does not survive a crash) and its
    /// durability handle is dropped, releasing the WAL file. Only bytes
    /// the WAL already wrote to disk survive. If the member was primary,
    /// the lowest-index healthy member is elected (returns the new
    /// primary, or `None` if none is left).
    pub fn crash_member(&self, index: usize) -> Option<usize> {
        let mut members = self.members.write();
        {
            let m = &mut members[index];
            m.state = MemberState::Crashed;
            m.db = Arc::new(Database::new(format!("{}_m{index}_crashed", self.name)));
            // The in-memory copy the token described is gone; what disk
            // preserved is judged afresh by restart_member.
            m.synced_to = 0;
            if let Some(d) = &mut m.durable {
                d.handle = None;
            }
        }
        let mut primary = self.primary.write();
        if *primary == index {
            let next = members
                .iter()
                .position(|m| m.state == MemberState::Up)?;
            *primary = next;
        }
        Some(*primary)
    }

    /// Restarts a crashed member. A durable member first recovers from
    /// its checkpoint + WAL (the state as of its last acknowledged
    /// write); a non-durable member comes back empty. Then:
    ///
    /// * if a healthy primary exists, the member resyncs from it (the
    ///   authoritative copy may have moved on while the member was dead)
    ///   and checkpoints, compacting the resync into a fresh baseline;
    /// * if no member is healthy but the configured primary is merely
    ///   [`MemberState::Down`]/[`MemberState::Stale`] — its memory
    ///   intact and at least as new as our disk state — the restarted
    ///   member waits as `Stale` rather than usurping it, and resyncs
    ///   once that primary is back;
    /// * otherwise (the configured primary itself crashed) the
    ///   restarted member *becomes* primary, serving whatever its own
    ///   durability layer preserved — the total-cluster-restart path,
    ///   and exactly where WAL durability pays off. With per-member
    ///   logs there is no cross-member opTime to compare, so the first
    ///   member restarted wins the election; use `w:all` when a
    ///   workload must survive arbitrary-order total restarts (opTime
    ///   terms are future work).
    pub fn restart_member(&self, index: usize) -> Result<RecoveryReport> {
        let mut members = self.members.write();
        let mut report = RecoveryReport::default();
        if let Some(dur) = &members[index].durable {
            let (handle, rep) = DurableDb::open(
                format!("{}_m{index}", self.name),
                &dur.dir,
                WalOptions { sync: dur.sync, faults: None },
            )?;
            report = rep;
            let m = &mut members[index];
            m.db = Arc::clone(handle.db());
            m.durable.as_mut().expect("checked above").handle = Some(handle);
        }
        let mut primary = self.primary.write();
        let healthy_primary =
            *primary != index && members[*primary].state == MemberState::Up;
        if healthy_primary {
            Self::resync_from(&mut members, *primary, index);
            members[index].state = MemberState::Up;
            if let Some(handle) = members[index]
                .durable
                .as_ref()
                .and_then(|d| d.handle.as_ref())
            {
                handle.checkpoint()?;
            }
        } else if *primary != index
            && matches!(
                members[*primary].state,
                MemberState::Down | MemberState::Stale
            )
        {
            // The configured primary is unreachable but its memory is
            // intact — it holds at least every write our disk does, and
            // possibly later ones. Wait for it as a stale secondary
            // rather than usurping it with an older disk image;
            // `recover_member` resyncs us once a primary is healthy.
            members[index].state = MemberState::Stale;
        } else {
            members[index].state = MemberState::Up;
            *primary = index;
        }
        Ok(report)
    }

    /// Quiesced log compaction on every live durable member (test/ops
    /// hook; a no-op for non-durable members).
    pub fn checkpoint_all(&self) -> Result<()> {
        let members = self.members.write();
        for m in members.iter() {
            if m.state != MemberState::Up {
                continue;
            }
            if let Some(handle) = m.durable.as_ref().and_then(|d| d.handle.as_ref()) {
                handle.checkpoint()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn seeded(n: usize) -> ReplicaSet {
        let rs = ReplicaSet::new("rs0", n);
        for i in 0..10i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::All).unwrap();
        }
        rs
    }

    #[test]
    fn writes_replicate_to_all_members() {
        let rs = seeded(3);
        for i in 0..3 {
            assert_eq!(rs.member_db(i).get_collection("c").unwrap().len(), 10);
        }
    }

    #[test]
    fn replicated_docs_share_ids() {
        let rs = seeded(2);
        let a = rs.find("c", &Filter::eq("k", 3i64), ReadPreference::Primary);
        let b = rs.find("c", &Filter::eq("k", 3i64), ReadPreference::Secondary);
        assert_eq!(a, b);
        assert_eq!(a[0].id(), b[0].id());
    }

    #[test]
    fn secondary_reads_serve_from_secondary() {
        let rs = seeded(3);
        assert_eq!(
            rs.find("c", &Filter::True, ReadPreference::Secondary).len(),
            10
        );
    }

    #[test]
    fn secondary_reads_fall_back_to_primary_when_alone() {
        let rs = seeded(3);
        rs.fail_member(1);
        rs.fail_member(2);
        assert_eq!(
            rs.find("c", &Filter::True, ReadPreference::Secondary).len(),
            10
        );
    }

    #[test]
    fn failover_elects_new_primary_and_keeps_data() {
        let rs = seeded(3);
        assert_eq!(rs.primary_index(), 0);
        let new_primary = rs.fail_member(0).unwrap();
        assert_eq!(new_primary, 1);
        // Reads and writes continue.
        assert_eq!(rs.find("c", &Filter::True, ReadPreference::Primary).len(), 10);
        rs.insert_one("c", doc! {"k" => 99i64}, WriteConcern::Majority).unwrap();
        assert_eq!(rs.find("c", &Filter::eq("k", 99i64), ReadPreference::Primary).len(), 1);
    }

    #[test]
    fn write_concern_all_fails_with_a_member_down() {
        let rs = seeded(3);
        rs.fail_member(2);
        let err = rs.insert_one("c", doc! {"k" => 100i64}, WriteConcern::All);
        assert!(err.is_err());
        // Majority still succeeds (2 of 3).
        rs.insert_one("c", doc! {"k" => 100i64}, WriteConcern::Majority).unwrap();
    }

    #[test]
    fn majority_fails_when_quorum_lost() {
        let rs = seeded(3);
        rs.fail_member(1);
        rs.fail_member(2);
        assert!(rs
            .insert_one("c", doc! {"k" => 1i64}, WriteConcern::Majority)
            .is_err());
        // W1 still works on the surviving primary.
        rs.insert_one("c", doc! {"k" => 1i64}, WriteConcern::W1).unwrap();
    }

    #[test]
    fn recovered_member_resyncs_missed_writes() {
        let rs = seeded(3);
        rs.fail_member(2);
        for i in 100..110i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::Majority).unwrap();
        }
        rs.recover_member(2);
        assert_eq!(rs.healthy_members(), 3);
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 20);
    }

    #[test]
    fn recovery_resync_copies_index_definitions() {
        let rs = seeded(3);
        rs.create_index("c", IndexDef::single("k")).unwrap();
        rs.fail_member(2);
        rs.insert_one("c", doc! {"k" => 500i64}, WriteConcern::Majority).unwrap();
        rs.recover_member(2);
        let defs = rs.member_db(2).get_collection("c").unwrap().index_defs();
        assert!(defs.iter().any(|d| d.name == "k_1"), "{defs:?}");
    }

    #[test]
    fn upserted_id_is_identical_on_every_member() {
        let rs = ReplicaSet::new("rs0", 3);
        let r = rs
            .update(
                "c",
                &Filter::eq("k", 7i64),
                &UpdateSpec::set("v", 1i64),
                true,
                false,
                WriteConcern::All,
            )
            .unwrap();
        let id = r.upserted_id.expect("upserted");
        for i in 0..3 {
            let docs = rs
                .member_db(i)
                .get_collection("c")
                .unwrap()
                .find(&Filter::eq("k", 7i64));
            assert_eq!(docs.len(), 1, "member {i}");
            assert_eq!(docs[0].id(), Some(&id), "member {i} minted its own _id");
        }
    }

    #[test]
    fn failed_secondary_apply_marks_member_stale_and_concern_counts_acks() {
        let rs = ReplicaSet::new("rs0", 3);
        rs.insert_one("c", doc! {"_id" => 1i64, "k" => 1i64}, WriteConcern::All)
            .unwrap();
        // Sabotage member 2: give it a conflicting doc so the next
        // replicated insert fails there (duplicate _id).
        rs.member_db(2)
            .collection("c")
            .insert_one(doc! {"_id" => 2i64, "rogue" => true})
            .unwrap();
        // W1 succeeds (primary committed) but member 2 must be stale.
        rs.insert_one("c", doc! {"_id" => 2i64, "k" => 2i64}, WriteConcern::W1)
            .unwrap();
        assert_eq!(rs.member_state(2), MemberState::Stale);
        assert_eq!(rs.healthy_members(), 2);
        // An All write is now rejected up front (stale member can't ack).
        assert!(rs
            .insert_one("c", doc! {"_id" => 3i64}, WriteConcern::All)
            .is_err());
        // Recovery resyncs the stale copy; divergence is repaired.
        rs.recover_member(2);
        assert_eq!(rs.member_state(2), MemberState::Up);
        let primary_docs = rs.member_db(0).get_collection("c").unwrap().len();
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), primary_docs);
        assert_eq!(
            rs.member_db(2)
                .get_collection("c")
                .unwrap()
                .find(&Filter::eq("rogue", true))
                .len(),
            0
        );
    }

    #[test]
    fn concern_failure_after_primary_commit_reports_error_without_rollback() {
        let rs = ReplicaSet::new("rs0", 2);
        rs.member_db(1)
            .collection("c")
            .insert_one(doc! {"_id" => 9i64})
            .unwrap();
        // Both members look healthy, so the pre-check passes; the
        // secondary apply then fails, so w:all cannot be satisfied.
        let err = rs.insert_one("c", doc! {"_id" => 9i64, "k" => 9i64}, WriteConcern::All);
        assert!(err.is_err());
        // MongoDB semantics: the primary keeps the write.
        assert_eq!(rs.member_db(0).get_collection("c").unwrap().len(), 1);
        assert_eq!(rs.member_state(1), MemberState::Stale);
    }

    #[test]
    fn total_failure_leaves_no_primary() {
        let rs = seeded(2);
        rs.fail_member(1);
        assert_eq!(rs.fail_member(0), None);
        assert!(rs.insert_one("c", doc! {"k" => 1i64}, WriteConcern::W1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_set_panics() {
        let _ = ReplicaSet::new("rs0", 0);
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("doclite-rs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crashed_durable_member_restarts_with_its_acked_writes() {
        let dir = tmp("durable");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Always).unwrap();
        for i in 0..10i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::All).unwrap();
        }
        rs.crash_member(2);
        assert_eq!(rs.member_state(2), MemberState::Crashed);
        // Memory is gone while crashed.
        assert!(rs.member_db(2).get_collection("c").is_err());
        // Writes continue on the survivors.
        rs.insert_one("c", doc! {"k" => 100i64}, WriteConcern::Majority).unwrap();
        let report = rs.restart_member(2).unwrap();
        assert!(report.frames_replayed > 0 || report.checkpoint_docs > 0);
        // Resynced from the primary: the missed write is present too.
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 11);
        assert_eq!(rs.member_state(2), MemberState::Up);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_primary_triggers_election_and_restart_resyncs() {
        let dir = tmp("primary-crash");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Always).unwrap();
        for i in 0..5i64 {
            rs.insert_one("c", doc! {"k" => i}, WriteConcern::Majority).unwrap();
        }
        let new_primary = rs.crash_member(0).unwrap();
        assert_eq!(new_primary, 1);
        rs.insert_one("c", doc! {"k" => 99i64}, WriteConcern::Majority).unwrap();
        rs.restart_member(0).unwrap();
        assert_eq!(rs.member_db(0).get_collection("c").unwrap().len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn total_crash_restart_preserves_every_all_acked_write() {
        // Every member crashes: only the durability layer can bring the
        // data back. Writes acked at w:all are on every member's WAL,
        // so whichever restarts first serves them all.
        let dir = tmp("total-crash");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Always).unwrap();
        for i in 0..20i64 {
            rs.insert_one("c", doc! {"_id" => i}, WriteConcern::All).unwrap();
        }
        rs.crash_member(2);
        rs.crash_member(1);
        assert_eq!(rs.crash_member(0), None, "no healthy member left");
        assert!(rs.insert_one("c", doc! {"_id" => 99i64}, WriteConcern::W1).is_err());

        let report = rs.restart_member(1).unwrap();
        assert_eq!(report.frames_replayed, 20);
        assert_eq!(rs.primary_index(), 1, "restarted member becomes primary");
        rs.restart_member(0).unwrap();
        rs.restart_member(2).unwrap();
        for i in 0..3 {
            assert_eq!(
                rs.member_db(i).get_collection("c").unwrap().len(),
                20,
                "member {i}"
            );
        }
        rs.insert_one("c", doc! {"_id" => 100i64}, WriteConcern::All).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_durable_crash_restart_resyncs_from_surviving_primary() {
        let rs = seeded(3);
        rs.crash_member(2);
        rs.insert_one("c", doc! {"k" => 77i64}, WriteConcern::Majority).unwrap();
        rs.restart_member(2).unwrap();
        // Nothing on disk, but the primary survived: full resync.
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 11);
    }

    #[test]
    fn recovered_durable_member_catches_up_by_log_shipping() {
        let dir = tmp("logship");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Never).unwrap();
        for i in 0..10i64 {
            rs.insert_one("c", doc! {"_id" => i}, WriteConcern::All).unwrap();
        }
        rs.fail_member(2);
        for i in 10..25i64 {
            rs.insert_one("c", doc! {"_id" => i}, WriteConcern::Majority).unwrap();
        }
        rs.update(
            "c",
            &Filter::eq("_id", 3i64),
            &UpdateSpec::set("v", 1i64),
            false,
            false,
            WriteConcern::Majority,
        )
        .unwrap();
        rs.delete_many("c", &Filter::eq("_id", 7i64), WriteConcern::Majority).unwrap();

        rs.recover_member(2);
        let stats = rs.resync_stats();
        assert_eq!(stats, ResyncStats { log_shipped: 1, full_copies: 0 });
        let member = rs.member_db(2).get_collection("c").unwrap();
        assert_eq!(member.len(), 24);
        assert_eq!(
            member.find_one(&Filter::eq("_id", 3i64)).unwrap().get("v"),
            Some(&doclite_bson::Value::Int64(1))
        );
        assert!(member.find_one(&Filter::eq("_id", 7i64)).is_none());
        // The shipped writes are on the member's own log: survive a
        // crash without a surviving primary.
        rs.crash_member(2);
        rs.crash_member(1);
        rs.crash_member(0);
        rs.restart_member(2).unwrap();
        assert_eq!(rs.primary_index(), 2);
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 24);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncation_forces_full_copy_fallback() {
        let dir = tmp("logship-trunc");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Never).unwrap();
        rs.insert_one("c", doc! {"_id" => 0i64}, WriteConcern::All).unwrap();
        rs.fail_member(2);
        // Shrink the primary's in-memory log tail so the checkpoint's
        // truncation really strands the member's token.
        rs.member_wal(rs.primary_index()).unwrap().set_change_capacity(1);
        for i in 1..10i64 {
            rs.insert_one("c", doc! {"_id" => i}, WriteConcern::Majority).unwrap();
        }
        rs.checkpoint_all().unwrap();
        rs.recover_member(2);
        let stats = rs.resync_stats();
        assert_eq!(stats, ResyncStats { log_shipped: 0, full_copies: 1 });
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 10);
        // Having resynced, the next catch-up ships the log again.
        rs.fail_member(2);
        rs.insert_one("c", doc! {"_id" => 100i64}, WriteConcern::Majority).unwrap();
        rs.recover_member(2);
        assert_eq!(
            rs.resync_stats(),
            ResyncStats { log_shipped: 1, full_copies: 1 }
        );
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diverged_member_falls_back_to_full_copy() {
        let dir = tmp("logship-diverge");
        let rs = ReplicaSet::new_durable("rs0", 3, &dir, SyncPolicy::Never).unwrap();
        rs.insert_one("c", doc! {"_id" => 1i64}, WriteConcern::All).unwrap();
        // Sabotage member 2 with a conflicting doc, then stale it.
        rs.member_db(2)
            .collection("c")
            .insert_one(doc! {"_id" => 2i64, "rogue" => true})
            .unwrap();
        rs.insert_one("c", doc! {"_id" => 2i64, "k" => 2i64}, WriteConcern::W1).unwrap();
        assert_eq!(rs.member_state(2), MemberState::Stale);
        // Replaying the insert of _id 2 onto the diverged copy fails its
        // unique-_id check; the recovery must detect that and copy.
        rs.recover_member(2);
        assert_eq!(
            rs.resync_stats(),
            ResyncStats { log_shipped: 0, full_copies: 1 }
        );
        let member = rs.member_db(2).get_collection("c").unwrap();
        assert_eq!(member.len(), 2);
        assert!(member.find(&Filter::eq("rogue", true)).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_durable_recovery_counts_as_full_copy() {
        let rs = seeded(3);
        rs.fail_member(2);
        rs.insert_one("c", doc! {"k" => 50i64}, WriteConcern::Majority).unwrap();
        rs.recover_member(2);
        assert_eq!(
            rs.resync_stats(),
            ResyncStats { log_shipped: 0, full_copies: 1 }
        );
        assert_eq!(rs.member_db(2).get_collection("c").unwrap().len(), 11);
    }

    #[test]
    fn reopening_a_durable_set_directory_recovers_state() {
        let dir = tmp("reopen");
        {
            let rs = ReplicaSet::new_durable("rs0", 2, &dir, SyncPolicy::Always).unwrap();
            for i in 0..7i64 {
                rs.insert_one("c", doc! {"_id" => i}, WriteConcern::All).unwrap();
            }
            rs.checkpoint_all().unwrap();
            rs.insert_one("c", doc! {"_id" => 7i64}, WriteConcern::All).unwrap();
        }
        let rs = ReplicaSet::new_durable("rs0", 2, &dir, SyncPolicy::Always).unwrap();
        for i in 0..2 {
            assert_eq!(rs.member_db(i).get_collection("c").unwrap().len(), 8, "member {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
