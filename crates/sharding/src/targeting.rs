//! Query targeting: deciding which shards must serve a filter.
//!
//! This is the mechanism behind the thesis's key observation
//! (Section 4.3 item iii): "If a query includes a shard key, the mongos
//! routes the query to a specific shard rather than broadcasting the
//! query to all the shards in the cluster."

use crate::chunk::ShardId;
use crate::config::CollectionMeta;
use crate::shardkey::Partitioning;
use doclite_bson::Value;
use doclite_docstore::query::planner::conjunctive_constraints;
use doclite_docstore::{CompoundKey, Filter};

/// The routing decision for one operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Targeting {
    /// The filter pins the shard key; only these shards are contacted.
    Targeted(Vec<ShardId>),
    /// The filter does not constrain the shard key; every shard holding a
    /// chunk is contacted (scatter-gather).
    Broadcast(Vec<ShardId>),
}

impl Targeting {
    /// The shards to contact.
    pub fn shards(&self) -> &[ShardId] {
        match self {
            Targeting::Targeted(s) | Targeting::Broadcast(s) => s,
        }
    }

    /// True if the router avoided a broadcast.
    pub fn is_targeted(&self) -> bool {
        matches!(self, Targeting::Targeted(_))
    }
}

/// Cap on `$in`-set expansion during targeting, mirroring the planner's.
const MAX_TARGET_POINTS: usize = 1024;

/// Point combos beyond this multiple of the chunk count skip expansion
/// and broadcast instead (see the cost gate in [`target`]).
const EXPANSION_FACTOR_CAP: usize = 4;

/// Computes the routing decision for a filter against a sharded
/// collection's metadata.
pub fn target(meta: &CollectionMeta, filter: &Filter) -> Targeting {
    let constraints = conjunctive_constraints(filter);
    let fields = meta.key.fields();

    // Case 1: equality on every shard-key field → point-target chunks.
    let eq_sets: Option<Vec<&Vec<Value>>> = fields
        .iter()
        .map(|f| constraints.get(f.as_str()).and_then(|c| c.eq_set.as_ref()))
        .collect();
    if let Some(eq_sets) = eq_sets {
        let combos: usize = eq_sets.iter().map(|s| s.len()).product();
        // Cost gate: expanding far more point combos than there are
        // chunks almost certainly touches every chunk anyway, so the
        // O(combos) expansion buys nothing — broadcast (a superset of
        // the targeted shard set, so this is perf-safe, never wrong).
        if combos > EXPANSION_FACTOR_CAP.saturating_mul(meta.chunks.len()) {
            return Targeting::Broadcast(meta.all_shards());
        }
        if combos > 0 && combos <= MAX_TARGET_POINTS {
            let mut shards: Vec<ShardId> = Vec::new();
            for combo in cartesian(&eq_sets) {
                let key = meta.key.keyspace_value(&combo);
                let chunk = &meta.chunks[meta.chunk_for(&key)];
                if !shards.contains(&chunk.shard) {
                    shards.push(chunk.shard);
                }
            }
            shards.sort_unstable();
            return Targeting::Targeted(shards);
        }
    }

    // Case 2: a range on the leading shard-key field — only meaningful
    // for range partitioning (hashed scatters ranges, thesis 2.1.3.3).
    if meta.key.partitioning() == Partitioning::Range {
        if let Some(c) = constraints.get(fields[0].as_str()) {
            let lo = c
                .min
                .as_ref()
                .map(|(v, _)| CompoundKey::from_values(vec![v.clone()]));
            let hi = c
                .max
                .as_ref()
                .map(|(v, _)| CompoundKey::from_values(vec![v.clone()]));
            if lo.is_some() || hi.is_some() {
                // Upper bound: extend with a MaxKey-ish suffix so keys with
                // extra components under the same first value stay inside.
                // Using first-component-only bounds is conservative for
                // compound keys (may include an extra chunk, never misses).
                let shards = meta.shards_for_range(lo.as_ref(), hi_extended(hi).as_ref());
                return Targeting::Targeted(shards);
            }
        }
    }

    Targeting::Broadcast(meta.all_shards())
}

/// For an inclusive upper bound on the first component of a compound key,
/// widen the bound so larger suffixes are included: compare on a key one
/// component long sorts *before* any two-component key with equal head,
/// which would wrongly exclude chunks. We append a maximal sentinel.
fn hi_extended(hi: Option<CompoundKey>) -> Option<CompoundKey> {
    hi.map(|mut k| {
        // DateTime(i64::MAX) is the maximal scalar in canonical order.
        k.0.push(doclite_docstore::OrdValue(Value::DateTime(i64::MAX)));
        k
    })
}

fn cartesian(sets: &[&Vec<Value>]) -> Vec<Vec<Value>> {
    let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
    for set in sets {
        let mut next = Vec::with_capacity(combos.len() * set.len());
        for prefix in &combos {
            for v in set.iter() {
                let mut c = prefix.clone();
                c.push(v.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigServer;
    use crate::shardkey::ShardKey;

    fn k(v: i64) -> CompoundKey {
        CompoundKey::from_values(vec![Value::Int64(v)])
    }

    /// chunks: (-inf,100)→0, [100,200)→1, [200,+inf)→2
    fn range_meta() -> CollectionMeta {
        let cfg = ConfigServer::new();
        cfg.shard_collection("c", ShardKey::range(["k"]), 0);
        cfg.split_chunk("c", 0, k(100), 0.5);
        cfg.split_chunk("c", 1, k(200), 0.5);
        cfg.move_chunk("c", 1, 1);
        cfg.move_chunk("c", 2, 2);
        cfg.meta("c").unwrap()
    }

    #[test]
    fn equality_targets_one_shard() {
        let meta = range_meta();
        let t = target(&meta, &Filter::eq("k", 150i64));
        assert_eq!(t, Targeting::Targeted(vec![1]));
    }

    #[test]
    fn in_set_targets_union_of_shards() {
        let meta = range_meta();
        let t = target(&meta, &Filter::is_in("k", [50i64, 250i64]));
        assert_eq!(t, Targeting::Targeted(vec![0, 2]));
    }

    #[test]
    fn range_targets_intersecting_chunks() {
        let meta = range_meta();
        let t = target(&meta, &Filter::between("k", 120i64, 180i64));
        assert_eq!(t, Targeting::Targeted(vec![1]));
        let t = target(&meta, &Filter::gte("k", 150i64));
        assert_eq!(t, Targeting::Targeted(vec![1, 2]));
        let t = target(&meta, &Filter::lt("k", 150i64));
        assert_eq!(t, Targeting::Targeted(vec![0, 1]));
    }

    #[test]
    fn unrelated_filter_broadcasts() {
        let meta = range_meta();
        let t = target(&meta, &Filter::eq("other", 1i64));
        assert_eq!(t, Targeting::Broadcast(vec![0, 1, 2]));
        assert!(!t.is_targeted());
    }

    #[test]
    fn or_on_shard_key_broadcasts() {
        // $or cannot be targeted conservatively through conjunctive
        // constraint extraction.
        let meta = range_meta();
        let f = Filter::or([Filter::eq("k", 1i64), Filter::eq("k", 250i64)]);
        assert!(!target(&meta, &f).is_targeted());
    }

    #[test]
    fn hashed_equality_targets_but_range_broadcasts() {
        let cfg = ConfigServer::new();
        cfg.shard_collection("c", ShardKey::hashed("k"), 0);
        // split hash space at 0 and move upper half to shard 1
        cfg.split_chunk("c", 0, k(0), 0.5);
        cfg.move_chunk("c", 1, 1);
        let meta = cfg.meta("c").unwrap();

        let t = target(&meta, &Filter::eq("k", 42i64));
        assert!(t.is_targeted());
        assert_eq!(t.shards().len(), 1);

        let t = target(&meta, &Filter::between("k", 0i64, 100i64));
        assert!(!t.is_targeted(), "ranges cannot target hashed keys");
    }
}
