//! The config server: cluster metadata mapping chunks to shards
//! (thesis Section 2.1.3.1 component ii).

use crate::chunk::{Chunk, KeyBound, ShardId, DEFAULT_CHUNK_SIZE};
use crate::shardkey::ShardKey;
use doclite_docstore::CompoundKey;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Sharding metadata for one collection: the shard key and the ordered,
/// contiguous chunk list.
#[derive(Clone, Debug)]
pub struct CollectionMeta {
    pub key: ShardKey,
    pub chunks: Vec<Chunk>,
    /// Maximum chunk size in bytes before a split is attempted.
    pub max_chunk_size: usize,
}

impl CollectionMeta {
    /// Index of the chunk containing a key.
    pub fn chunk_for(&self, key: &CompoundKey) -> usize {
        // Chunks are sorted by min and contiguous; binary search on min.
        let mut lo = 0usize;
        let mut hi = self.chunks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.chunks[mid].min.cmp_key(key) != std::cmp::Ordering::Greater {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        debug_assert!(self.chunks[lo].contains(key), "chunk map must cover keyspace");
        lo
    }

    /// Shards owning chunks that intersect `[lo, hi]` (inclusive,
    /// `None` = unbounded), deduplicated.
    pub fn shards_for_range(
        &self,
        lo: Option<&CompoundKey>,
        hi: Option<&CompoundKey>,
    ) -> Vec<ShardId> {
        let mut out: Vec<ShardId> = Vec::new();
        for c in &self.chunks {
            if c.intersects(lo, hi) && !out.contains(&c.shard) {
                out.push(c.shard);
            }
        }
        out.sort_unstable();
        out
    }

    /// All shards holding at least one chunk.
    pub fn all_shards(&self) -> Vec<ShardId> {
        let mut out: Vec<ShardId> = self.chunks.iter().map(|c| c.shard).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Chunk count per shard (for the balancer).
    pub fn chunks_per_shard(&self) -> BTreeMap<ShardId, usize> {
        let mut m = BTreeMap::new();
        for c in &self.chunks {
            *m.entry(c.shard).or_insert(0) += 1;
        }
        m
    }

    /// Approximate resident documents per shard, from the chunk
    /// accounting the router maintains on every insert/split/migration.
    /// Feeds the cost-based per-leg `limit` sizing: a shard holding a
    /// small share of the data rarely contributes more than its share
    /// of a sorted window.
    pub fn docs_per_shard(&self) -> BTreeMap<ShardId, usize> {
        let mut m = BTreeMap::new();
        for c in &self.chunks {
            *m.entry(c.shard).or_insert(0) += c.docs;
        }
        m
    }

    /// Total approximate documents across all chunks.
    pub fn total_docs(&self) -> usize {
        self.chunks.iter().map(|c| c.docs).sum()
    }

    /// Verifies the chunk-map invariants: sorted, contiguous, covering.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.chunks.is_empty() {
            return Err("empty chunk map".into());
        }
        if self.chunks.first().expect("non-empty").min != KeyBound::MinKey {
            return Err("first chunk must start at MinKey".into());
        }
        if self.chunks.last().expect("non-empty").max != KeyBound::MaxKey {
            return Err("last chunk must end at MaxKey".into());
        }
        for w in self.chunks.windows(2) {
            if w[0].max != w[1].min {
                return Err(format!("gap/overlap between chunks: {:?} vs {:?}", w[0].max, w[1].min));
            }
        }
        Ok(())
    }
}

/// One shard's registration in the cluster metadata — its node name,
/// backing replica-set name and member count, mirroring MongoDB's
/// `config.shards` collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    pub id: ShardId,
    /// Node name (`Shard1`, `Shard2`, …).
    pub name: String,
    /// Name of the replica set backing the shard.
    pub replica_set: String,
    /// Configured replica-set member count.
    pub members: usize,
    /// True while the shard is being drained for removal: the balancer
    /// moves chunks *off* it and never *onto* it, and new chunk
    /// placements skip it. Mirrors `draining: true` in MongoDB's
    /// `config.shards` during `removeShard`.
    pub draining: bool,
}

/// The config server: per-collection sharding metadata plus the shard
/// registry. In the paper's cluster this is a dedicated `mongod`; here
/// it is an in-process metadata service the router consults on every
/// operation.
#[derive(Default)]
pub struct ConfigServer {
    collections: RwLock<BTreeMap<String, CollectionMeta>>,
    shards: RwLock<Vec<ShardEntry>>,
    /// Next shard id to hand out. Ids are never reused after a removal,
    /// so a late-arriving event addressed to a removed shard can only
    /// miss (and be skipped), never hit a different shard that took
    /// over its slot.
    next_shard_id: std::sync::atomic::AtomicUsize,
}

impl ConfigServer {
    /// Creates an empty config server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shard (replaces an existing entry with the same id).
    pub fn register_shard(&self, entry: ShardEntry) {
        use std::sync::atomic::Ordering;
        self.next_shard_id.fetch_max(entry.id + 1, Ordering::Relaxed);
        let mut shards = self.shards.write();
        match shards.iter_mut().find(|e| e.id == entry.id) {
            Some(slot) => *slot = entry,
            None => shards.push(entry),
        }
        shards.sort_by_key(|e| e.id);
    }

    /// Hands out the next unused shard id (monotonic, never recycled).
    pub fn allocate_shard_id(&self) -> ShardId {
        self.next_shard_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot of the shard registry.
    pub fn shard_entries(&self) -> Vec<ShardEntry> {
        self.shards.read().clone()
    }

    /// Marks (or unmarks) a shard as draining. Returns false if the
    /// shard is not registered.
    pub fn set_draining(&self, id: ShardId, draining: bool) -> bool {
        let mut shards = self.shards.write();
        match shards.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.draining = draining;
                true
            }
            None => false,
        }
    }

    /// True if the shard is registered and marked draining.
    pub fn is_draining(&self, id: ShardId) -> bool {
        self.shards.read().iter().any(|e| e.id == id && e.draining)
    }

    /// Deregisters a shard. Refused (returns an error naming the
    /// collections) while any chunk still lives on it — callers must
    /// drain first.
    pub fn remove_shard_entry(&self, id: ShardId) -> Result<(), String> {
        // Hold the registry lock across the occupancy check so a
        // concurrent move_chunk *onto* the shard can't race the removal.
        let mut shards = self.shards.write();
        let occupied: Vec<String> = self
            .collections
            .read()
            .iter()
            .filter(|(_, m)| m.chunks.iter().any(|c| c.shard == id))
            .map(|(name, _)| name.clone())
            .collect();
        if !occupied.is_empty() {
            return Err(format!(
                "shard {id} still owns chunks of: {}",
                occupied.join(", ")
            ));
        }
        match shards.iter().position(|e| e.id == id) {
            Some(i) => {
                shards.remove(i);
                Ok(())
            }
            None => Err(format!("shard {id} is not registered")),
        }
    }

    /// Indices of `collection`'s chunks currently placed on `shard`.
    pub fn chunks_on_shard(&self, collection: &str, shard: ShardId) -> Vec<usize> {
        self.meta(collection)
            .map(|m| {
                m.chunks
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.shard == shard)
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Registers a collection as sharded, with a single full-range chunk
    /// on `initial_shard`.
    pub fn shard_collection(
        &self,
        name: impl Into<String>,
        key: ShardKey,
        initial_shard: ShardId,
    ) {
        self.shard_collection_with_chunk_size(name, key, initial_shard, DEFAULT_CHUNK_SIZE);
    }

    /// As [`Self::shard_collection`] but with a custom split threshold —
    /// the experiments use small thresholds so scaled-down datasets still
    /// split into multi-chunk distributions.
    pub fn shard_collection_with_chunk_size(
        &self,
        name: impl Into<String>,
        key: ShardKey,
        initial_shard: ShardId,
        max_chunk_size: usize,
    ) {
        let meta = CollectionMeta {
            key,
            chunks: vec![Chunk::full_range(initial_shard)],
            max_chunk_size,
        };
        self.collections.write().insert(name.into(), meta);
    }

    /// True if the collection is sharded.
    pub fn is_sharded(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Snapshot of a collection's metadata.
    pub fn meta(&self, name: &str) -> Option<CollectionMeta> {
        self.collections.read().get(name).cloned()
    }

    /// Names of all sharded collections.
    pub fn sharded_collections(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Mutates a collection's metadata under the config lock.
    pub fn with_meta_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut CollectionMeta) -> R,
    ) -> Option<R> {
        let mut map = self.collections.write();
        map.get_mut(name).map(f)
    }

    /// Splits a chunk at `split_key`: `[min, split)` stays, `[split, max)`
    /// becomes a new chunk on the same shard. Byte/doc accounting is
    /// divided according to `left_fraction`.
    pub fn split_chunk(
        &self,
        collection: &str,
        chunk_index: usize,
        split_key: CompoundKey,
        left_fraction: f64,
    ) -> bool {
        self.with_meta_mut(collection, |meta| {
            do_split(meta, chunk_index, split_key, left_fraction)
        })
        .unwrap_or(false)
    }

    /// Key-addressed variant of [`Self::split_chunk`] for concurrent
    /// callers: the target chunk is located by `locate` *under the
    /// config lock* (indices observed outside it may have shifted under
    /// a concurrent split), and the split is skipped unless the chunk
    /// still exceeds the collection's size threshold and isn't jumbo.
    pub fn split_chunk_at_key(
        &self,
        collection: &str,
        locate: &CompoundKey,
        split_key: CompoundKey,
        left_fraction: f64,
    ) -> bool {
        self.with_meta_mut(collection, |meta| {
            let idx = meta.chunk_for(locate);
            let chunk = &meta.chunks[idx];
            if chunk.bytes <= meta.max_chunk_size || chunk.jumbo {
                return false;
            }
            do_split(meta, idx, split_key, left_fraction)
        })
        .unwrap_or(false)
    }

    /// Reassigns a chunk to a different shard (the metadata half of a
    /// chunk migration).
    pub fn move_chunk(&self, collection: &str, chunk_index: usize, to: ShardId) -> bool {
        self.with_meta_mut(collection, |meta| {
            if let Some(c) = meta.chunks.get_mut(chunk_index) {
                c.shard = to;
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }
}

/// Performs the split on a locked metadata view. The split point must
/// fall strictly inside the chunk or the split is refused.
fn do_split(
    meta: &mut CollectionMeta,
    chunk_index: usize,
    split_key: CompoundKey,
    left_fraction: f64,
) -> bool {
    let Some(chunk) = meta.chunks.get(chunk_index) else { return false };
    if !chunk.contains(&split_key) || chunk.min.cmp_key(&split_key) == std::cmp::Ordering::Equal {
        return false;
    }
    let mut left = chunk.clone();
    let mut right = chunk.clone();
    left.max = KeyBound::Key(split_key.clone());
    right.min = KeyBound::Key(split_key);
    let lf = left_fraction.clamp(0.0, 1.0);
    left.bytes = (chunk.bytes as f64 * lf) as usize;
    left.docs = (chunk.docs as f64 * lf) as usize;
    right.bytes = chunk.bytes - left.bytes;
    right.docs = chunk.docs - left.docs;
    left.jumbo = false;
    right.jumbo = false;
    meta.chunks.splice(chunk_index..=chunk_index, [left, right]);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::Value;

    fn k(v: i64) -> CompoundKey {
        CompoundKey::from_values(vec![Value::Int64(v)])
    }

    fn setup() -> ConfigServer {
        let cfg = ConfigServer::new();
        cfg.shard_collection("c", ShardKey::range(["k"]), 0);
        cfg
    }

    #[test]
    fn initial_single_chunk_covers_keyspace() {
        let cfg = setup();
        let meta = cfg.meta("c").unwrap();
        assert_eq!(meta.chunks.len(), 1);
        meta.check_invariants().unwrap();
        assert_eq!(meta.chunk_for(&k(i64::MIN)), 0);
        assert_eq!(meta.chunk_for(&k(i64::MAX)), 0);
    }

    #[test]
    fn split_preserves_invariants_and_routing() {
        let cfg = setup();
        cfg.with_meta_mut("c", |m| {
            m.chunks[0].bytes = 100;
            m.chunks[0].docs = 10;
        });
        assert!(cfg.split_chunk("c", 0, k(50), 0.4));
        let meta = cfg.meta("c").unwrap();
        assert_eq!(meta.chunks.len(), 2);
        meta.check_invariants().unwrap();
        assert_eq!(meta.chunk_for(&k(49)), 0);
        assert_eq!(meta.chunk_for(&k(50)), 1);
        assert_eq!(meta.chunks[0].bytes + meta.chunks[1].bytes, 100);
        assert_eq!(meta.chunks[0].docs, 4);
    }

    #[test]
    fn split_at_chunk_min_is_rejected() {
        let cfg = setup();
        assert!(cfg.split_chunk("c", 0, k(10), 0.5));
        // splitting the right chunk exactly at its min would create an
        // empty chunk
        assert!(!cfg.split_chunk("c", 1, k(10), 0.5));
    }

    #[test]
    fn range_targeting_picks_intersecting_shards() {
        let cfg = setup();
        cfg.split_chunk("c", 0, k(100), 0.5);
        cfg.split_chunk("c", 1, k(200), 0.5);
        cfg.move_chunk("c", 1, 1);
        cfg.move_chunk("c", 2, 2);
        let meta = cfg.meta("c").unwrap();
        assert_eq!(meta.shards_for_range(Some(&k(120)), Some(&k(150))), vec![1]);
        assert_eq!(meta.shards_for_range(Some(&k(50)), Some(&k(150))), vec![0, 1]);
        assert_eq!(meta.shards_for_range(None, None), vec![0, 1, 2]);
        assert_eq!(meta.all_shards(), vec![0, 1, 2]);
    }

    fn entry(id: ShardId) -> ShardEntry {
        ShardEntry {
            id,
            name: format!("Shard{}", id + 1),
            replica_set: format!("rs{id}"),
            members: 1,
            draining: false,
        }
    }

    #[test]
    fn shard_ids_are_monotonic_and_never_reused() {
        let cfg = ConfigServer::new();
        cfg.register_shard(entry(0));
        cfg.register_shard(entry(1));
        assert_eq!(cfg.allocate_shard_id(), 2);
        cfg.register_shard(entry(2));
        cfg.remove_shard_entry(2).unwrap();
        // The freed id is not recycled.
        assert_eq!(cfg.allocate_shard_id(), 3);
    }

    #[test]
    fn draining_flag_roundtrip() {
        let cfg = ConfigServer::new();
        cfg.register_shard(entry(0));
        assert!(!cfg.is_draining(0));
        assert!(cfg.set_draining(0, true));
        assert!(cfg.is_draining(0));
        assert!(cfg.set_draining(0, false));
        assert!(!cfg.is_draining(0));
        assert!(!cfg.set_draining(9, true), "unknown shard");
    }

    #[test]
    fn removal_refused_while_chunks_remain() {
        let cfg = setup();
        cfg.register_shard(entry(0));
        cfg.register_shard(entry(1));
        cfg.split_chunk("c", 0, k(100), 0.5);
        cfg.move_chunk("c", 1, 1);
        let err = cfg.remove_shard_entry(1).unwrap_err();
        assert!(err.contains("c"), "error names the occupied collection: {err}");
        assert_eq!(cfg.chunks_on_shard("c", 1), vec![1]);
        cfg.move_chunk("c", 1, 0);
        cfg.remove_shard_entry(1).unwrap();
        assert_eq!(cfg.shard_entries().len(), 1);
        assert!(cfg.remove_shard_entry(1).is_err(), "double removal");
    }

    #[test]
    fn chunks_per_shard_counts() {
        let cfg = setup();
        cfg.split_chunk("c", 0, k(10), 0.5);
        cfg.move_chunk("c", 1, 1);
        let meta = cfg.meta("c").unwrap();
        let counts = meta.chunks_per_shard();
        assert_eq!(counts[&0], 1);
        assert_eq!(counts[&1], 1);
    }
}
