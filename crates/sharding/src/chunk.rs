//! Chunks: contiguous, non-overlapping shard-key ranges (thesis
//! Section 2.1.3.3, Figures 2.6/2.7).

use doclite_docstore::CompoundKey;
use std::cmp::Ordering;

/// Identifies a shard within the cluster.
pub type ShardId = usize;

/// Default maximum chunk size: 64 MB, MongoDB's default the thesis cites.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024 * 1024;

/// A boundary in the chunk keyspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyBound {
    /// Below every key.
    MinKey,
    /// An actual key value (inclusive as a lower bound, exclusive as an
    /// upper bound).
    Key(CompoundKey),
    /// Above every key.
    MaxKey,
}

impl KeyBound {
    /// Compares the bound against a concrete key, treating the bound as a
    /// point in the extended keyspace.
    pub fn cmp_key(&self, key: &CompoundKey) -> Ordering {
        match self {
            KeyBound::MinKey => Ordering::Less,
            KeyBound::MaxKey => Ordering::Greater,
            KeyBound::Key(k) => k.cmp(key),
        }
    }

    /// Total order over bounds in the extended keyspace
    /// `MinKey < Key(..) < MaxKey`. Chunk ranges never place two
    /// distinct logical points at equal `Key`s, so this is enough for
    /// interval arithmetic (the ownership table's range subtraction).
    pub fn cmp_bound(&self, other: &KeyBound) -> Ordering {
        match (self, other) {
            (KeyBound::MinKey, KeyBound::MinKey) => Ordering::Equal,
            (KeyBound::MinKey, _) => Ordering::Less,
            (_, KeyBound::MinKey) => Ordering::Greater,
            (KeyBound::MaxKey, KeyBound::MaxKey) => Ordering::Equal,
            (KeyBound::MaxKey, _) => Ordering::Greater,
            (_, KeyBound::MaxKey) => Ordering::Less,
            (KeyBound::Key(a), KeyBound::Key(b)) => a.cmp(b),
        }
    }
}

/// A chunk: the half-open key range `[min, max)` plus its placement and
/// size accounting.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Inclusive lower bound.
    pub min: KeyBound,
    /// Exclusive upper bound.
    pub max: KeyBound,
    /// Owning shard.
    pub shard: ShardId,
    /// Approximate data bytes in the chunk.
    pub bytes: usize,
    /// Documents in the chunk.
    pub docs: usize,
    /// Marked jumbo: over the size cap but unsplittable because every
    /// document shares one shard-key value (thesis Fig 2.7 discussion).
    pub jumbo: bool,
}

impl Chunk {
    /// The full-keyspace chunk placed on a shard.
    pub fn full_range(shard: ShardId) -> Self {
        Chunk { min: KeyBound::MinKey, max: KeyBound::MaxKey, shard, bytes: 0, docs: 0, jumbo: false }
    }

    /// True if the chunk's range contains the key.
    pub fn contains(&self, key: &CompoundKey) -> bool {
        self.min.cmp_key(key) != Ordering::Greater && self.max.cmp_key(key) == Ordering::Greater
    }

    /// True if the chunk's range intersects `[lo, hi]` (both inclusive;
    /// `None` = unbounded). Used for range targeting.
    pub fn intersects(&self, lo: Option<&CompoundKey>, hi: Option<&CompoundKey>) -> bool {
        // chunk.min <= hi and chunk.max > lo
        let below_hi = match hi {
            None => true,
            Some(hi) => self.min.cmp_key(hi) != Ordering::Greater,
        };
        let above_lo = match lo {
            None => true,
            Some(lo) => self.max.cmp_key(lo) == Ordering::Greater,
        };
        below_hi && above_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::Value;

    fn k(v: i64) -> CompoundKey {
        CompoundKey::from_values(vec![Value::Int64(v)])
    }

    #[test]
    fn full_range_contains_everything() {
        let c = Chunk::full_range(0);
        assert!(c.contains(&k(i64::MIN)));
        assert!(c.contains(&k(0)));
        assert!(c.contains(&k(i64::MAX)));
    }

    #[test]
    fn half_open_semantics() {
        let c = Chunk {
            min: KeyBound::Key(k(10)),
            max: KeyBound::Key(k(20)),
            shard: 0,
            bytes: 0,
            docs: 0,
            jumbo: false,
        };
        assert!(!c.contains(&k(9)));
        assert!(c.contains(&k(10)));
        assert!(c.contains(&k(19)));
        assert!(!c.contains(&k(20)));
    }

    #[test]
    fn bound_order_is_total() {
        use KeyBound::*;
        let bounds = [MinKey, Key(k(1)), Key(k(2)), MaxKey];
        for (i, a) in bounds.iter().enumerate() {
            for (j, b) in bounds.iter().enumerate() {
                assert_eq!(a.cmp_bound(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn intersection() {
        let c = Chunk {
            min: KeyBound::Key(k(10)),
            max: KeyBound::Key(k(20)),
            shard: 0,
            bytes: 0,
            docs: 0,
            jumbo: false,
        };
        assert!(c.intersects(Some(&k(15)), Some(&k(25))));
        assert!(c.intersects(Some(&k(5)), Some(&k(10)))); // touches lower bound
        assert!(!c.intersects(Some(&k(20)), Some(&k(30)))); // max is exclusive
        assert!(c.intersects(None, None));
        assert!(c.intersects(Some(&k(19)), None));
        assert!(!c.intersects(Some(&k(99)), None));
    }
}
