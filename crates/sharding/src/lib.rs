//! # doclite-sharding
//!
//! The sharded-cluster substrate of the reproduction: shard keys with
//! range and hashed partitioning, chunks with splitting and jumbo
//! detection, a config server holding the chunk→shard map, a `mongos`
//! query router with targeted vs. scatter-gather execution, a
//! chunk-count balancer, and a network cost model standing in for the
//! paper's EC2 cluster links.
//!
//! ```
//! use doclite_sharding::{ShardedCluster, ShardKey, NetworkModel};
//! use doclite_bson::doc;
//! use doclite_docstore::Filter;
//!
//! let cluster = ShardedCluster::new(3, "Dataset_1GB", NetworkModel::free());
//! cluster.shard_collection("store_sales", ShardKey::range(["ss_ticket_number"]), 1 << 16).unwrap();
//! cluster.router().insert_one("store_sales", doc! {"ss_ticket_number" => 1i64}).unwrap();
//! assert!(cluster.router()
//!     .explain_targeting("store_sales", &Filter::eq("ss_ticket_number", 1i64))
//!     .is_targeted());
//! ```

pub mod balancer;
pub mod capacity;
pub mod chaos;
pub mod chunk;
pub mod cluster;
pub mod config;
pub mod network;
pub mod replica;
pub mod router;
pub mod shard;
pub mod shardkey;
pub mod targeting;

pub use balancer::{Balancer, Migration};
pub use capacity::{plan_cluster, ClusterPlan, ShardingFactors};
pub use chaos::{
    check_content, check_convergence, check_convergence_with_content, heal_all,
    ChaosSchedule, ContentReport, FaultAction, FaultEvent,
};
pub use chunk::{Chunk, KeyBound, ShardId, DEFAULT_CHUNK_SIZE};
pub use cluster::{ClusterConfig, DurabilityConfig, ShardedCluster};
pub use config::{CollectionMeta, ConfigServer, ShardEntry};
pub use network::{FaultKind, Faults, NetMode, NetStats, NetworkModel, RetryPolicy};
pub use replica::{MemberState, ReadPreference, ReplicaSet, WriteConcern};
pub use router::{DegradedReads, Mongos, RouteExplain, ScatterMode};
pub use shard::Shard;
pub use shardkey::{Partitioning, ShardKey};
pub use targeting::{target, Targeting};

/// Compile-time proof that everything the router shares across worker
/// threads is `Send + Sync`. Never called; a violation fails the build
/// here instead of deep inside a downstream `thread::scope`.
#[allow(dead_code)]
fn assert_shared_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Mongos>();
    check::<ShardedCluster>();
    check::<Shard>();
    check::<ReplicaSet>();
    check::<ConfigServer>();
    check::<NetStats>();
    check::<Faults>();
}
