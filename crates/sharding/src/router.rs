//! The query router (`mongos`, thesis Section 2.1.3.1 component iii):
//! routes reads and writes to the right shards, gathers and merges
//! results, and triggers chunk splits.

use crate::chunk::{KeyBound, ShardId};
use crate::config::ConfigServer;
use crate::network::{Faults, NetMode, NetStats, NetworkModel, RetryPolicy};
use crate::replica::{ReadPreference, WriteConcern};
use crate::shard::Shard;
use crate::targeting::{target, Targeting};
use doclite_bson::{codec::encoded_size, Document};
use doclite_docstore::agg::stream;
use doclite_docstore::{
    compile, project_paths, CompoundKey, Error, Filter, FindOptions, IndexDef, Pipeline, Result,
    Stage, UpdateResult, UpdateSpec,
};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Whether scatter-gather legs run concurrently (one thread per shard,
/// as a real mongos overlaps shard I/O) or one after another (the
/// baseline the thesis's future-work section contrasts against).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScatterMode {
    #[default]
    Parallel,
    Sequential,
}

/// What the router does when a whole shard stays unreachable after
/// retries during a scatter-gather read — the caller's choice between
/// failing loudly and degrading gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DegradedReads {
    /// Fail the operation (MongoDB's default behaviour).
    #[default]
    Fail,
    /// Return results from the reachable shards and record a warning,
    /// drainable via [`Mongos::take_warnings`].
    Partial,
}

/// Router-level explain for a find: which shards a read would contact,
/// how many documents each is estimated to hold (chunk accounting), and
/// the per-leg `limit` the cost-based sizing would request from each.
#[derive(Clone, Debug)]
pub struct RouteExplain {
    /// `true` when the filter pinned the shard key (no broadcast).
    pub targeted: bool,
    /// The legs the read would contact, in leg order.
    pub shards: Vec<ShardId>,
    /// Approximate resident documents per contacted shard.
    pub est_docs: Vec<usize>,
    /// The `limit` each leg would be asked for (0 = unlimited).
    pub leg_limits: Vec<usize>,
}

/// The router. All application traffic flows through here, as in the
/// thesis's AppServer/QueryRouter node.
pub struct Mongos {
    /// The live shard set, keyed by identity (`Shard::id`), not
    /// position: ids are monotonic and never reused, so a stale id
    /// from a pre-reconfiguration snapshot can only *miss* (and
    /// surface as [`Error::StaleRoute`]), never address the wrong
    /// shard. Behind a lock so shards can join and leave online.
    shards: RwLock<Vec<Arc<Shard>>>,
    config: Arc<ConfigServer>,
    network: NetworkModel,
    stats: Arc<NetStats>,
    scatter: ScatterMode,
    /// Unsharded collections live on this shard (MongoDB's "primary
    /// shard" for a database).
    primary: ShardId,
    /// Injectable router↔shard faults (chaos testing).
    faults: Arc<Faults>,
    /// Bounded exponential backoff for faulted exchanges.
    retry: RetryPolicy,
    /// Behaviour when a shard stays unreachable during a read.
    degraded: DegradedReads,
    /// Write concern applied to every routed write.
    write_concern: WriteConcern,
    /// Member preference for routed reads.
    read_pref: ReadPreference,
    /// Warnings from degraded (partial-result) reads.
    warnings: Mutex<Vec<String>>,
    /// Serializes chunk migrations: the copy/flip/delete protocol is
    /// safe against concurrent *writes* but not against a second
    /// migration of an overlapping range.
    migration: Mutex<()>,
    /// Entropy for jittered retry backoff: one counter tick per wait,
    /// so concurrent operations decorrelate while a seeded replay of a
    /// single-threaded schedule stays deterministic.
    entropy: AtomicU64,
}

impl Mongos {
    /// Creates a router over the given shards and config server.
    pub fn new(
        mut shards: Vec<Arc<Shard>>,
        config: Arc<ConfigServer>,
        network: NetworkModel,
    ) -> Self {
        assert!(!shards.is_empty(), "cluster needs at least one shard");
        shards.sort_by_key(|s| s.id());
        Mongos {
            shards: RwLock::new(shards),
            config,
            network,
            stats: Arc::new(NetStats::new()),
            scatter: ScatterMode::default(),
            primary: 0,
            faults: Arc::new(Faults::new()),
            retry: RetryPolicy::default(),
            degraded: DegradedReads::default(),
            write_concern: WriteConcern::default(),
            read_pref: ReadPreference::default(),
            warnings: Mutex::new(Vec::new()),
            migration: Mutex::new(()),
            entropy: AtomicU64::new(0),
        }
    }

    /// Sets the scatter-gather execution mode.
    pub fn set_scatter_mode(&mut self, mode: ScatterMode) {
        self.scatter = mode;
    }

    /// Sets the retry/backoff policy for faulted exchanges.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Sets the degraded-read behaviour.
    pub fn set_degraded_reads(&mut self, degraded: DegradedReads) {
        self.degraded = degraded;
    }

    /// Sets the write concern for routed writes.
    pub fn set_write_concern(&mut self, concern: WriteConcern) {
        self.write_concern = concern;
    }

    /// Sets the read preference for routed reads.
    pub fn set_read_preference(&mut self, pref: ReadPreference) {
        self.read_pref = pref;
    }

    /// The injectable fault plan (partition toggles, drop probability,
    /// request timeouts).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Drains the warnings recorded by degraded reads.
    pub fn take_warnings(&self) -> Vec<String> {
        std::mem::take(&mut self.warnings.lock())
    }

    fn warn(&self, w: String) {
        self.warnings.lock().push(w);
    }

    /// Network statistics accumulated by this router.
    pub fn net_stats(&self) -> &NetStats {
        &self.stats
    }

    /// The network model in force.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Snapshot of the live shard set, sorted by id. With a static
    /// topology (no removals) position equals id; after churn, address
    /// shards by [`Shard::id`], never by position.
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.shards.read().clone()
    }

    /// The config server.
    pub fn config(&self) -> &ConfigServer {
        &self.config
    }

    /// Adds a shard to the live set (replacing any same-id entry).
    /// Routing only reaches it once chunks are placed there, so the
    /// add itself is invisible to in-flight traffic.
    pub fn add_shard(&self, shard: Arc<Shard>) {
        let mut shards = self.shards.write();
        shards.retain(|s| s.id() != shard.id());
        shards.push(shard);
        shards.sort_by_key(|s| s.id());
    }

    /// Removes a shard from the live set. The caller (the cluster's
    /// drain state machine) must have moved every chunk off it first —
    /// any straggler operation holding the old routing view gets
    /// [`Error::StaleRoute`] and re-resolves.
    pub fn remove_shard(&self, id: ShardId) -> Result<()> {
        if id == self.primary {
            return Err(Error::InvalidQuery(
                "cannot remove the primary shard (unsharded collections live there)".into(),
            ));
        }
        let mut shards = self.shards.write();
        let pos = shards.iter().position(|s| s.id() == id).ok_or_else(|| {
            Error::StaleRoute(format!("shard {id} is not part of the cluster"))
        })?;
        if shards.len() == 1 {
            return Err(Error::InvalidQuery("cannot remove the last shard".into()));
        }
        shards.remove(pos);
        Ok(())
    }

    /// Looks up a live shard by id. Fails with [`Error::StaleRoute`]
    /// when the shard has left the cluster — the caller's routing view
    /// is out of date and must be refreshed.
    pub fn shard(&self, id: ShardId) -> Result<Arc<Shard>> {
        self.shards
            .read()
            .iter()
            .find(|s| s.id() == id)
            .cloned()
            .ok_or_else(|| Error::StaleRoute(format!("shard {id} is not part of the cluster")))
    }

    /// Waits out one stale-route retry: charges the jittered backoff to
    /// the stats (which sleeps under [`NetMode::Sleep`]) and really
    /// sleeps otherwise — unlike modelled network time, this wait is
    /// load-bearing: it gives the in-flight migration wall-clock time
    /// to flip the routing table before the operation re-resolves.
    fn stale_backoff(&self, attempt: u32) -> Duration {
        let entropy = self.entropy.fetch_add(1, Ordering::Relaxed);
        let d = self.retry.jittered_backoff(attempt, entropy);
        self.stats.record_retry(&self.network, d);
        if self.network.mode != NetMode::Sleep && !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Runs an operation whose closure re-resolves routing from the
    /// config server on every call, retrying on [`Error::StaleRoute`]
    /// (chunk moved, shard left) under the bounded retry policy and
    /// per-op deadline. The retry *is* the refresh: each attempt reads
    /// fresh metadata, so once the migration's config flip lands the
    /// operation re-targets the new owner.
    fn with_stale_retry<T>(&self, op: impl Fn() -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        loop {
            match op() {
                Err(Error::StaleRoute(msg)) => {
                    if attempt >= self.retry.max_retries || self.retry.deadline_exceeded(waited) {
                        return Err(Error::Unavailable(format!(
                            "stale routing not resolved after {attempt} retries: {msg}"
                        )));
                    }
                    attempt += 1;
                    waited += self.stale_backoff(attempt);
                }
                done => return done,
            }
        }
    }

    /// Runs a read leg against `shard` under the injected fault plan:
    /// the leg executes, then the exchange (sized by its response) is
    /// subjected to the plan, and a faulted exchange is retried with
    /// bounded exponential backoff. Replica-set-level errors (no
    /// reachable member) surface immediately — retries address
    /// *network* faults; member faults are the replica set's problem
    /// (election, read failover). With no faults active this adds a
    /// single branch on one relaxed atomic load to the healthy path.
    fn read_exchange<T>(
        &self,
        shard: ShardId,
        op: impl Fn() -> Result<T>,
        bytes_of: impl Fn(&T) -> usize,
    ) -> Result<T> {
        if !self.faults.active() {
            return op();
        }
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        loop {
            let v = op()?;
            match self.faults.check(shard, &self.network, bytes_of(&v)) {
                Ok(()) => return Ok(v),
                Err(kind) => {
                    self.stats.record_fault(&self.network, kind);
                    if attempt >= self.retry.max_retries || self.retry.deadline_exceeded(waited) {
                        return Err(Error::Unavailable(format!(
                            "Shard{} unreachable: {kind} (gave up after {attempt} retries)",
                            shard + 1
                        )));
                    }
                    attempt += 1;
                    let entropy = self.entropy.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.retry.jittered_backoff(attempt, entropy);
                    waited += backoff;
                    self.stats.record_retry(&self.network, backoff);
                }
            }
        }
    }

    /// Runs a write against `shard` under the fault plan. The exchange
    /// is checked *before* the operation applies (sized by the
    /// request), so a dropped or timed-out write retries without ever
    /// being half-applied; once the request goes through,
    /// operation-level errors (duplicate key, write concern) surface
    /// unretried — retrying those would re-apply a committed write.
    fn write_exchange<T>(
        &self,
        shard: ShardId,
        request_bytes: usize,
        op: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        if !self.faults.active() {
            return op();
        }
        let mut op = Some(op);
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        loop {
            match self.faults.check(shard, &self.network, request_bytes) {
                Ok(()) => return op.take().expect("write attempted once")(),
                Err(kind) => {
                    self.stats.record_fault(&self.network, kind);
                    if attempt >= self.retry.max_retries || self.retry.deadline_exceeded(waited) {
                        return Err(Error::Unavailable(format!(
                            "Shard{} unreachable: {kind} (gave up after {attempt} retries)",
                            shard + 1
                        )));
                    }
                    attempt += 1;
                    let entropy = self.entropy.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.retry.jittered_backoff(attempt, entropy);
                    waited += backoff;
                    self.stats.record_retry(&self.network, backoff);
                }
            }
        }
    }

    /// Applies the degraded-read policy to scatter legs: under
    /// [`DegradedReads::Fail`] the first unreachable shard fails the
    /// whole read; under [`DegradedReads::Partial`] reachable legs are
    /// kept and a warning is recorded per missing shard.
    fn gather<T>(&self, legs: Vec<Result<T>>) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(legs.len());
        for leg in legs {
            match leg {
                Ok(v) => out.push(v),
                // Stale routing is a router-level condition, not a
                // shard outage: always propagate so the stale-retry
                // loop re-resolves, instead of degrading to partial
                // results that silently miss a migrating chunk.
                Err(e @ Error::StaleRoute(_)) => return Err(e),
                Err(e) => match self.degraded {
                    DegradedReads::Fail => return Err(e),
                    DegradedReads::Partial => {
                        self.warn(format!("{e}; returning partial results"))
                    }
                },
            }
        }
        Ok(out)
    }

    /// Routes and stores one document without charging the network;
    /// returns the bytes written. Triggers a chunk split when the target
    /// chunk crosses the size threshold.
    ///
    /// The write is ownership-checked on the target shard
    /// ([`Shard::owned_write`]): if the chunk migrated away between the
    /// routing snapshot and the write landing, the shard bounces it
    /// with [`Error::StaleRoute`] and the loop re-routes from fresh
    /// metadata. Both the fault check and the ownership check run
    /// *before* the store consumes the document, so a bounced attempt
    /// retries the original document without ever cloning it.
    fn insert_routed(&self, collection: &str, doc: Document) -> Result<usize> {
        let bytes = encoded_size(&doc);
        if !self.config.is_sharded(collection) {
            // Unsharded collections live on the primary shard, which is
            // never removable — no ownership protocol needed.
            let primary = self.shard(self.primary)?;
            self.write_exchange(self.primary, bytes, || {
                primary
                    .replica_set()
                    .insert_one(collection, doc, self.write_concern)
            })?;
            return Ok(bytes);
        }
        let mut slot = Some(doc);
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        let key = loop {
            let meta = self
                .config
                .meta(collection)
                .ok_or_else(|| Error::NoSuchCollection(collection.to_owned()))?;
            let key = meta.key.extract(slot.as_ref().expect("document not yet consumed"));
            let shard_id = meta.chunks[meta.chunk_for(&key)].shard;
            let routed = self.shard(shard_id).and_then(|shard| {
                self.write_exchange(shard_id, bytes, || {
                    shard.owned_write(collection, &key, || {
                        shard.replica_set().insert_one(
                            collection,
                            slot.take().expect("document consumed at most once"),
                            self.write_concern,
                        )
                    })
                })
            });
            match routed {
                Ok(()) => break key,
                Err(Error::StaleRoute(msg)) => {
                    debug_assert!(slot.is_some(), "stale-routed insert must not consume the doc");
                    if attempt >= self.retry.max_retries || self.retry.deadline_exceeded(waited) {
                        return Err(Error::Unavailable(format!(
                            "stale routing not resolved after {attempt} retries: {msg}"
                        )));
                    }
                    attempt += 1;
                    waited += self.stale_backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        };
        // Re-derive the target chunk *by key, under the config
        // lock*: a concurrent split or migration may have shifted chunk
        // indices since the routing snapshot above, and charging
        // a stale index would credit the wrong chunk's
        // byte/doc totals.
        let needs_split = self
            .config
            .with_meta_mut(collection, |m| {
                let idx = m.chunk_for(&key);
                let c = &mut m.chunks[idx];
                c.bytes += bytes;
                c.docs += 1;
                c.bytes > m.max_chunk_size && !c.jumbo
            })
            .unwrap_or(false);
        if needs_split {
            self.try_split(collection, &key);
        }
        Ok(bytes)
    }

    /// Inserts one document, routing by shard key (or to the primary
    /// shard for unsharded collections).
    pub fn insert_one(&self, collection: &str, doc: Document) -> Result<()> {
        let bytes = self.insert_routed(collection, doc)?;
        self.stats.charge(&self.network, bytes);
        Ok(())
    }

    /// Batch size of one driver write batch: documents travel to the
    /// cluster in groups, so the network is charged one exchange per
    /// [`Self::WRITE_BATCH`] documents rather than per document (the Java
    /// driver the thesis used batches the same way).
    pub const WRITE_BATCH: usize = 1000;

    /// Inserts many documents with batched network accounting.
    pub fn insert_many(
        &self,
        collection: &str,
        docs: impl IntoIterator<Item = Document>,
    ) -> Result<usize> {
        let mut n = 0usize;
        let mut pending_bytes = 0usize;
        for doc in docs {
            pending_bytes += self.insert_routed(collection, doc)?;
            n += 1;
            if n.is_multiple_of(Self::WRITE_BATCH) {
                self.stats.charge(&self.network, pending_bytes);
                pending_bytes = 0;
            }
        }
        if pending_bytes > 0 || n == 0 {
            self.stats.charge(&self.network, pending_bytes);
        }
        Ok(n)
    }

    /// Attempts to split the chunk containing `key` at the median
    /// shard-key value of its resident documents. If every document
    /// shares one key value the chunk is marked **jumbo** and left alone
    /// (thesis Fig 2.7).
    ///
    /// The chunk is addressed by a resident key rather than by index:
    /// concurrent splits reshuffle chunk indices, so the final split is
    /// re-located and re-validated against the size threshold under the
    /// config lock ([`ConfigServer::split_chunk_at_key`]).
    fn try_split(&self, collection: &str, key: &CompoundKey) {
        let Some(meta) = self.config.meta(collection) else { return };
        let chunk = &meta.chunks[meta.chunk_for(key)];
        // A split is advisory: if the owning shard left the cluster
        // between the snapshot and now, simply skip it.
        let Ok(shard) = self.shard(chunk.shard) else { return };
        let Ok(coll) = shard.db().get_collection(collection) else { return };

        // Collect the chunk's resident keys from the owning shard.
        let mut keys: Vec<CompoundKey> = Vec::new();
        coll.for_each(|doc| {
            let k = meta.key.extract(doc);
            if chunk.contains(&k) {
                keys.push(k);
            }
        });
        // One metadata round-trip to the shard for the split vector.
        self.stats.charge(&self.network, keys.len() * 16);
        if keys.len() < 2 {
            return;
        }
        keys.sort();
        let median = keys[keys.len() / 2].clone();
        if keys.first() == keys.last() {
            // Unsplittable: same shard-key value throughout. Re-locate
            // by key and re-check the threshold under the lock so a
            // concurrently shrunk chunk isn't frozen by mistake.
            self.config.with_meta_mut(collection, |m| {
                let idx = m.chunk_for(key);
                let c = &mut m.chunks[idx];
                if c.bytes > m.max_chunk_size {
                    c.jumbo = true;
                }
            });
            return;
        }
        // If the median equals the minimum, advance to the first greater
        // key so the left chunk is non-empty.
        let split_key = if KeyBound::Key(median.clone()) == chunk.min
            || chunk.min.cmp_key(&median) == std::cmp::Ordering::Equal
        {
            match keys.iter().find(|k| **k > median) {
                Some(k) => k.clone(),
                None => return,
            }
        } else {
            median
        };
        let left = keys.iter().filter(|k| **k < split_key).count();
        let left_fraction = left as f64 / keys.len() as f64;
        self.config
            .split_chunk_at_key(collection, key, split_key, left_fraction);
    }

    /// Routes a find: targeted when the filter pins the shard key,
    /// scatter-gather otherwise.
    ///
    /// Sort, limit, and (when safe) projection are pushed to the shards:
    /// each leg sorts locally and returns at most `skip + limit`
    /// documents, so a sorted-and-limited broadcast transfers O(limit)
    /// bytes per leg instead of every matching document. The router then
    /// merges the pre-sorted legs and applies the global window.
    pub fn find_with(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
    ) -> Vec<Document> {
        self.try_find_with(collection, filter, opts)
            .expect("find failed (use try_find_with under fault injection)")
    }

    /// [`Mongos::find_with`], surfacing shard unavailability instead of
    /// panicking — the entry point once faults are in play. Under
    /// [`DegradedReads::Partial`] an unreachable shard's leg is dropped
    /// with a warning instead of failing the read.
    pub fn try_find_with(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
    ) -> Result<Vec<Document>> {
        self.with_stale_retry(|| self.find_once(collection, filter, opts))
    }

    fn find_once(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
    ) -> Result<Vec<Document>> {
        let shard_ids = self.route(collection, filter);
        // A single-shard point read is ownership-checked *after* the
        // scan (key derived the way upsert seeding does): if the chunk
        // was surrendered to a migration meanwhile, the scan may have
        // observed post-flip state through a stale routing view —
        // surface `StaleRoute` so the retry loop re-targets against
        // fresh metadata instead of silently missing the row.
        let point_key = self.point_key(collection, filter, &shard_ids);
        // Compile the filter once at the router; every leg shares it.
        let compiled = compile(filter);

        // A single leg serves the global result verbatim: the whole
        // window — skip included — and the projection go to the shard,
        // so the skipped prefix never crosses the network.
        if shard_ids.len() == 1 {
            let leg_opts = vec![opts.clone()];
            let legs = self.run_find_legs(
                collection,
                &shard_ids,
                filter,
                &compiled,
                &point_key,
                &leg_opts,
            );
            let legs = self.gather(legs)?;
            return Ok(legs.into_iter().flatten().collect());
        }

        // A document outside the first `skip + limit` of its own shard's
        // sorted run cannot appear in the global window either.
        let full_window = if opts.limit > 0 {
            opts.skip.saturating_add(opts.limit)
        } else {
            0
        };
        // Projection goes shard-side unless the router's merge would
        // then be missing a sort path the projection strips.
        let push_projection = opts.projection.is_empty()
            || opts.sort.is_empty()
            || opts.sort.iter().all(|(p, _)| {
                p == "_id" || opts.projection.iter().any(|q| q == p)
            });
        let leg_limits = self.optimistic_leg_limits(collection, &shard_ids, opts, full_window);
        let mk_leg_opts = |limit: usize| FindOptions {
            sort: opts.sort.clone(),
            skip: 0,
            limit,
            projection: if push_projection {
                opts.projection.clone()
            } else {
                Vec::new()
            },
        };
        let per_leg: Vec<FindOptions> = leg_limits.iter().map(|&l| mk_leg_opts(l)).collect();
        let mut legs =
            self.run_find_legs(collection, &shard_ids, filter, &compiled, &point_key, &per_leg);

        // Optimistic per-leg limits can under-fetch: a leg that filled
        // its cap (saturated) may be hiding rows the global window
        // needs. Retry exactly those legs with the full window, so the
        // sizing only ever affects bytes shipped, never results.
        let retry = Self::saturated_legs_needing_retry(&legs, &leg_limits, opts, full_window);
        if !retry.is_empty() {
            let retry_ids: Vec<ShardId> = retry.iter().map(|&i| shard_ids[i]).collect();
            let full_opts: Vec<FindOptions> =
                retry_ids.iter().map(|_| mk_leg_opts(full_window)).collect();
            let refreshed = self.run_find_legs(
                collection,
                &retry_ids,
                filter,
                &compiled,
                &point_key,
                &full_opts,
            );
            for (slot, leg) in retry.into_iter().zip(refreshed) {
                legs[slot] = leg;
            }
        }

        let legs = self.gather(legs)?;
        let mut docs: Vec<Document> = if opts.sort.is_empty() {
            legs.into_iter().flatten().collect()
        } else {
            merge_sorted_legs(legs, &opts.sort)
        };
        if opts.skip > 0 {
            docs.drain(..opts.skip.min(docs.len()));
        }
        if opts.limit > 0 {
            docs.truncate(opts.limit);
        }
        if !push_projection {
            docs = docs
                .iter()
                .map(|d| project_paths(d, &opts.projection))
                .collect();
        }
        Ok(docs)
    }

    /// Runs one find leg per shard (in `shard_ids` order) with per-leg
    /// options, sharing the router-compiled filter and the point-read
    /// ownership check.
    fn run_find_legs(
        &self,
        collection: &str,
        shard_ids: &[ShardId],
        filter: &Filter,
        compiled: &doclite_docstore::CompiledFilter,
        point_key: &Option<CompoundKey>,
        leg_opts: &[FindOptions],
    ) -> Vec<Result<Vec<Document>>> {
        self.scatter_legs(
            shard_ids,
            |id| {
                let i = shard_ids
                    .iter()
                    .position(|&s| s == id)
                    .expect("leg id comes from shard_ids");
                self.read_exchange(
                    id,
                    || {
                        let shard = self.shard(id)?;
                        let db = shard.read_db(self.read_pref)?;
                        let docs = match db.get_collection(collection) {
                            Ok(coll) => coll.find_with_shared(filter, compiled, &leg_opts[i]),
                            Err(_) => Vec::new(),
                        };
                        if let Some(key) = point_key {
                            if !shard.owns(collection, key) {
                                return Err(Error::StaleRoute(format!(
                                    "read of '{collection}' raced a chunk migration"
                                )));
                            }
                        }
                        Ok(docs)
                    },
                    |docs| docs.iter().map(encoded_size).sum(),
                )
            },
            |leg: &Result<Vec<Document>>| match leg {
                Ok(docs) => docs.iter().map(encoded_size).sum(),
                Err(_) => 0,
            },
        )
    }

    /// Per-leg `limit`s for a sorted multi-shard window. Under the cost
    /// planner each leg is capped near 1.5× its share of the window —
    /// share taken from the chunk accounting's resident-document counts
    /// — floored at an even split, instead of everyone shipping the
    /// full `skip + limit`. Rule mode, unsorted reads, unlimited reads,
    /// and collections without accounting keep the full window.
    fn optimistic_leg_limits(
        &self,
        collection: &str,
        shard_ids: &[ShardId],
        opts: &FindOptions,
        full_window: usize,
    ) -> Vec<usize> {
        let n = shard_ids.len();
        if full_window == 0
            || opts.sort.is_empty()
            || n < 2
            || doclite_docstore::planner_mode() != doclite_docstore::PlannerMode::Cost
        {
            return vec![full_window; n];
        }
        let Some(meta) = self.config.meta(collection) else {
            return vec![full_window; n];
        };
        let per_shard = meta.docs_per_shard();
        let total: usize = per_shard.values().sum();
        if total == 0 {
            return vec![full_window; n];
        }
        let floor = (full_window / n).max(1);
        shard_ids
            .iter()
            .map(|id| {
                let share = per_shard.get(id).copied().unwrap_or(0) as f64 / total as f64;
                let sized = (full_window as f64 * share * 1.5).ceil() as usize;
                sized.clamp(floor, full_window)
            })
            .collect()
    }

    /// Indices of legs whose optimistic cap may have cut the global
    /// window: the leg filled its cap AND its worst returned document
    /// does not sort strictly past the window cutoff computed over
    /// everything returned so far (hidden rows of any *other* leg can
    /// only push the true cutoff earlier, so "strictly past" stays
    /// sound).
    fn saturated_legs_needing_retry(
        legs: &[Result<Vec<Document>>],
        leg_limits: &[usize],
        opts: &FindOptions,
        full_window: usize,
    ) -> Vec<usize> {
        use doclite_docstore::agg::CompiledSortSpec;
        if full_window == 0 || leg_limits.iter().all(|&l| l >= full_window) {
            return Vec::new();
        }
        let cs = CompiledSortSpec::new(&opts.sort);
        let mut all_keys: Vec<Vec<doclite_bson::Value>> = Vec::new();
        for docs in legs.iter().flatten() {
            all_keys.extend(docs.iter().map(|d| cs.key_owned(d)));
        }
        all_keys.sort_by(|a, b| cs.compare_values(a, b));
        let cutoff = if all_keys.len() >= full_window {
            Some(&all_keys[full_window - 1])
        } else {
            None
        };
        (0..legs.len())
            .filter(|&i| {
                let Ok(docs) = &legs[i] else { return false };
                if leg_limits[i] >= full_window || docs.len() < leg_limits[i] {
                    return false; // unconstrained or exhausted: complete
                }
                match (cutoff, docs.last()) {
                    // Fewer returned rows than the window needs: any
                    // saturated leg may be hiding the missing ones.
                    (None, _) => true,
                    (Some(c), Some(last)) => {
                        cs.compare_values(&cs.key_owned(last), c) != std::cmp::Ordering::Greater
                    }
                    (Some(_), None) => false,
                }
            })
            .collect()
    }

    /// `find` with default options.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Document> {
        self.find_with(collection, filter, &FindOptions::default())
    }

    /// The routing decision for a filter (exposed for tests/benches and
    /// explain-style reporting).
    pub fn explain_targeting(&self, collection: &str, filter: &Filter) -> Targeting {
        match self.config.meta(collection) {
            None => Targeting::Targeted(vec![self.primary]),
            Some(meta) => target(&meta, filter),
        }
    }

    fn route(&self, collection: &str, filter: &Filter) -> Vec<ShardId> {
        let t = self.explain_targeting(collection, filter);
        let shards = t.shards().to_vec();
        if shards.is_empty() {
            vec![self.primary]
        } else {
            shards
        }
    }

    /// Router-level explain for a find: the targeting decision, the
    /// chunk-accounting document estimate per contacted shard, and the
    /// per-leg `limit` each leg would be asked for — without running
    /// the query.
    pub fn explain_route(
        &self,
        collection: &str,
        filter: &Filter,
        opts: &FindOptions,
    ) -> RouteExplain {
        let targeted = self.explain_targeting(collection, filter).is_targeted();
        let shards = self.route(collection, filter);
        let per_shard = self
            .config
            .meta(collection)
            .map(|m| m.docs_per_shard())
            .unwrap_or_default();
        let est_docs = shards
            .iter()
            .map(|id| per_shard.get(id).copied().unwrap_or(0))
            .collect();
        let full_window = if opts.limit > 0 {
            opts.skip.saturating_add(opts.limit)
        } else {
            0
        };
        let leg_limits = if shards.len() == 1 {
            vec![opts.limit]
        } else {
            self.optimistic_leg_limits(collection, &shards, opts, full_window)
        };
        RouteExplain {
            targeted,
            shards,
            est_docs,
            leg_limits,
        }
    }

    /// Runs one closure per shard leg (parallel or sequential per
    /// [`ScatterMode`]) and charges one network leg per shard, sized by
    /// that leg's payload *after* any shard-side sort/limit/projection —
    /// a pushed-down limit is charged for the truncated result it
    /// actually ships, not for everything that matched.
    ///
    /// Parallel legs run on the shared worker pool (bounded at the
    /// pool's worker count) instead of spawning a thread per leg. Each
    /// leg writes its result into a per-leg slot, so the returned vector
    /// is always in `shard_ids` order no matter which legs finish first
    /// — the deterministic `(leg, pos)` order downstream merges rely on.
    fn scatter_legs<T, F, B>(&self, shard_ids: &[ShardId], run: F, bytes_of: B) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(ShardId) -> T + Sync,
        B: Fn(&T) -> usize,
    {
        // A targeted single-leg read has nothing to overlap: run it
        // inline instead of touching the pool at all (the dominant cost
        // for point reads under the stress driver).
        let results: Vec<T> = match self.scatter {
            ScatterMode::Sequential => shard_ids.iter().map(|&id| run(id)).collect(),
            ScatterMode::Parallel if shard_ids.len() == 1 => vec![run(shard_ids[0])],
            ScatterMode::Parallel => {
                let slots: Vec<OnceLock<T>> =
                    (0..shard_ids.len()).map(|_| OnceLock::new()).collect();
                doclite_docstore::parallel_for(
                    doclite_docstore::parallel_workers(),
                    shard_ids.len(),
                    &|i| {
                        let _ = slots[i].set(run(shard_ids[i]));
                    },
                );
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("pool ran every leg"))
                    .collect()
            }
        };
        let leg_bytes: Vec<usize> = results.iter().map(&bytes_of).collect();
        match self.scatter {
            ScatterMode::Parallel => {
                self.stats.charge_parallel(&self.network, &leg_bytes);
            }
            ScatterMode::Sequential => {
                for b in leg_bytes {
                    self.stats.charge(&self.network, b);
                }
            }
        }
        results
    }

    /// Counts matching documents across the targeted shards.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.try_count(collection, filter)
            .expect("count failed (use try_count under fault injection)")
    }

    /// [`Mongos::count`], surfacing shard unavailability. Under
    /// [`DegradedReads::Partial`] unreachable shards are skipped with a
    /// warning and the count covers the reachable ones.
    pub fn try_count(&self, collection: &str, filter: &Filter) -> Result<usize> {
        self.with_stale_retry(|| self.count_once(collection, filter))
    }

    /// The shard-key point a single-shard filter pins, if any — the
    /// ownership-check anchor shared by point reads, counts, and
    /// updates. `None` for broadcasts and unsharded collections.
    fn point_key(
        &self,
        collection: &str,
        filter: &Filter,
        shard_ids: &[ShardId],
    ) -> Option<doclite_docstore::CompoundKey> {
        if shard_ids.len() != 1 {
            return None;
        }
        self.config.meta(collection).map(|meta| {
            meta.key
                .extract(&doclite_docstore::update::upsert_seed(filter))
        })
    }

    fn count_once(&self, collection: &str, filter: &Filter) -> Result<usize> {
        let shard_ids = self.route(collection, filter);
        let point_key = self.point_key(collection, filter, &shard_ids);
        let mut n = 0;
        for id in shard_ids {
            let leg = self.read_exchange(
                id,
                || {
                    let shard = self.shard(id)?;
                    let db = shard.read_db(self.read_pref)?;
                    let c = db
                        .get_collection(collection)
                        .map(|c| c.count(filter))
                        .unwrap_or(0);
                    if let Some(key) = &point_key {
                        if !shard.owns(collection, key) {
                            return Err(Error::StaleRoute(format!(
                                "count on '{collection}' raced a chunk migration"
                            )));
                        }
                    }
                    Ok(c)
                },
                |_| 16,
            );
            match leg {
                Ok(c) => n += c,
                Err(e @ Error::StaleRoute(_)) => return Err(e),
                Err(e) => match self.degraded {
                    DegradedReads::Fail => return Err(e),
                    DegradedReads::Partial => self.warn(format!("{e}; count may be partial")),
                },
            }
            self.stats.charge(&self.network, 16);
        }
        Ok(n)
    }

    /// Routes an update to the shards its filter targets, retrying
    /// stale routes against refreshed metadata.
    pub fn update(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult> {
        self.with_stale_retry(|| self.update_once(collection, filter, spec, upsert, multi))
    }

    fn update_once(
        &self,
        collection: &str,
        filter: &Filter,
        spec: &UpdateSpec,
        upsert: bool,
        multi: bool,
    ) -> Result<UpdateResult> {
        let shard_ids = self.route(collection, filter);
        // A single-shard update is ownership-checked against the key
        // the filter pins (derived the same way upsert seeding does),
        // so it can't land on a shard mid-way through surrendering the
        // chunk. Broadcast updates skip the check — they reach the
        // migration's destination copy through its own shard anyway.
        let point_key = self.point_key(collection, filter, &shard_ids);
        let mut total = UpdateResult::default();
        for id in &shard_ids {
            let shard = self.shard(*id)?;
            let r = self.write_exchange(*id, 64, || {
                let run = || {
                    shard.replica_set().update(
                        collection,
                        filter,
                        spec,
                        false,
                        multi,
                        self.write_concern,
                    )
                };
                match &point_key {
                    Some(key) => shard.owned_write(collection, key, run),
                    None => run(),
                }
            })?;
            self.stats.charge(&self.network, 64);
            total.matched += r.matched;
            total.modified += r.modified;
            if !multi && total.matched > 0 {
                break;
            }
        }
        if total.matched == 0 && upsert {
            // Upsert lands on the shard owning the seed document's key.
            let seed = doclite_docstore::update::upsert_seed(filter);
            let (shard_id, seed_key) = match self.config.meta(collection) {
                Some(meta) => {
                    let key = meta.key.extract(&seed);
                    (meta.chunks[meta.chunk_for(&key)].shard, Some(key))
                }
                None => (self.primary, None),
            };
            let shard = self.shard(shard_id)?;
            let r = self.write_exchange(shard_id, 64, || {
                let run = || {
                    shard.replica_set().update(
                        collection,
                        filter,
                        spec,
                        true,
                        multi,
                        self.write_concern,
                    )
                };
                match &seed_key {
                    Some(key) => shard.owned_write(collection, key, run),
                    None => run(),
                }
            })?;
            self.stats.charge(&self.network, 64);
            total.upserted_id = r.upserted_id;
        }
        Ok(total)
    }

    /// Routes a delete.
    pub fn delete_many(&self, collection: &str, filter: &Filter) -> usize {
        self.try_delete_many(collection, filter)
            .expect("delete failed (use try_delete_many under fault injection)")
    }

    /// [`Mongos::delete_many`], surfacing shard unavailability (writes
    /// never degrade to partial application silently).
    pub fn try_delete_many(&self, collection: &str, filter: &Filter) -> Result<usize> {
        self.with_stale_retry(|| {
            let shard_ids = self.route(collection, filter);
            let mut n = 0;
            for id in shard_ids {
                let shard = self.shard(id)?;
                n += self.write_exchange(id, 16, || {
                    shard
                        .replica_set()
                        .delete_many(collection, filter, self.write_concern)
                })?;
                self.stats.charge(&self.network, 16);
            }
            Ok(n)
        })
    }

    /// Creates an index on every shard's copy of the collection
    /// (replicated to every member, so secondaries can serve
    /// index-backed reads after failover).
    pub fn create_index(&self, collection: &str, def: IndexDef) -> Result<()> {
        for shard in self.shards() {
            self.write_exchange(shard.id(), 64, || {
                shard.replica_set().create_index(collection, def.clone())
            })?;
            self.stats.charge(&self.network, 64);
        }
        Ok(())
    }

    /// Runs an aggregation pipeline against a (possibly sharded)
    /// collection.
    ///
    /// Mirroring MongoDB 3.0's split execution: the leading `$match`
    /// run is pushed down to the targeted shards — and when the
    /// router-side stages begin with a bounded `$sort`/`$limit` window,
    /// that sort and the combined limit travel down too, so each leg
    /// ships at most the window's worth of documents. The surviving
    /// documents travel to the router, which executes the remaining
    /// stages and materializes any `$out` target on the primary shard.
    /// This transfer of intermediate data is precisely the "expensive
    /// process" of aggregating from multiple nodes the thesis measures.
    pub fn aggregate(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>> {
        self.with_stale_retry(|| self.aggregate_once(collection, pipeline))
    }

    fn aggregate_once(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>> {
        let stages = pipeline.stages();
        let leading: Vec<&Filter> = pipeline.leading_matches();
        let push_down = Filter::and(leading.iter().map(|f| (*f).clone()));
        let rest = &stages[leading.len()..];
        let (rest, out_target): (&[Stage], Option<&str>) = match rest.last() {
            Some(Stage::Out(name)) => (&rest[..rest.len() - 1], Some(name)),
            _ => (rest, None),
        };

        // Shard-side pipeline: the coalesced $match plus, when the
        // remaining stages open with a finite sort/limit window, the
        // same sort and the combined `skip + limit` bound. The router
        // re-runs the full window over the merged legs, so each leg
        // only ever needs its local top `skip + limit`.
        let mut leg_pipe = Pipeline::new();
        if !matches!(push_down, Filter::True) {
            leg_pipe = leg_pipe.match_stage(push_down.clone());
        }
        if let Some(w) = shard_window(rest) {
            if let Some(spec) = w.sort {
                leg_pipe = leg_pipe.sort(spec.to_vec());
            }
            leg_pipe = leg_pipe.limit(w.end);
        }

        let shard_ids = self.route(collection, &push_down);
        let legs = self.scatter_legs(
            &shard_ids,
            |id| {
                self.read_exchange(
                    id,
                    || {
                        let db = self.shard(id)?.read_db(self.read_pref)?;
                        match db.get_collection(collection) {
                            Ok(coll) => coll.aggregate_with(&leg_pipe, None),
                            Err(_) => Ok(Vec::new()),
                        }
                    },
                    |docs| docs.iter().map(encoded_size).sum(),
                )
            },
            |leg: &Result<Vec<Document>>| match leg {
                Ok(docs) => docs.iter().map(encoded_size).sum(),
                Err(_) => 0,
            },
        );
        let merged: Vec<Document> = self.gather(legs)?.into_iter().flatten().collect();
        // $lookup resolves against the primary shard, where unsharded
        // collections live (MongoDB requires the from-collection of a
        // $lookup to be unsharded).
        let primary = self.shard(self.primary)?;
        let lookup_db = primary.db();
        let results = stream::execute_streaming(merged, rest, Some(&*lookup_db))?;

        if let Some(name) = out_target {
            let out_bytes: usize = results.iter().map(encoded_size).sum();
            let rs = primary.replica_set();
            rs.drop_collection(name);
            // Move the results into the target collection on every
            // member; the returned documents are re-read from the
            // store, so pipeline outputs without an _id gain a
            // store-assigned ObjectId.
            self.write_exchange(self.primary, out_bytes, || {
                rs.insert_many(name, results, self.write_concern)
            })?;
            self.stats.charge(&self.network, out_bytes);
            return Ok(rs.db().get_collection(name)?.all_docs());
        }
        Ok(results)
    }

    /// Total documents stored for a collection across shards.
    pub fn collection_len(&self, collection: &str) -> usize {
        self.shards()
            .iter()
            .map(|s| {
                s.db()
                    .get_collection(collection)
                    .map(|c| c.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total data bytes stored for a collection across shards.
    pub fn collection_data_size(&self, collection: &str) -> usize {
        self.shards()
            .iter()
            .map(|s| {
                s.db()
                    .get_collection(collection)
                    .map(|c| c.data_size())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Shards an *existing, populated* collection: gathers its documents
    /// from wherever they live (the primary shard for a previously
    /// unsharded collection), registers the shard-key metadata, and
    /// re-routes every document through the normal insert path so chunks
    /// split and distribute as if the data had been loaded sharded.
    ///
    /// This backs the thesis's future-work scenario (Section 5.2): "the
    /// denormalized data model can be deployed on the sharded cluster".
    pub fn reshard_collection(
        &self,
        collection: &str,
        key: crate::shardkey::ShardKey,
        max_chunk_size: usize,
    ) -> Result<usize> {
        // Gather all documents currently stored anywhere, then drop the
        // collection on every replica-set member so no stale copy
        // survives the reshard.
        let mut docs: Vec<Document> = Vec::new();
        for shard in self.shards() {
            if let Ok(coll) = shard.db().get_collection(collection) {
                docs.extend(coll.all_docs());
            }
            shard.replica_set().drop_collection(collection);
        }
        // Shard-key index plus metadata, then reload through the router.
        let def = match key.partitioning() {
            crate::shardkey::Partitioning::Range => {
                IndexDef::compound(key.fields().iter().map(String::as_str))
            }
            crate::shardkey::Partitioning::Hashed => IndexDef::hashed(key.fields()[0].clone()),
        };
        self.create_index(collection, def)?;
        self.config
            .shard_collection_with_chunk_size(collection, key, self.primary, max_chunk_size);
        self.insert_many(collection, docs)
    }

    /// Physically relocates a chunk's documents and updates metadata —
    /// the data-movement half of a balancer migration.
    ///
    /// The protocol is a migration critical section that loses no
    /// concurrent write:
    ///
    /// 1. **Surrender** the range on the source shard. The surrender
    ///    takes the ownership write lock, so it strictly orders
    ///    against in-flight [`Shard::owned_write`]s: every write that
    ///    already passed its ownership check completes before the
    ///    surrender returns, and every later write bounces with
    ///    [`Error::StaleRoute`] (the router retries it until step 4
    ///    re-targets it at the destination).
    /// 2. **Scan** the source for the chunk's resident documents —
    ///    complete by step 1 — and **copy** them to the destination
    ///    (reclaiming the range there first, in case it migrated away
    ///    from the destination earlier).
    /// 3. **Flip** the routing table. New traffic now targets the
    ///    destination, where the copies already are.
    /// 4. **Delete** the copied documents from the source by `_id`.
    ///
    /// Between steps 2 and 4 both sides hold the documents; targeted
    /// reads are unaffected (they see exactly one side), broadcast
    /// reads can transiently observe duplicates — the same orphan
    /// window MongoDB's `moveChunk` has before orphan cleanup.
    ///
    /// Migration replicates at W1 (primaries only): it is internal
    /// data movement; a down member catches up at recovery resync.
    pub fn move_chunk(&self, collection: &str, chunk_idx: usize, to: ShardId) -> Result<usize> {
        let _one_at_a_time = self.migration.lock();
        let meta = self
            .config
            .meta(collection)
            .ok_or_else(|| Error::NoSuchCollection(collection.to_owned()))?;
        let chunk = meta
            .chunks
            .get(chunk_idx)
            .ok_or_else(|| Error::InvalidQuery(format!("no chunk {chunk_idx}")))?
            .clone();
        if chunk.shard == to {
            return Ok(0);
        }
        let src = self.shard(chunk.shard)?;
        let dest = self.shard(to)?;

        // Step 1: close the source side of the range to new writes.
        src.surrender_range(collection, chunk.min.clone(), chunk.max.clone());

        // Step 2: the scan now sees every write that ever passed an
        // ownership check for this range.
        let src_coll = src.replica_set().db().collection(collection);
        let mut moving: Vec<Document> = Vec::new();
        src_coll.for_each(|doc| {
            if chunk.contains(&meta.key.extract(doc)) {
                moving.push(doc.clone());
            }
        });
        let bytes: usize = moving.iter().map(encoded_size).sum();
        let n = moving.len();
        let ids: Vec<_> = moving
            .iter()
            .map(|d| d.id().expect("stored docs have _id").clone())
            .collect();

        dest.reclaim_range(collection, &chunk.min, &chunk.max);
        if let Err(e) = dest
            .replica_set()
            .insert_many(collection, moving, WriteConcern::W1)
        {
            // Copy failed: roll back. Remove whatever partial copy
            // landed, reopen the source range, leave routing untouched
            // — the migration never happened.
            for id in &ids {
                let _ = dest.replica_set().delete_many(
                    collection,
                    &Filter::eq("_id", id.clone()),
                    WriteConcern::W1,
                );
            }
            dest.surrender_range(collection, chunk.min.clone(), chunk.max.clone());
            src.reclaim_range(collection, &chunk.min, &chunk.max);
            return Err(e);
        }

        // Step 3: flip routing. The chunk is re-located by occupancy
        // under the config lock — concurrent splits may have shifted
        // indices, but splits preserve shard placement, so every chunk
        // now covering `[min, max)` still points at the source.
        self.config.with_meta_mut(collection, |m| {
            for c in &mut m.chunks {
                if c.shard == chunk.shard
                    && c.min.cmp_bound(&chunk.min) != std::cmp::Ordering::Less
                    && c.max.cmp_bound(&chunk.max) != std::cmp::Ordering::Greater
                {
                    c.shard = to;
                }
            }
        });

        // Step 4: drop the source copies; routing no longer reaches them.
        for id in ids {
            if let Err(e) =
                src.replica_set()
                    .delete_many(collection, &Filter::eq("_id", id), WriteConcern::W1)
            {
                // The chunk has moved; stragglers on the source are
                // unreachable by targeted traffic but would show up in
                // broadcasts. Surface loudly rather than failing the
                // already-committed migration.
                self.warn(format!("orphan cleanup after chunk move failed: {e}"));
            }
        }

        // Source→destination transfer plus two metadata round-trips.
        self.stats.charge(&self.network, bytes);
        self.stats.charge(&self.network, 64);
        Ok(n)
    }
}

/// Merges per-shard sorted runs into one globally sorted vector with a
/// k-way heap merge — O(total · log legs) key comparisons instead of a
/// linear scan over all legs per emitted document — breaking ties by
/// (leg index, position within leg). That is exactly the order
/// concatenating whole legs and stable-sorting produced, so pushing
/// the sort down is invisible to callers.
fn merge_sorted_legs(legs: Vec<Vec<Document>>, spec: &[(String, i32)]) -> Vec<Document> {
    use doclite_docstore::agg::CompiledSortSpec;
    use std::cmp::{Ordering, Reverse};
    use std::collections::BinaryHeap;

    /// A leg's current head document, ordered by (sort key, leg index).
    /// Each leg has at most one entry in the heap, so within-leg
    /// position order is preserved by construction. Keys are owned —
    /// the document moves into the heap — but extracted through the
    /// compiled spec: one value clone per key component, no
    /// per-document path splitting.
    struct Head<'s> {
        key: Vec<doclite_bson::Value>,
        leg: usize,
        doc: Document,
        spec: &'s CompiledSortSpec,
    }

    impl Ord for Head<'_> {
        fn cmp(&self, other: &Self) -> Ordering {
            self.spec
                .compare_values(&self.key, &other.key)
                .then(self.leg.cmp(&other.leg))
        }
    }
    impl PartialOrd for Head<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Head<'_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Head<'_> {}

    let cs = CompiledSortSpec::new(spec);
    let total: usize = legs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Document>> =
        legs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<Head<'_>>> = BinaryHeap::with_capacity(iters.len());
    for (leg, it) in iters.iter_mut().enumerate() {
        if let Some(doc) = it.next() {
            heap.push(Reverse(Head { key: cs.key_owned(&doc), leg, doc, spec: &cs }));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(head)) = heap.pop() {
        let leg = head.leg;
        out.push(head.doc);
        if let Some(doc) = iters[leg].next() {
            heap.push(Reverse(Head { key: cs.key_owned(&doc), leg, doc, spec: &cs }));
        }
    }
    out
}

/// A shard-pushable window at the head of the router-side stages.
struct ShardWindow<'a> {
    /// Sort spec to push ahead of the limit, when the window is sorted.
    sort: Option<&'a [(String, i32)]>,
    /// Upper bound (`skip + limit`) each leg must retain.
    end: usize,
}

/// Inspects the router-side stages for a shard-pushable window: a
/// leading `$sort` (optionally) followed by `$skip`/`$limit` stages
/// composing a finite `[start, end)` window, or a bare windowed
/// `$skip`/`$limit` run. An unbounded window (no `$limit`) returns
/// `None` — nothing to truncate.
fn shard_window(rest: &[Stage]) -> Option<ShardWindow<'_>> {
    let mut i = 0;
    let sort_spec = match rest.first() {
        Some(Stage::Sort(spec)) => {
            i = 1;
            Some(spec.as_slice())
        }
        _ => None,
    };
    let mut start = 0usize;
    let mut end = usize::MAX;
    loop {
        match rest.get(i) {
            Some(Stage::Skip(n)) => start = start.saturating_add(*n),
            Some(Stage::Limit(n)) => end = end.min(start.saturating_add(*n)),
            _ => break,
        }
        i += 1;
    }
    if end == usize::MAX {
        None
    } else {
        Some(ShardWindow { sort: sort_spec, end })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shardkey::ShardKey;
    use doclite_bson::doc;

    fn cluster(n: usize) -> Mongos {
        let shards: Vec<Arc<Shard>> = (0..n).map(|i| Arc::new(Shard::new(i, "test"))).collect();
        Mongos::new(shards, Arc::new(ConfigServer::new()), NetworkModel::free())
    }

    #[test]
    fn scatter_leg_order_is_stable_regardless_of_completion_order() {
        // Legs finish in reverse submission order (the earliest leg
        // sleeps longest); results must still come back in shard_ids
        // order, which the (leg, pos) merge invariant depends on.
        doclite_docstore::set_parallel_workers(4);
        let r = cluster(4);
        let ids = [0usize, 1, 2, 3];
        for _ in 0..20 {
            let out = r.scatter_legs(
                &ids,
                |id| {
                    std::thread::sleep(std::time::Duration::from_millis(
                        (ids.len() - 1 - id) as u64 * 3,
                    ));
                    id
                },
                |_| 0,
            );
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
        doclite_docstore::set_parallel_workers(0);
    }

    #[test]
    fn unsharded_collections_live_on_primary() {
        let r = cluster(3);
        r.insert_one("dims", doc! {"a" => 1i64}).unwrap();
        assert_eq!(r.shards()[0].db().get_collection("dims").unwrap().len(), 1);
        assert!(r.shards()[1].db().get_collection("dims").is_err());
        assert_eq!(r.find("dims", &Filter::True).len(), 1);
    }

    #[test]
    fn sharded_insert_routes_and_splits() {
        let r = cluster(3);
        r.config().shard_collection_with_chunk_size(
            "facts",
            ShardKey::range(["k"]),
            0,
            4 * 1024, // tiny threshold to force splits
        );
        for i in 0..500i64 {
            r.insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(40)})
                .unwrap();
        }
        let meta = r.config().meta("facts").unwrap();
        assert!(meta.chunks.len() > 1, "expected splits, got 1 chunk");
        meta.check_invariants().unwrap();
        assert_eq!(r.collection_len("facts"), 500);
    }

    #[test]
    fn jumbo_chunk_detected_for_single_valued_key() {
        let r = cluster(2);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::range(["k"]), 0, 2 * 1024);
        for _ in 0..200 {
            r.insert_one("facts", doc! {"k" => 36i64, "pad" => "y".repeat(40)})
                .unwrap();
        }
        let meta = r.config().meta("facts").unwrap();
        assert!(meta.chunks.iter().any(|c| c.jumbo), "expected a jumbo chunk");
    }

    #[test]
    fn targeted_vs_broadcast_find() {
        let r = cluster(3);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::range(["k"]), 0, 2 * 1024);
        for i in 0..300i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => i * 2, "pad" => "z".repeat(30)})
                .unwrap();
        }
        // rebalance a bit so multiple shards hold chunks
        let n_chunks = r.config().meta("facts").unwrap().chunks.len();
        for (i, to) in (0..n_chunks).zip([0usize, 1, 2].iter().cycle()) {
            r.move_chunk("facts", i, *to).unwrap();
        }

        let t = r.explain_targeting("facts", &Filter::eq("k", 5i64));
        assert!(t.is_targeted());
        assert_eq!(t.shards().len(), 1);
        assert_eq!(r.find("facts", &Filter::eq("k", 5i64)).len(), 1);

        let t = r.explain_targeting("facts", &Filter::eq("v", 10i64));
        assert!(!t.is_targeted());
        assert_eq!(r.find("facts", &Filter::eq("v", 10i64)).len(), 1);
        assert_eq!(r.collection_len("facts"), 300);
    }

    #[test]
    fn scatter_modes_agree() {
        let mut r = cluster(3);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::hashed("k"), 0, 1024);
        for i in 0..200i64 {
            r.insert_one("facts", doc! {"k" => i, "grp" => i % 3}).unwrap();
        }
        let f = Filter::eq("grp", 1i64);
        let parallel = r.find("facts", &f).len();
        r.set_scatter_mode(ScatterMode::Sequential);
        let sequential = r.find("facts", &f).len();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn aggregate_pushes_match_down_and_materializes_out() {
        use doclite_docstore::{Accumulator, GroupId};
        let r = cluster(2);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::range(["k"]), 0, 1024);
        for i in 0..100i64 {
            r.insert_one("facts", doc! {"k" => i, "grp" => i % 5, "v" => 1i64})
                .unwrap();
        }
        let p = Pipeline::new()
            .match_stage(Filter::lt("k", 50i64))
            .group(
                GroupId::Expr(doclite_docstore::Expr::field("grp")),
                [("n", Accumulator::sum_field("v"))],
            )
            .sort([("_id", 1)])
            .out("agg_out");
        let results = r.aggregate("facts", &p).unwrap();
        assert_eq!(results.len(), 5);
        assert_eq!(
            results[0].get("n"),
            Some(&doclite_bson::Value::Int64(10))
        );
        let out = r.shards()[0].db().get_collection("agg_out").unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn update_and_delete_route() {
        let r = cluster(2);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::range(["k"]), 0, 1024);
        for i in 0..50i64 {
            r.insert_one("facts", doc! {"k" => i}).unwrap();
        }
        let res = r
            .update(
                "facts",
                &Filter::eq("k", 7i64),
                &UpdateSpec::set("flag", true),
                false,
                true,
            )
            .unwrap();
        assert_eq!(res.modified, 1);
        assert_eq!(r.delete_many("facts", &Filter::eq("k", 7i64)), 1);
        assert_eq!(r.collection_len("facts"), 49);
    }

    #[test]
    fn create_index_reaches_every_shard() {
        let r = cluster(3);
        r.config()
            .shard_collection("facts", ShardKey::range(["k"]), 0);
        r.insert_one("facts", doc! {"k" => 1i64}).unwrap();
        r.create_index("facts", IndexDef::single("v")).unwrap();
        for s in r.shards() {
            let defs = s.db().collection("facts").index_defs();
            assert!(defs.iter().any(|d| d.name == "v_1"));
        }
    }

    #[test]
    fn move_chunk_relocates_documents() {
        let r = cluster(2);
        r.config()
            .shard_collection("facts", ShardKey::range(["k"]), 0);
        for i in 0..20i64 {
            r.insert_one("facts", doc! {"k" => i}).unwrap();
        }
        let moved = r.move_chunk("facts", 0, 1).unwrap();
        assert_eq!(moved, 20);
        assert_eq!(r.shards()[0].db().get_collection("facts").unwrap().len(), 0);
        assert_eq!(r.shards()[1].db().get_collection("facts").unwrap().len(), 20);
        // routing follows the metadata
        assert_eq!(r.find("facts", &Filter::eq("k", 3i64)).len(), 1);
    }

    #[test]
    fn sorted_limited_find_transfers_o_limit_bytes_per_leg() {
        let r = cluster(3);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::hashed("k"), 0, 1024);
        for i in 0..300i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => i, "pad" => "x".repeat(400)})
                .unwrap();
        }
        let data = r.collection_data_size("facts");
        let avg_doc = data / 300;
        r.net_stats().reset();
        let opts = FindOptions {
            sort: vec![("v".into(), 1)],
            limit: 5,
            ..FindOptions::default()
        };
        let docs = r.find_with("facts", &Filter::True, &opts);
        assert_eq!(docs.len(), 5);
        assert_eq!(docs[0].get("v"), Some(&doclite_bson::Value::Int64(0)));
        assert_eq!(docs[4].get("v"), Some(&doclite_bson::Value::Int64(4)));
        // Each of the 3 legs ships at most `limit` documents, so the
        // scatter-gather transfer is bounded by shards × limit × doc
        // size — far below the full broadcast payload.
        let bytes = r.net_stats().bytes() as usize;
        assert!(
            bytes <= 3 * 5 * avg_doc * 2,
            "bytes {bytes}, avg doc {avg_doc}"
        );
        assert!(bytes * 4 < data, "bytes {bytes} vs collection {data}");
    }

    #[test]
    fn sorted_skip_limit_find_matches_unpushed_semantics() {
        let r = cluster(3);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::hashed("k"), 0, 1024);
        for i in 0..100i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => (i * 37) % 100})
                .unwrap();
        }
        let opts = FindOptions {
            sort: vec![("v".into(), -1)],
            skip: 10,
            limit: 7,
            ..FindOptions::default()
        };
        let docs = r.find_with("facts", &Filter::True, &opts);
        assert_eq!(docs.len(), 7);
        // (i * 37) % 100 is a permutation of 0..100, so descending with
        // skip 10 starts at 89.
        for (n, d) in docs.iter().enumerate() {
            assert_eq!(
                d.get("v"),
                Some(&doclite_bson::Value::Int64(89 - n as i64))
            );
        }
    }

    #[test]
    fn aggregate_pushes_sort_limit_window_to_shards() {
        let r = cluster(3);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::hashed("k"), 0, 1024);
        for i in 0..300i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => i, "pad" => "y".repeat(400)})
                .unwrap();
        }
        let data = r.collection_data_size("facts");
        r.net_stats().reset();
        let p = Pipeline::new().sort([("v", 1)]).skip(2).limit(3);
        let docs = r.aggregate("facts", &p).unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].get("v"), Some(&doclite_bson::Value::Int64(2)));
        assert_eq!(docs[2].get("v"), Some(&doclite_bson::Value::Int64(4)));
        let bytes = r.net_stats().bytes() as usize;
        // Each leg ships at most skip + limit = 5 documents.
        assert!(bytes * 4 < data, "bytes {bytes} vs collection {data}");
    }

    #[test]
    fn find_projection_applies_through_router() {
        let r = cluster(2);
        r.config()
            .shard_collection_with_chunk_size("facts", ShardKey::hashed("k"), 0, 1024);
        for i in 0..40i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => i, "w" => i * 2})
                .unwrap();
        }
        // Sort path outside the projection: projection must not be
        // pushed below the merge, yet still applies at the router.
        let opts = FindOptions {
            sort: vec![("v".into(), 1)],
            limit: 3,
            projection: vec!["w".into()],
            ..FindOptions::default()
        };
        let docs = r.find_with("facts", &Filter::True, &opts);
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].get("w"), Some(&doclite_bson::Value::Int64(0)));
        assert!(docs[0].get("v").is_none());
        // Sort path inside the projection: pushed to the legs.
        let opts = FindOptions {
            sort: vec![("v".into(), 1)],
            limit: 3,
            projection: vec!["v".into()],
            ..FindOptions::default()
        };
        let docs = r.find_with("facts", &Filter::True, &opts);
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[1].get("v"), Some(&doclite_bson::Value::Int64(1)));
        assert!(docs[1].get("w").is_none());
    }

    #[test]
    fn network_stats_accumulate_per_leg() {
        let r = cluster(3);
        r.config()
            .shard_collection("facts", ShardKey::range(["k"]), 0);
        r.insert_one("facts", doc! {"k" => 1i64}).unwrap();
        let before = r.net_stats().exchanges();
        r.find("facts", &Filter::eq("nonkey", 0i64)); // broadcast: 1 leg per chunk-holding shard
        assert!(r.net_stats().exchanges() > before);
    }

    /// A skewed two-shard layout: shard 0 holds 10 docs (the globally
    /// smallest `v`s), shard 1 holds 500. Stats-sized per-leg limits
    /// cap shard 0 below the window, so the saturation retry must
    /// re-fetch it — the final window still has to be exact.
    fn skewed_cluster() -> Mongos {
        let r = cluster(2);
        r.config().shard_collection("facts", ShardKey::range(["k"]), 0);
        r.config().split_chunk(
            "facts",
            0,
            CompoundKey::from_values(vec![doclite_bson::Value::Int64(100)]),
            0.5,
        );
        r.config().move_chunk("facts", 1, 1);
        for i in 0..10i64 {
            r.insert_one("facts", doc! {"k" => i, "v" => i}).unwrap();
        }
        for i in 0..500i64 {
            r.insert_one("facts", doc! {"k" => 100 + i, "v" => 1000 + i})
                .unwrap();
        }
        r
    }

    #[test]
    fn optimistic_leg_limits_keep_sorted_window_exact() {
        doclite_docstore::set_planner_mode(doclite_docstore::PlannerMode::Cost);
        let r = skewed_cluster();
        let opts = FindOptions {
            sort: vec![("v".to_string(), 1)],
            skip: 0,
            limit: 10,
            projection: Vec::new(),
        };
        // The optimistic cap for shard 0 is below the window (its stats
        // share is ~2%), so its 10 smallest docs are only complete
        // after the saturation retry.
        let docs = r.find_with("facts", &Filter::True, &opts);
        let vs: Vec<i64> = docs
            .iter()
            .map(|d| match d.get("v") {
                Some(doclite_bson::Value::Int64(v)) => *v,
                other => panic!("unexpected v: {other:?}"),
            })
            .collect();
        assert_eq!(vs, (0..10).collect::<Vec<i64>>());

        // Windows deeper than any single optimistic cap still merge
        // correctly across both legs.
        let opts = FindOptions {
            sort: vec![("v".to_string(), 1)],
            skip: 5,
            limit: 20,
            projection: Vec::new(),
        };
        let docs = r.find_with("facts", &Filter::True, &opts);
        let vs: Vec<i64> = docs
            .iter()
            .filter_map(|d| match d.get("v") {
                Some(doclite_bson::Value::Int64(v)) => Some(*v),
                _ => None,
            })
            .collect();
        let expect: Vec<i64> = (5..10).chain(1000..1015).collect();
        assert_eq!(vs, expect);
    }

    #[test]
    fn explain_route_reports_targeting_and_leg_limits() {
        doclite_docstore::set_planner_mode(doclite_docstore::PlannerMode::Cost);
        let r = skewed_cluster();

        // Point read: targeted, single leg, full window pushed.
        let opts = FindOptions {
            sort: Vec::new(),
            skip: 0,
            limit: 3,
            projection: Vec::new(),
        };
        let ex = r.explain_route("facts", &Filter::eq("k", 5i64), &opts);
        assert!(ex.targeted);
        assert_eq!(ex.shards.len(), 1);
        assert_eq!(ex.leg_limits, vec![3]);

        // Broadcast sorted+limited read: per-leg limits follow the
        // chunk-accounting skew — the small shard is capped below the
        // window, no leg exceeds it.
        let opts = FindOptions {
            sort: vec![("v".to_string(), 1)],
            skip: 0,
            limit: 10,
            projection: Vec::new(),
        };
        let ex = r.explain_route("facts", &Filter::True, &opts);
        assert!(!ex.targeted);
        assert_eq!(ex.shards, vec![0, 1]);
        assert_eq!(ex.est_docs, vec![10, 500]);
        assert!(ex.leg_limits.iter().all(|&l| l <= 10));
        assert!(
            ex.leg_limits[0] < 10,
            "small shard should be capped below the window, got {:?}",
            ex.leg_limits
        );
        assert_eq!(ex.leg_limits[1], 10);
    }
}

#[cfg(test)]
mod reshard_tests {
    use super::*;
    use crate::config::ConfigServer;
    use crate::network::NetworkModel;
    use crate::shard::Shard;
    use crate::shardkey::ShardKey;
    use doclite_bson::doc;

    #[test]
    fn reshard_existing_collection_redistributes_and_preserves_data() {
        let shards: Vec<Arc<Shard>> = (0..3).map(|i| Arc::new(Shard::new(i, "t"))).collect();
        let r = Mongos::new(shards, Arc::new(ConfigServer::new()), NetworkModel::free());
        // Load unsharded (lands on the primary).
        for i in 0..400i64 {
            r.insert_one("dn", doc! {"k" => i, "pad" => "p".repeat(40)}).unwrap();
        }
        assert_eq!(r.shards()[0].db().get_collection("dn").unwrap().len(), 400);

        let n = r
            .reshard_collection("dn", ShardKey::range(["k"]), 4 * 1024)
            .unwrap();
        assert_eq!(n, 400);
        let meta = r.config().meta("dn").unwrap();
        assert!(meta.chunks.len() > 1, "resharding should split chunks");
        meta.check_invariants().unwrap();
        assert_eq!(r.collection_len("dn"), 400);
        // Targeted routing now works on the new key.
        assert!(r.explain_targeting("dn", &Filter::eq("k", 7i64)).is_targeted());
        assert_eq!(r.find("dn", &Filter::eq("k", 7i64)).len(), 1);
    }
}
