//! Shard keys: the indexed field(s) that determine data placement
//! (thesis Section 2.1.3.3).

use doclite_bson::{Document, Value};
use doclite_docstore::index::hashed::hash_key;
use doclite_docstore::CompoundKey;

/// How shard-key values map onto the chunk keyspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// Range-based: documents with nearby shard-key values live in the
    /// same chunk (good for range queries; risks jumbo chunks on skew).
    Range,
    /// Hash-based: chunks cover ranges of the 64-bit hash of the key, so
    /// nearby values scatter (even distribution; no efficient ranges).
    Hashed,
}

/// A shard key: one or more fields plus the partitioning strategy.
/// Hashed keys are single-field, as in MongoDB.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardKey {
    fields: Vec<String>,
    partitioning: Partitioning,
}

impl ShardKey {
    /// A range-partitioned key over the given fields.
    pub fn range<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let fields: Vec<String> = fields.into_iter().map(Into::into).collect();
        assert!(!fields.is_empty(), "shard key needs at least one field");
        ShardKey { fields, partitioning: Partitioning::Range }
    }

    /// A hash-partitioned key over a single field.
    pub fn hashed(field: impl Into<String>) -> Self {
        ShardKey { fields: vec![field.into()], partitioning: Partitioning::Hashed }
    }

    /// The key fields.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// The partitioning strategy.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// Extracts the *chunk keyspace* key for a document: the raw field
    /// values for range partitioning, or the 64-bit hash (stored as
    /// `Int64`, exactly like MongoDB's hashed shard keys) for hashed.
    /// Missing fields key as `Null`.
    pub fn extract(&self, doc: &Document) -> CompoundKey {
        match self.partitioning {
            Partitioning::Range => CompoundKey::from_values(
                self.fields
                    .iter()
                    .map(|f| doc.get_path(f).unwrap_or(Value::Null))
                    .collect(),
            ),
            Partitioning::Hashed => {
                let v = doc.get_path(&self.fields[0]).unwrap_or(Value::Null);
                CompoundKey::from_values(vec![Value::Int64(hash_key(&v) as i64)])
            }
        }
    }

    /// Maps a raw shard-key *value* (not a document) into the chunk
    /// keyspace — used for query targeting.
    pub fn keyspace_value(&self, values: &[Value]) -> CompoundKey {
        match self.partitioning {
            Partitioning::Range => CompoundKey::from_values(values.to_vec()),
            Partitioning::Hashed => {
                CompoundKey::from_values(vec![Value::Int64(hash_key(&values[0]) as i64)])
            }
        }
    }

    /// True if range queries on the key can be targeted (range
    /// partitioning only — hashed scatters ranges across chunks).
    pub fn supports_range_targeting(&self) -> bool {
        self.partitioning == Partitioning::Range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    #[test]
    fn range_key_extracts_raw_values() {
        let k = ShardKey::range(["a", "b"]);
        let key = k.extract(&doc! {"a" => 1i64, "b" => "x"});
        assert_eq!(key.0[0].value(), &Value::Int64(1));
        assert_eq!(key.0[1].value(), &Value::from("x"));
    }

    #[test]
    fn missing_fields_key_as_null() {
        let k = ShardKey::range(["a"]);
        let key = k.extract(&doc! {"b" => 1i64});
        assert_eq!(key.0[0].value(), &Value::Null);
    }

    #[test]
    fn hashed_key_is_int64_hash() {
        let k = ShardKey::hashed("a");
        let key = k.extract(&doc! {"a" => 42i64});
        assert!(matches!(key.0[0].value(), Value::Int64(_)));
        // deterministic
        assert_eq!(key, k.extract(&doc! {"a" => 42i64}));
        // equal raw values of different numeric types hash identically
        assert_eq!(key, k.extract(&doc! {"a" => 42.0f64}));
    }

    #[test]
    fn hashed_scatters_nearby_values() {
        let k = ShardKey::hashed("a");
        let k1 = k.extract(&doc! {"a" => 1i64});
        let k2 = k.extract(&doc! {"a" => 2i64});
        let (Value::Int64(h1), Value::Int64(h2)) = (k1.0[0].value(), k2.0[0].value()) else {
            panic!("hashed keys are Int64")
        };
        assert!(h1.abs_diff(*h2) > 1 << 32);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_key_panics() {
        let _ = ShardKey::range(Vec::<String>::new());
    }
}
