//! The simulated network between router and shards.
//!
//! **Substitution for the paper's AWS cluster.** The thesis ran a 5-node
//! EC2 cluster; router↔shard traffic crossed a real network. Here the
//! shards are in-process, so this model injects the two costs that made
//! the thesis's scatter-gather queries slow (Section 4.3): a per-exchange
//! round-trip latency and a per-byte transfer cost.
//!
//! Two modes:
//!
//! * [`NetMode::Sleep`] — actually sleep, so wall-clock measurements
//!   (criterion benches) include network time;
//! * [`NetMode::Account`] — accumulate the time into a counter, so report
//!   binaries can run fast and add simulated network time to measured CPU
//!   time deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How network costs are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetMode {
    /// Block the calling thread for the computed duration.
    Sleep,
    /// Only accumulate into the stats counters.
    Account,
}

/// Network cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One request/response exchange between router and a shard.
    pub round_trip: Duration,
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: u64,
    /// Application mode.
    pub mode: NetMode,
}

impl NetworkModel {
    /// A zero-cost network (stand-alone behaviour).
    pub fn free() -> Self {
        NetworkModel { round_trip: Duration::ZERO, bytes_per_sec: u64::MAX, mode: NetMode::Account }
    }

    /// Costs loosely calibrated to the paper's EC2 LAN (same-AZ):
    /// 100 µs RTT, 1 Gbit/s effective bandwidth.
    pub fn lan() -> Self {
        NetworkModel {
            round_trip: Duration::from_micros(100),
            bytes_per_sec: 125_000_000,
            mode: NetMode::Account,
        }
    }

    /// Switches to sleeping mode (for wall-clock benches).
    pub fn sleeping(mut self) -> Self {
        self.mode = NetMode::Sleep;
        self
    }

    /// The modelled duration of one exchange carrying `bytes`.
    pub fn cost(&self, bytes: usize) -> Duration {
        let transfer = if self.bytes_per_sec == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                (bytes as u128 * 1_000_000_000 / self.bytes_per_sec as u128) as u64,
            )
        };
        self.round_trip + transfer
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::lan()
    }
}

/// Thread-safe accumulation of simulated network activity.
#[derive(Debug, Default)]
pub struct NetStats {
    exchanges: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
    /// Peak per-operation parallel time (see [`NetStats::charge_parallel`]).
    parallel_nanos: AtomicU64,
}

impl NetStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one router↔shard exchange of `bytes`, sleeping if the
    /// model says so. Returns the modelled duration.
    pub fn charge(&self, model: &NetworkModel, bytes: usize) -> Duration {
        let d = model.cost(bytes);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && d > Duration::ZERO {
            std::thread::sleep(d);
        }
        d
    }

    /// Charges a scatter-gather step that contacts several shards *in
    /// parallel*: serial counters record the sum, but the parallel clock
    /// advances only by the slowest leg.
    pub fn charge_parallel(&self, model: &NetworkModel, legs: &[usize]) -> Duration {
        if legs.is_empty() {
            return Duration::ZERO;
        }
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for &bytes in legs {
            let d = model.cost(bytes);
            total += d;
            if d > max {
                max = d;
            }
            self.exchanges.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.nanos.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(max.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && max > Duration::ZERO {
            std::thread::sleep(max);
        }
        max
    }

    /// Total exchanges so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }

    /// Total payload bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total serialized network time.
    pub fn serial_time(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Network time assuming parallel scatter legs overlap.
    pub fn parallel_time(&self) -> Duration {
        Duration::from_nanos(self.parallel_nanos.load(Ordering::Relaxed))
    }

    /// Resets all counters (between experiments).
    pub fn reset(&self) {
        self.exchanges.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
        self.parallel_nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_combines_latency_and_transfer() {
        let m = NetworkModel {
            round_trip: Duration::from_micros(100),
            bytes_per_sec: 1_000_000,
            mode: NetMode::Account,
        };
        // 1000 bytes at 1 MB/s = 1 ms
        assert_eq!(m.cost(1000), Duration::from_micros(1100));
        assert_eq!(m.cost(0), Duration::from_micros(100));
    }

    #[test]
    fn free_network_is_zero_cost() {
        let m = NetworkModel::free();
        assert_eq!(m.cost(1 << 30), Duration::ZERO);
    }

    #[test]
    fn charge_accumulates() {
        let stats = NetStats::new();
        let m = NetworkModel::lan();
        stats.charge(&m, 1000);
        stats.charge(&m, 2000);
        assert_eq!(stats.exchanges(), 2);
        assert_eq!(stats.bytes(), 3000);
        // 2 round-trips at 100 µs plus 3000 bytes of transfer.
        assert!(stats.serial_time() >= Duration::from_micros(200));
        stats.reset();
        assert_eq!(stats.exchanges(), 0);
        assert_eq!(stats.serial_time(), Duration::ZERO);
    }

    #[test]
    fn parallel_charge_takes_max_leg() {
        let stats = NetStats::new();
        let m = NetworkModel {
            round_trip: Duration::from_millis(1),
            bytes_per_sec: u64::MAX,
            mode: NetMode::Account,
        };
        stats.charge_parallel(&m, &[10, 10, 10]);
        assert_eq!(stats.exchanges(), 3);
        assert_eq!(stats.parallel_time(), Duration::from_millis(1));
        assert_eq!(stats.serial_time(), Duration::from_millis(3));
    }

    #[test]
    fn sleep_mode_blocks() {
        let stats = NetStats::new();
        let m = NetworkModel {
            round_trip: Duration::from_millis(5),
            bytes_per_sec: u64::MAX,
            mode: NetMode::Sleep,
        };
        let t0 = std::time::Instant::now();
        stats.charge(&m, 0);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
