//! The simulated network between router and shards.
//!
//! **Substitution for the paper's AWS cluster.** The thesis ran a 5-node
//! EC2 cluster; router↔shard traffic crossed a real network. Here the
//! shards are in-process, so this model injects the two costs that made
//! the thesis's scatter-gather queries slow (Section 4.3): a per-exchange
//! round-trip latency and a per-byte transfer cost.
//!
//! Two modes:
//!
//! * [`NetMode::Sleep`] — actually sleep, so wall-clock measurements
//!   (criterion benches) include network time;
//! * [`NetMode::Account`] — accumulate the time into a counter, so report
//!   binaries can run fast and add simulated network time to measured CPU
//!   time deterministically.
//!
//! A third concern lives here too: **injectable faults**. The paper's
//! production-shaped deployments (and the HPC clusters of
//! arXiv:2209.15390) run under constant node churn; [`Faults`] models
//! the network half of that churn — per-shard partitions, probabilistic
//! request drops, and request timeouts — deterministically, so chaos
//! tests can replay a seeded schedule and assert exact outcomes.

use crate::chunk::ShardId;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// How network costs are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetMode {
    /// Block the calling thread for the computed duration.
    Sleep,
    /// Only accumulate into the stats counters.
    Account,
}

/// Network cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One request/response exchange between router and a shard.
    pub round_trip: Duration,
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: u64,
    /// Application mode.
    pub mode: NetMode,
}

impl NetworkModel {
    /// A zero-cost network (stand-alone behaviour).
    pub fn free() -> Self {
        NetworkModel { round_trip: Duration::ZERO, bytes_per_sec: u64::MAX, mode: NetMode::Account }
    }

    /// Costs loosely calibrated to the paper's EC2 LAN (same-AZ):
    /// 100 µs RTT, 1 Gbit/s effective bandwidth.
    pub fn lan() -> Self {
        NetworkModel {
            round_trip: Duration::from_micros(100),
            bytes_per_sec: 125_000_000,
            mode: NetMode::Account,
        }
    }

    /// Switches to sleeping mode (for wall-clock benches).
    pub fn sleeping(mut self) -> Self {
        self.mode = NetMode::Sleep;
        self
    }

    /// The modelled duration of one exchange carrying `bytes`.
    pub fn cost(&self, bytes: usize) -> Duration {
        let transfer = if self.bytes_per_sec == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                (bytes as u128 * 1_000_000_000 / self.bytes_per_sec as u128) as u64,
            )
        };
        self.round_trip + transfer
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::lan()
    }
}

/// Why an injected fault failed an exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The target shard is partitioned from the router.
    Partitioned,
    /// The request was sampled for loss by the drop probability.
    Dropped,
    /// The modelled exchange duration exceeded the request timeout.
    TimedOut,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Partitioned => write!(f, "network partition"),
            FaultKind::Dropped => write!(f, "request dropped"),
            FaultKind::TimedOut => write!(f, "request timed out"),
        }
    }
}

/// Injectable fault state between the router and its shards.
///
/// All decisions are deterministic: partitions are explicit toggles, and
/// drop sampling uses a seeded 64-bit LCG (`set_seed`), so a chaos run
/// with a fixed seed and a fixed operation order replays bit-identically.
/// The [`Faults::active`] flag is a single relaxed atomic load, so a
/// cluster with no faults configured pays one branch per exchange and
/// nothing else.
#[derive(Debug, Default)]
pub struct Faults {
    /// Fast-path guard: true iff any fault knob is engaged.
    active: AtomicBool,
    /// Shards currently unreachable from the router.
    partitioned: RwLock<Vec<ShardId>>,
    /// Probability (per 2^32) that an exchange is dropped.
    drop_per_2_32: AtomicU64,
    /// LCG state for drop sampling.
    rng: AtomicU64,
    /// Request timeout in nanos (0 = none): exchanges whose modelled
    /// cost exceeds this fail with [`FaultKind::TimedOut`].
    timeout_nanos: AtomicU64,
}

impl Faults {
    /// No faults.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh_active(&self) {
        let engaged = !self.partitioned.read().is_empty()
            || self.drop_per_2_32.load(Ordering::Relaxed) > 0
            || self.timeout_nanos.load(Ordering::Relaxed) > 0;
        self.active.store(engaged, Ordering::Relaxed);
    }

    /// True iff any fault is configured — the healthy-path fast check.
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Partitions a shard away from (or back to) the router.
    pub fn set_partitioned(&self, shard: ShardId, partitioned: bool) {
        {
            let mut list = self.partitioned.write();
            match (list.iter().position(|&s| s == shard), partitioned) {
                (None, true) => list.push(shard),
                (Some(i), false) => {
                    list.swap_remove(i);
                }
                _ => {}
            }
        }
        self.refresh_active();
    }

    /// True if the shard is currently partitioned.
    pub fn is_partitioned(&self, shard: ShardId) -> bool {
        self.partitioned.read().contains(&shard)
    }

    /// Sets the per-exchange drop probability (clamped to `[0, 1]`).
    pub fn set_drop_probability(&self, p: f64) {
        let clamped = p.clamp(0.0, 1.0);
        self.drop_per_2_32
            .store((clamped * 4_294_967_296.0) as u64, Ordering::Relaxed);
        self.refresh_active();
    }

    /// Seeds the deterministic drop sampler.
    pub fn set_seed(&self, seed: u64) {
        self.rng.store(seed, Ordering::Relaxed);
    }

    /// Sets the request timeout (`None` disables).
    pub fn set_timeout(&self, timeout: Option<Duration>) {
        self.timeout_nanos.store(
            timeout.map(|d| d.as_nanos() as u64).unwrap_or(0),
            Ordering::Relaxed,
        );
        self.refresh_active();
    }

    /// Clears every fault.
    pub fn clear(&self) {
        self.partitioned.write().clear();
        self.drop_per_2_32.store(0, Ordering::Relaxed);
        self.timeout_nanos.store(0, Ordering::Relaxed);
        self.refresh_active();
    }

    /// One step of the 64-bit LCG (Knuth's MMIX constants).
    fn next_sample(&self) -> u64 {
        self.rng
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                )
            })
            .map(|s| {
                s.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
            })
            .expect("fetch_update closure never returns None")
    }

    /// Decides the fate of one exchange to `shard` carrying `bytes`
    /// under `model`: partition, then drop sampling, then timeout, in
    /// that order. `Ok(())` means the exchange goes through.
    pub fn check(
        &self,
        shard: ShardId,
        model: &NetworkModel,
        bytes: usize,
    ) -> std::result::Result<(), FaultKind> {
        if !self.active() {
            return Ok(());
        }
        if self.is_partitioned(shard) {
            return Err(FaultKind::Partitioned);
        }
        let drop = self.drop_per_2_32.load(Ordering::Relaxed);
        if drop > 0 && (self.next_sample() >> 32) < drop {
            return Err(FaultKind::Dropped);
        }
        let timeout = self.timeout_nanos.load(Ordering::Relaxed);
        if timeout > 0 && model.cost(bytes).as_nanos() as u64 > timeout {
            return Err(FaultKind::TimedOut);
        }
        Ok(())
    }
}

/// Bounded exponential backoff for router retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts after the first (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Backoff cap; doubling stops here.
    pub max_backoff: Duration,
    /// Jitter as a percentage of the exponential backoff (0–100). A
    /// retry waits a seeded-random duration in
    /// `[backoff − backoff·jitter_pct/100, backoff]`, so retry storms
    /// during a drain can't stay phase-locked. 0 = deterministic
    /// exponential backoff (the pre-elastic behaviour).
    pub jitter_pct: u32,
    /// Total wall-clock budget for one operation, counting the time
    /// spent in backoff waits. Once accumulated backoff exceeds this,
    /// the router gives up even if retries remain. `Duration::ZERO`
    /// means unlimited.
    pub op_deadline: Duration,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_pct: 0,
            op_deadline: Duration::ZERO,
        }
    }

    /// Tuned for elastic-topology churn: enough retries to ride out a
    /// chunk drain (each StaleRoute retry re-reads the routing table),
    /// half-width jitter to de-synchronize the herd, and a hard 2 s
    /// per-op deadline so a wedged drain surfaces as an error instead
    /// of an unbounded stall.
    pub fn elastic() -> Self {
        RetryPolicy {
            max_retries: 16,
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            jitter_pct: 50,
            op_deadline: Duration::from_secs(2),
        }
    }

    /// The backoff before retry number `attempt` (1-based): the initial
    /// backoff doubled per attempt, clamped to the cap. Jitter-free.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .initial_backoff
            .saturating_mul(2u32.saturating_pow(attempt.saturating_sub(1)));
        doubled.min(self.max_backoff)
    }

    /// The jittered backoff before retry number `attempt`: full-jitter
    /// over the bottom `jitter_pct` percent of the exponential value,
    /// sampled deterministically from `entropy` (one MMIX LCG step —
    /// callers pass a per-router counter so concurrent ops decorrelate
    /// while seeded runs replay exactly).
    pub fn jittered_backoff(&self, attempt: u32, entropy: u64) -> Duration {
        let base = self.backoff(attempt);
        if self.jitter_pct == 0 || base.is_zero() {
            return base;
        }
        let pct = self.jitter_pct.min(100) as u128;
        let span_nanos = base.as_nanos() * pct / 100;
        if span_nanos == 0 {
            return base;
        }
        let mixed = entropy
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cut = (mixed >> 32) as u128 * span_nanos / (1u128 << 32);
        base - Duration::from_nanos(cut as u64)
    }

    /// True once `waited` (accumulated backoff) has exhausted the
    /// per-op deadline. Never true when the deadline is unlimited.
    pub fn deadline_exceeded(&self, waited: Duration) -> bool {
        !self.op_deadline.is_zero() && waited >= self.op_deadline
    }
}

impl Default for RetryPolicy {
    /// 3 retries, 1 ms → 2 ms → 4 ms, capped at 50 ms; no jitter, no
    /// deadline (the pre-elastic behaviour, pinned by chaos replays).
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_pct: 0,
            op_deadline: Duration::ZERO,
        }
    }
}

/// Thread-safe accumulation of simulated network activity.
#[derive(Debug, Default)]
pub struct NetStats {
    exchanges: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
    /// Peak per-operation parallel time (see [`NetStats::charge_parallel`]).
    parallel_nanos: AtomicU64,
    /// Exchanges failed by injected faults, by kind.
    dropped: AtomicU64,
    timed_out: AtomicU64,
    partitioned: AtomicU64,
    /// Retries the router performed after failed exchanges.
    retries: AtomicU64,
}

impl NetStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one router↔shard exchange of `bytes`, sleeping if the
    /// model says so. Returns the modelled duration.
    pub fn charge(&self, model: &NetworkModel, bytes: usize) -> Duration {
        let d = model.cost(bytes);
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && d > Duration::ZERO {
            std::thread::sleep(d);
        }
        d
    }

    /// Charges a scatter-gather step that contacts several shards *in
    /// parallel*: serial counters record the sum, but the parallel clock
    /// advances only by the slowest leg.
    pub fn charge_parallel(&self, model: &NetworkModel, legs: &[usize]) -> Duration {
        if legs.is_empty() {
            return Duration::ZERO;
        }
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for &bytes in legs {
            let d = model.cost(bytes);
            total += d;
            if d > max {
                max = d;
            }
            self.exchanges.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.nanos.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(max.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && max > Duration::ZERO {
            std::thread::sleep(max);
        }
        max
    }

    /// Records an exchange failed by an injected fault. The round-trip
    /// (or the full timeout wait) is still paid on the wire.
    pub fn record_fault(&self, model: &NetworkModel, kind: FaultKind) {
        match kind {
            FaultKind::Dropped => self.dropped.fetch_add(1, Ordering::Relaxed),
            FaultKind::TimedOut => self.timed_out.fetch_add(1, Ordering::Relaxed),
            FaultKind::Partitioned => self.partitioned.fetch_add(1, Ordering::Relaxed),
        };
        let d = model.round_trip;
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && d > Duration::ZERO {
            std::thread::sleep(d);
        }
    }

    /// Records one router retry and charges its backoff wait.
    pub fn record_retry(&self, model: &NetworkModel, backoff: Duration) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.nanos
            .fetch_add(backoff.as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos
            .fetch_add(backoff.as_nanos() as u64, Ordering::Relaxed);
        if model.mode == NetMode::Sleep && backoff > Duration::ZERO {
            std::thread::sleep(backoff);
        }
    }

    /// Total exchanges so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }

    /// Exchanges lost to drop faults.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Exchanges lost to request timeouts.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Exchanges refused by a partition.
    pub fn partitioned(&self) -> u64 {
        self.partitioned.load(Ordering::Relaxed)
    }

    /// Router retries performed.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total payload bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total serialized network time.
    pub fn serial_time(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Network time assuming parallel scatter legs overlap.
    pub fn parallel_time(&self) -> Duration {
        Duration::from_nanos(self.parallel_nanos.load(Ordering::Relaxed))
    }

    /// Resets all counters (between experiments).
    pub fn reset(&self) {
        self.exchanges.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
        self.parallel_nanos.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.timed_out.store(0, Ordering::Relaxed);
        self.partitioned.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_combines_latency_and_transfer() {
        let m = NetworkModel {
            round_trip: Duration::from_micros(100),
            bytes_per_sec: 1_000_000,
            mode: NetMode::Account,
        };
        // 1000 bytes at 1 MB/s = 1 ms
        assert_eq!(m.cost(1000), Duration::from_micros(1100));
        assert_eq!(m.cost(0), Duration::from_micros(100));
    }

    #[test]
    fn free_network_is_zero_cost() {
        let m = NetworkModel::free();
        assert_eq!(m.cost(1 << 30), Duration::ZERO);
    }

    #[test]
    fn charge_accumulates() {
        let stats = NetStats::new();
        let m = NetworkModel::lan();
        stats.charge(&m, 1000);
        stats.charge(&m, 2000);
        assert_eq!(stats.exchanges(), 2);
        assert_eq!(stats.bytes(), 3000);
        // 2 round-trips at 100 µs plus 3000 bytes of transfer.
        assert!(stats.serial_time() >= Duration::from_micros(200));
        stats.reset();
        assert_eq!(stats.exchanges(), 0);
        assert_eq!(stats.serial_time(), Duration::ZERO);
    }

    #[test]
    fn parallel_charge_takes_max_leg() {
        let stats = NetStats::new();
        let m = NetworkModel {
            round_trip: Duration::from_millis(1),
            bytes_per_sec: u64::MAX,
            mode: NetMode::Account,
        };
        stats.charge_parallel(&m, &[10, 10, 10]);
        assert_eq!(stats.exchanges(), 3);
        assert_eq!(stats.parallel_time(), Duration::from_millis(1));
        assert_eq!(stats.serial_time(), Duration::from_millis(3));
    }

    #[test]
    fn faults_inactive_by_default_and_clearable() {
        let f = Faults::new();
        assert!(!f.active());
        assert_eq!(f.check(0, &NetworkModel::lan(), 1 << 20), Ok(()));
        f.set_partitioned(2, true);
        assert!(f.active());
        assert!(f.is_partitioned(2));
        assert_eq!(
            f.check(2, &NetworkModel::lan(), 0),
            Err(FaultKind::Partitioned)
        );
        assert_eq!(f.check(0, &NetworkModel::lan(), 0), Ok(()));
        f.clear();
        assert!(!f.active());
        assert!(!f.is_partitioned(2));
    }

    #[test]
    fn drop_probability_is_deterministic_under_a_seed() {
        let m = NetworkModel::lan();
        let run = |seed: u64| {
            let f = Faults::new();
            f.set_drop_probability(0.5);
            f.set_seed(seed);
            (0..64).map(|_| f.check(0, &m, 0).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedule");
        let drops = run(42).iter().filter(|&&d| d).count();
        assert!((8..56).contains(&drops), "p=0.5 should drop roughly half, got {drops}");
    }

    #[test]
    fn drop_probability_extremes() {
        let m = NetworkModel::lan();
        let f = Faults::new();
        f.set_drop_probability(1.0);
        f.set_seed(7);
        assert!((0..32).all(|_| f.check(0, &m, 0) == Err(FaultKind::Dropped)));
        f.set_drop_probability(0.0);
        assert!((0..32).all(|_| f.check(0, &m, 0) == Ok(())));
    }

    #[test]
    fn timeout_fails_oversized_exchanges_only() {
        let m = NetworkModel {
            round_trip: Duration::from_micros(100),
            bytes_per_sec: 1_000_000,
            mode: NetMode::Account,
        };
        let f = Faults::new();
        f.set_timeout(Some(Duration::from_millis(1)));
        // 100 bytes → 100 µs RTT + 100 µs transfer: under the timeout.
        assert_eq!(f.check(0, &m, 100), Ok(()));
        // 10 kB → 10 ms transfer: over it.
        assert_eq!(f.check(0, &m, 10_000), Err(FaultKind::TimedOut));
        f.set_timeout(None);
        assert_eq!(f.check(0, &m, 10_000), Ok(()));
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(5));
        assert_eq!(p.backoff(5), Duration::from_millis(5));
    }

    #[test]
    fn jittered_backoff_sequence_is_pinned_and_bounded() {
        let p = RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter_pct: 50,
            op_deadline: Duration::ZERO,
        };
        // With jitter_pct = 50 the wait lands in [base/2, base]; the
        // exact value is a pure function of (attempt, entropy), so the
        // sequence below is pinned — a change to the mixing constants
        // or the span arithmetic shows up as a test diff.
        let seq: Vec<u64> = (1..=5)
            .map(|a| p.jittered_backoff(a, a as u64).as_nanos() as u64)
            .collect();
        assert_eq!(seq, vec![788_396, 1_231_791, 3_773_580, 6_167_158, 4_787_156]);
        for (i, &nanos) in seq.iter().enumerate() {
            let base = p.backoff(i as u32 + 1).as_nanos() as u64;
            assert!(nanos <= base, "jitter must never exceed the base backoff");
            assert!(nanos >= base / 2, "jitter floor is base·(1−pct/100)");
        }
        // Replay-identical under the same entropy; entropy varies it.
        assert_eq!(p.jittered_backoff(3, 7), p.jittered_backoff(3, 7));
        assert_ne!(p.jittered_backoff(3, 7), p.jittered_backoff(3, 8));
        // jitter_pct = 0 degrades to the deterministic exponential.
        let plain = RetryPolicy { jitter_pct: 0, ..p };
        assert_eq!(plain.jittered_backoff(3, 99), plain.backoff(3));
    }

    #[test]
    fn op_deadline_caps_total_backoff() {
        let p = RetryPolicy {
            op_deadline: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert!(!p.deadline_exceeded(Duration::from_millis(9)));
        assert!(p.deadline_exceeded(Duration::from_millis(10)));
        assert!(p.deadline_exceeded(Duration::from_millis(11)));
        // Zero deadline means unlimited.
        let unlimited = RetryPolicy::default();
        assert!(!unlimited.deadline_exceeded(Duration::from_secs(3600)));
    }

    #[test]
    fn fault_and_retry_stats_accumulate_and_reset() {
        let stats = NetStats::new();
        let m = NetworkModel::lan();
        stats.record_fault(&m, FaultKind::Dropped);
        stats.record_fault(&m, FaultKind::TimedOut);
        stats.record_fault(&m, FaultKind::Partitioned);
        stats.record_retry(&m, Duration::from_millis(1));
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.timed_out(), 1);
        assert_eq!(stats.partitioned(), 1);
        assert_eq!(stats.retries(), 1);
        // Faulted exchanges and backoffs still cost simulated time.
        assert!(stats.serial_time() >= Duration::from_millis(1));
        stats.reset();
        assert_eq!(stats.dropped() + stats.timed_out() + stats.partitioned() + stats.retries(), 0);
    }

    #[test]
    fn sleep_mode_blocks() {
        let stats = NetStats::new();
        let m = NetworkModel {
            round_trip: Duration::from_millis(5),
            bytes_per_sec: u64::MAX,
            mode: NetMode::Sleep,
        };
        let t0 = std::time::Instant::now();
        stats.charge(&m, 0);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
