//! Cluster assembly: shards + config server + router in one handle,
//! mirroring the thesis's deployment (Fig 3.1: three shards, one config
//! server, one AppServer/QueryRouter).

use crate::balancer::Balancer;
use crate::config::ConfigServer;
use crate::network::{NetworkModel, RetryPolicy};
use crate::replica::{ReadPreference, WriteConcern};
use crate::router::{DegradedReads, Mongos};
use crate::shard::Shard;
use crate::shardkey::ShardKey;
use doclite_docstore::wal::SyncPolicy;
use doclite_docstore::Result;
use std::path::PathBuf;
use std::sync::Arc;

/// Where and how durably the shards persist their data. Each shard's
/// members keep their WAL + checkpoints under
/// `<dir>/s<shard>/m<member>`.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory for the cluster's durability state.
    pub dir: PathBuf,
    /// Fsync cadence for every member WAL.
    pub sync: SyncPolicy,
}

/// Build-time knobs for a [`ShardedCluster`]. `Default` reproduces the
/// thesis deployment: three unreplicated shards, a free network, `w:1`
/// writes, primary reads, and fail-fast behaviour when a shard is
/// unreachable.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards (thesis: 3).
    pub n_shards: usize,
    /// Replica-set members per shard: 1 reproduces the thesis's
    /// unreplicated evaluation cluster, 3 the replicated production
    /// topology of its Fig 2.5.
    pub replicas_per_shard: usize,
    /// Database name shared by the shards.
    pub db_name: String,
    /// Router↔shard network model.
    pub network: NetworkModel,
    /// Write concern the router applies to every routed write.
    pub write_concern: WriteConcern,
    /// Member preference for routed reads.
    pub read_preference: ReadPreference,
    /// Retry/backoff policy for exchanges hit by injected faults.
    pub retry: RetryPolicy,
    /// What reads do when a whole shard stays unreachable.
    pub degraded_reads: DegradedReads,
    /// Crash durability for shard members (`None` = in-memory only, the
    /// thesis's evaluation setup).
    pub durability: Option<DurabilityConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_shards: 3,
            replicas_per_shard: 1,
            db_name: "Dataset".into(),
            network: NetworkModel::free(),
            write_concern: WriteConcern::default(),
            read_preference: ReadPreference::default(),
            retry: RetryPolicy::default(),
            degraded_reads: DegradedReads::default(),
            durability: None,
        }
    }
}

/// A fully wired sharded cluster.
pub struct ShardedCluster {
    router: Mongos,
    balancer: Balancer,
}

impl ShardedCluster {
    /// Builds a cluster of `n_shards` unreplicated shards sharing a
    /// database name, with the given network model between router and
    /// shards. The thesis's configuration is `n_shards = 3`.
    pub fn new(n_shards: usize, db_name: &str, network: NetworkModel) -> Self {
        Self::with_config(ClusterConfig {
            n_shards,
            db_name: db_name.to_owned(),
            network,
            ..ClusterConfig::default()
        })
    }

    /// Builds a cluster from a full [`ClusterConfig`] — replica-backed
    /// shards, write concern, read preference, retry policy and
    /// degraded-read behaviour included. Every shard is registered in
    /// the config server's shard registry.
    pub fn with_config(cfg: ClusterConfig) -> Self {
        let shards: Vec<Arc<Shard>> = (0..cfg.n_shards)
            .map(|i| {
                let shard = match &cfg.durability {
                    // An unopenable durability directory is a
                    // deployment error, not a runtime condition the
                    // router could route around: fail loudly at build.
                    Some(d) => Shard::with_durable_replicas(
                        i,
                        &cfg.db_name,
                        cfg.replicas_per_shard,
                        &d.dir.join(format!("s{i}")),
                        d.sync,
                    )
                    .expect("shard durability directory must be usable"),
                    None => Shard::with_replicas(i, &cfg.db_name, cfg.replicas_per_shard),
                };
                Arc::new(shard)
            })
            .collect();
        let config = Arc::new(ConfigServer::new());
        for s in &shards {
            config.register_shard(crate::config::ShardEntry {
                id: s.id(),
                name: s.name().to_owned(),
                replica_set: s.replica_set().name().to_owned(),
                members: s.member_count(),
            });
        }
        let mut router = Mongos::new(shards, config, cfg.network);
        router.set_write_concern(cfg.write_concern);
        router.set_read_preference(cfg.read_preference);
        router.set_retry_policy(cfg.retry);
        router.set_degraded_reads(cfg.degraded_reads);
        ShardedCluster { router, balancer: Balancer::default() }
    }

    /// The router (all reads and writes go through it).
    pub fn router(&self) -> &Mongos {
        &self.router
    }

    /// Mutable router access (e.g. to switch scatter mode).
    pub fn router_mut(&mut self) -> &mut Mongos {
        &mut self.router
    }

    /// The balancer.
    pub fn balancer(&self) -> &Balancer {
        &self.balancer
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.router.shards().len()
    }

    /// Shards a collection and creates the supporting shard-key index on
    /// every shard (MongoDB requires the index to exist).
    pub fn shard_collection(
        &self,
        name: &str,
        key: ShardKey,
        max_chunk_size: usize,
    ) -> Result<()> {
        use doclite_docstore::IndexDef;
        let def = match key.partitioning() {
            crate::shardkey::Partitioning::Range => {
                IndexDef::compound(key.fields().iter().map(String::as_str))
            }
            crate::shardkey::Partitioning::Hashed => IndexDef::hashed(key.fields()[0].clone()),
        };
        self.router.create_index(name, def)?;
        self.router
            .config()
            .shard_collection_with_chunk_size(name, key, 0, max_chunk_size);
        Ok(())
    }

    /// Runs a balancing round over all sharded collections.
    pub fn balance(&self) -> Result<usize> {
        Ok(self.balancer.balance_all(&self.router)?.len())
    }

    /// Total bytes stored across the cluster.
    pub fn data_size(&self) -> usize {
        self.router.shards().iter().map(|s| s.data_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;
    use doclite_docstore::Filter;

    #[test]
    fn end_to_end_shard_load_balance_query() {
        let cluster = ShardedCluster::new(3, "Dataset_test", NetworkModel::free());
        cluster
            .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
            .unwrap();
        for i in 0..500i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(30)})
                .unwrap();
        }
        let migrations = cluster.balance().unwrap();
        assert!(migrations > 0);

        // Every shard ends up holding data.
        let held: Vec<usize> = cluster
            .router()
            .shards()
            .iter()
            .map(|s| s.db().get_collection("facts").map(|c| c.len()).unwrap_or(0))
            .collect();
        assert!(held.iter().all(|&n| n > 0), "distribution: {held:?}");

        // Targeted query touches one shard; broadcast returns everything.
        let t = cluster
            .router()
            .explain_targeting("facts", &Filter::eq("k", 250i64));
        assert!(t.is_targeted());
        assert_eq!(cluster.router().find("facts", &Filter::True).len(), 500);
        assert!(cluster.data_size() > 0);
    }

    #[test]
    fn shard_key_index_created_on_all_shards() {
        let cluster = ShardedCluster::new(2, "d", NetworkModel::free());
        cluster
            .shard_collection("c", ShardKey::hashed("k"), 1024)
            .unwrap();
        for s in cluster.router().shards() {
            let defs = s.db().collection("c").index_defs();
            assert!(defs.iter().any(|d| d.name == "k_hashed"), "{defs:?}");
        }
    }
}
