//! Cluster assembly: shards + config server + router in one handle,
//! mirroring the thesis's deployment (Fig 3.1: three shards, one config
//! server, one AppServer/QueryRouter).

use crate::balancer::Balancer;
use crate::chunk::ShardId;
use crate::config::ConfigServer;
use crate::network::{NetworkModel, RetryPolicy};
use crate::replica::{ReadPreference, WriteConcern};
use crate::router::{DegradedReads, Mongos};
use crate::shard::Shard;
use crate::shardkey::ShardKey;
use doclite_docstore::wal::SyncPolicy;
use doclite_docstore::{Error, Result};
use std::path::PathBuf;
use std::sync::Arc;

/// Where and how durably the shards persist their data. Each shard's
/// members keep their WAL + checkpoints under
/// `<dir>/s<shard>/m<member>`.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory for the cluster's durability state.
    pub dir: PathBuf,
    /// Fsync cadence for every member WAL.
    pub sync: SyncPolicy,
}

/// Build-time knobs for a [`ShardedCluster`]. `Default` reproduces the
/// thesis deployment: three unreplicated shards, a free network, `w:1`
/// writes, primary reads, and fail-fast behaviour when a shard is
/// unreachable.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards (thesis: 3).
    pub n_shards: usize,
    /// Replica-set members per shard: 1 reproduces the thesis's
    /// unreplicated evaluation cluster, 3 the replicated production
    /// topology of its Fig 2.5.
    pub replicas_per_shard: usize,
    /// Database name shared by the shards.
    pub db_name: String,
    /// Router↔shard network model.
    pub network: NetworkModel,
    /// Write concern the router applies to every routed write.
    pub write_concern: WriteConcern,
    /// Member preference for routed reads.
    pub read_preference: ReadPreference,
    /// Retry/backoff policy for exchanges hit by injected faults.
    pub retry: RetryPolicy,
    /// What reads do when a whole shard stays unreachable.
    pub degraded_reads: DegradedReads,
    /// Crash durability for shard members (`None` = in-memory only, the
    /// thesis's evaluation setup).
    pub durability: Option<DurabilityConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_shards: 3,
            replicas_per_shard: 1,
            db_name: "Dataset".into(),
            network: NetworkModel::free(),
            write_concern: WriteConcern::default(),
            read_preference: ReadPreference::default(),
            retry: RetryPolicy::default(),
            degraded_reads: DegradedReads::default(),
            durability: None,
        }
    }
}

/// A fully wired sharded cluster.
pub struct ShardedCluster {
    router: Mongos,
    balancer: Balancer,
    /// The build-time configuration, kept so shards added online are
    /// constructed identically to the founding ones (replica count,
    /// database name, durability layout).
    cfg: ClusterConfig,
}

impl ShardedCluster {
    /// Builds a cluster of `n_shards` unreplicated shards sharing a
    /// database name, with the given network model between router and
    /// shards. The thesis's configuration is `n_shards = 3`.
    pub fn new(n_shards: usize, db_name: &str, network: NetworkModel) -> Self {
        Self::with_config(ClusterConfig {
            n_shards,
            db_name: db_name.to_owned(),
            network,
            ..ClusterConfig::default()
        })
    }

    /// Builds a cluster from a full [`ClusterConfig`] — replica-backed
    /// shards, write concern, read preference, retry policy and
    /// degraded-read behaviour included. Every shard is registered in
    /// the config server's shard registry.
    pub fn with_config(cfg: ClusterConfig) -> Self {
        let shards: Vec<Arc<Shard>> = (0..cfg.n_shards).map(|i| build_shard(&cfg, i)).collect();
        let config = Arc::new(ConfigServer::new());
        for s in &shards {
            config.register_shard(shard_entry(s));
        }
        let mut router = Mongos::new(shards, config, cfg.network);
        router.set_write_concern(cfg.write_concern);
        router.set_read_preference(cfg.read_preference);
        router.set_retry_policy(cfg.retry);
        router.set_degraded_reads(cfg.degraded_reads);
        ShardedCluster { router, balancer: Balancer::default(), cfg }
    }

    /// Adds a brand-new, empty shard to the running cluster and returns
    /// its id (monotonic — removed ids are never reused). The shard is
    /// built from the cluster's own config (same replica count and
    /// durability layout), given every sharded collection's shard-key
    /// index, registered with the config server, and handed to the
    /// router. It holds no chunks until the next balancing round (or
    /// [`ShardedCluster::balance`]) migrates some in.
    pub fn add_shard(&self) -> Result<ShardId> {
        let id = self.router.config().allocate_shard_id();
        let shard = build_shard(&self.cfg, id);
        // Pre-create the shard-key index for every sharded collection,
        // directly on the new shard: `Mongos::create_index` fans out to
        // the whole cluster, which is redundant here.
        for name in self.router.config().sharded_collections() {
            if let Some(meta) = self.router.config().meta(&name) {
                shard
                    .replica_set()
                    .create_index(&name, shard_key_index(&meta.key))?;
            }
        }
        self.router.config().register_shard(shard_entry(&shard));
        self.router.add_shard(shard);
        Ok(id)
    }

    /// Removes a shard from the running cluster: marks it draining
    /// (excluded as a balancing destination from that point), migrates
    /// every chunk off it with per-migration retries, verifies nothing
    /// is left, then deregisters it from the config server and the
    /// router. Returns the number of chunks drained.
    ///
    /// On a drain failure (destination unreachable past the retry
    /// budget) the shard is left *in* the cluster, still marked
    /// draining: traffic keeps flowing, the balancer keeps draining it
    /// opportunistically, and [`ShardedCluster::finish_drains`] can
    /// complete the removal once the cluster heals.
    pub fn remove_shard(&self, id: ShardId) -> Result<usize> {
        if !self.router.shards().iter().any(|s| s.id() == id) {
            return Err(Error::StaleRoute(format!("shard {id} is not part of the cluster")));
        }
        if id == 0 {
            return Err(Error::InvalidQuery(
                "cannot remove the primary shard (unsharded collections live there)".into(),
            ));
        }
        self.router.config().set_draining(id, true);
        let moved = self.balancer.drain_shard(&self.router, id)?;
        self.router
            .config()
            .remove_shard_entry(id)
            .map_err(Error::Unavailable)?;
        self.router.remove_shard(id)?;
        Ok(moved.len())
    }

    /// Completes any removal that was left mid-drain (e.g. because the
    /// destination was partitioned when [`ShardedCluster::remove_shard`]
    /// ran). Returns the ids of the shards removed this call.
    pub fn finish_drains(&self) -> Result<Vec<ShardId>> {
        let mut removed = Vec::new();
        let draining: Vec<ShardId> = self
            .router
            .config()
            .shard_entries()
            .iter()
            .filter(|e| e.draining)
            .map(|e| e.id)
            .collect();
        for id in draining {
            if !self.router.shards().iter().any(|s| s.id() == id) {
                continue; // already gone
            }
            self.balancer.drain_shard(&self.router, id)?;
            self.router
                .config()
                .remove_shard_entry(id)
                .map_err(Error::Unavailable)?;
            self.router.remove_shard(id)?;
            removed.push(id);
        }
        Ok(removed)
    }

    /// The router (all reads and writes go through it).
    pub fn router(&self) -> &Mongos {
        &self.router
    }

    /// Mutable router access (e.g. to switch scatter mode).
    pub fn router_mut(&mut self) -> &mut Mongos {
        &mut self.router
    }

    /// The balancer.
    pub fn balancer(&self) -> &Balancer {
        &self.balancer
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.router.shards().len()
    }

    /// Shards a collection and creates the supporting shard-key index on
    /// every shard (MongoDB requires the index to exist).
    pub fn shard_collection(
        &self,
        name: &str,
        key: ShardKey,
        max_chunk_size: usize,
    ) -> Result<()> {
        self.router.create_index(name, shard_key_index(&key))?;
        self.router
            .config()
            .shard_collection_with_chunk_size(name, key, 0, max_chunk_size);
        Ok(())
    }

    /// Runs a balancing round over all sharded collections.
    pub fn balance(&self) -> Result<usize> {
        Ok(self.balancer.balance_all(&self.router)?.len())
    }

    /// Total bytes stored across the cluster.
    pub fn data_size(&self) -> usize {
        self.router.shards().iter().map(|s| s.data_size()).sum()
    }
}

/// Builds one shard according to the cluster config (used both at
/// construction and for shards added online).
fn build_shard(cfg: &ClusterConfig, id: ShardId) -> Arc<Shard> {
    let shard = match &cfg.durability {
        // An unopenable durability directory is a
        // deployment error, not a runtime condition the
        // router could route around: fail loudly at build.
        Some(d) => Shard::with_durable_replicas(
            id,
            &cfg.db_name,
            cfg.replicas_per_shard,
            &d.dir.join(format!("s{id}")),
            d.sync,
        )
        .expect("shard durability directory must be usable"),
        None => Shard::with_replicas(id, &cfg.db_name, cfg.replicas_per_shard),
    };
    Arc::new(shard)
}

/// The config-server registration for a shard.
fn shard_entry(s: &Shard) -> crate::config::ShardEntry {
    crate::config::ShardEntry {
        id: s.id(),
        name: s.name().to_owned(),
        replica_set: s.replica_set().name().to_owned(),
        members: s.member_count(),
        draining: false,
    }
}

/// The supporting index MongoDB requires for a shard key.
fn shard_key_index(key: &ShardKey) -> doclite_docstore::IndexDef {
    use doclite_docstore::IndexDef;
    match key.partitioning() {
        crate::shardkey::Partitioning::Range => {
            IndexDef::compound(key.fields().iter().map(String::as_str))
        }
        crate::shardkey::Partitioning::Hashed => IndexDef::hashed(key.fields()[0].clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;
    use doclite_docstore::Filter;

    #[test]
    fn end_to_end_shard_load_balance_query() {
        let cluster = ShardedCluster::new(3, "Dataset_test", NetworkModel::free());
        cluster
            .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
            .unwrap();
        for i in 0..500i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(30)})
                .unwrap();
        }
        let migrations = cluster.balance().unwrap();
        assert!(migrations > 0);

        // Every shard ends up holding data.
        let held: Vec<usize> = cluster
            .router()
            .shards()
            .iter()
            .map(|s| s.db().get_collection("facts").map(|c| c.len()).unwrap_or(0))
            .collect();
        assert!(held.iter().all(|&n| n > 0), "distribution: {held:?}");

        // Targeted query touches one shard; broadcast returns everything.
        let t = cluster
            .router()
            .explain_targeting("facts", &Filter::eq("k", 250i64));
        assert!(t.is_targeted());
        assert_eq!(cluster.router().find("facts", &Filter::True).len(), 500);
        assert!(cluster.data_size() > 0);
    }

    #[test]
    fn online_add_shard_receives_chunks_and_serves_queries() {
        let cluster = ShardedCluster::new(2, "d_add", NetworkModel::free());
        cluster
            .shard_collection("facts", ShardKey::range(["k"]), 2 * 1024)
            .unwrap();
        for i in 0..400i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(40)})
                .unwrap();
        }
        cluster.balance().unwrap();

        let id = cluster.add_shard().unwrap();
        assert_eq!(id, 2);
        assert_eq!(cluster.n_shards(), 3);
        // The new shard has the shard-key index but no data yet.
        let new_shard = cluster
            .router()
            .shards()
            .into_iter()
            .find(|s| s.id() == id)
            .unwrap();
        assert!(new_shard
            .db()
            .collection("facts")
            .index_defs()
            .iter()
            .any(|d| d.name == "k_1"));

        cluster.balance().unwrap();
        let meta = cluster.router().config().meta("facts").unwrap();
        assert!(
            meta.chunks.iter().any(|c| c.shard == id),
            "balancer should migrate chunks onto the new shard"
        );
        assert_eq!(cluster.router().collection_len("facts"), 400);
        assert_eq!(cluster.router().find("facts", &Filter::eq("k", 250i64)).len(), 1);
    }

    #[test]
    fn remove_shard_drains_and_deregisters() {
        let cluster = ShardedCluster::new(3, "d_rm", NetworkModel::free());
        cluster
            .shard_collection("facts", ShardKey::range(["k"]), 2 * 1024)
            .unwrap();
        for i in 0..400i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"k" => i, "pad" => "y".repeat(40)})
                .unwrap();
        }
        cluster.balance().unwrap();
        let on_two_before = cluster.router().config().chunks_on_shard("facts", 2).len();
        assert!(on_two_before > 0, "balance should have placed chunks on shard 2");

        let drained = cluster.remove_shard(2).unwrap();
        assert_eq!(drained, on_two_before);
        assert_eq!(cluster.n_shards(), 2);
        assert!(cluster.router().config().chunks_on_shard("facts", 2).is_empty());
        assert!(!cluster
            .router()
            .config()
            .shard_entries()
            .iter()
            .any(|e| e.id == 2));
        // No data lost; routing still works.
        assert_eq!(cluster.router().collection_len("facts"), 400);
        for probe in [0i64, 199, 399] {
            assert_eq!(cluster.router().find("facts", &Filter::eq("k", probe)).len(), 1);
        }
        // The primary shard is not removable, nor is a removed shard.
        assert!(cluster.remove_shard(0).is_err());
        assert!(cluster.remove_shard(2).is_err());
    }

    #[test]
    fn add_after_remove_never_reuses_ids() {
        let cluster = ShardedCluster::new(2, "d_ids", NetworkModel::free());
        let a = cluster.add_shard().unwrap();
        assert_eq!(a, 2);
        cluster.remove_shard(a).unwrap();
        let b = cluster.add_shard().unwrap();
        assert_eq!(b, 3, "removed id must not be recycled");
        assert_eq!(cluster.n_shards(), 3);
    }

    #[test]
    fn shard_key_index_created_on_all_shards() {
        let cluster = ShardedCluster::new(2, "d", NetworkModel::free());
        cluster
            .shard_collection("c", ShardKey::hashed("k"), 1024)
            .unwrap();
        for s in cluster.router().shards() {
            let defs = s.db().collection("c").index_defs();
            assert!(defs.iter().any(|d| d.name == "k_hashed"), "{defs:?}");
        }
    }
}
