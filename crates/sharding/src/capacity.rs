//! Cluster capacity planning: the shard-count calculations of thesis
//! Section 2.1.3.2, as code.
//!
//! "The number of shards in a cluster can be calculated based on the
//! following factors" — disk storage, RAM vs. working set, disk
//! throughput (IOPS), and operations per second with a 0.7 sharding
//! overhead. The thesis sizes its own cluster with the disk and RAM
//! rules; [`plan_cluster`] reproduces that decision procedure, including
//! the worked examples' numbers.

/// Bytes helper: 1 GiB.
pub const GIB: u64 = 1 << 30;
/// Bytes helper: 1 TiB.
pub const TIB: u64 = 1 << 40;

/// Sizing inputs for one factor-based calculation.
#[derive(Clone, Copy, Debug)]
pub struct ShardingFactors {
    /// Total application data volume in bytes.
    pub data_bytes: u64,
    /// Disk capacity of one shard server in bytes.
    pub disk_per_shard: u64,
    /// Working set (indexes + hot documents) in bytes.
    pub working_set_bytes: u64,
    /// RAM of one shard server in bytes.
    pub ram_per_shard: u64,
    /// RAM the OS and other processes consume on each server
    /// (the thesis budgets 2 GB).
    pub ram_overhead: u64,
    /// Required aggregate disk throughput, IOPS.
    pub required_iops: u64,
    /// IOPS one shard's disk delivers.
    pub iops_per_shard: u64,
    /// Required operations per second.
    pub required_ops: u64,
    /// Single-server operations per second.
    pub ops_per_shard: u64,
}

/// The sharding efficiency factor of the thesis's OPS formula:
/// `G = N * S * 0.7`.
pub const SHARDING_OVERHEAD: f64 = 0.7;

fn div_ceil_u64(a: u64, b: u64) -> u64 {
    assert!(b > 0, "divisor must be positive");
    a.div_ceil(b)
}

/// Factor i — disk storage: shards so that total disk ≥ data volume.
pub fn shards_for_disk(data_bytes: u64, disk_per_shard: u64) -> u64 {
    div_ceil_u64(data_bytes, disk_per_shard).max(1)
}

/// Factor ii — RAM: shards so that usable RAM covers the working set.
/// Usable RAM per shard is total RAM minus the OS/application overhead.
pub fn shards_for_ram(working_set_bytes: u64, ram_per_shard: u64, ram_overhead: u64) -> u64 {
    let usable = ram_per_shard.saturating_sub(ram_overhead);
    assert!(usable > 0, "no RAM left after overhead");
    div_ceil_u64(working_set_bytes, usable).max(1)
}

/// Factor iii — disk throughput: shards so that total IOPS suffice.
pub fn shards_for_iops(required_iops: u64, iops_per_shard: u64) -> u64 {
    div_ceil_u64(required_iops, iops_per_shard).max(1)
}

/// Factor iv — operations per second with the 0.7 sharding overhead:
/// `N = G / (S * 0.7)`.
pub fn shards_for_ops(required_ops: u64, ops_per_shard: u64) -> u64 {
    assert!(ops_per_shard > 0);
    ((required_ops as f64) / (ops_per_shard as f64 * SHARDING_OVERHEAD)).ceil() as u64
}

/// A capacity plan: per-factor requirements and the binding recommendation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterPlan {
    pub by_disk: u64,
    pub by_ram: u64,
    pub by_iops: u64,
    pub by_ops: u64,
    /// The recommendation: the maximum across factors (every constraint
    /// must hold).
    pub shards: u64,
}

/// Evaluates all four factors.
pub fn plan_cluster(f: &ShardingFactors) -> ClusterPlan {
    let by_disk = shards_for_disk(f.data_bytes, f.disk_per_shard);
    let by_ram = shards_for_ram(f.working_set_bytes, f.ram_per_shard, f.ram_overhead);
    let by_iops = shards_for_iops(f.required_iops, f.iops_per_shard);
    let by_ops = shards_for_ops(f.required_ops, f.ops_per_shard);
    let shards = by_disk.max(by_ram).max(by_iops).max(by_ops);
    ClusterPlan { by_disk, by_ram, by_iops, by_ops, shards }
}

/// The thesis's own sizing (Section 3.3): a 9.94 GB dataset on servers
/// with 8 GB RAM and 2 GB overhead needs ⌈9.94/6⌉ = 2 shards by RAM; the
/// thesis deploys 3 "to accommodate not only the data but also indexes
/// and the intermediate and final query collections".
pub fn thesis_cluster_shards(dataset_bytes: u64) -> u64 {
    let by_ram = shards_for_ram(dataset_bytes, 8 * GIB, 2 * GIB);
    by_ram + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_example_from_section_2_1_3_2() {
        // "Storage size = 1.5TB, shard disk storage = 256GB → ~6 shards"
        assert_eq!(shards_for_disk(3 * TIB / 2, 256 * GIB), 6);
    }

    #[test]
    fn ram_example_from_section_2_1_3_2() {
        // "Working set = 200GB, server RAM = 64GB → ~4 shards"
        // (the thesis's example ignores overhead).
        assert_eq!(shards_for_ram(200 * GIB, 64 * GIB, 0), 4);
    }

    #[test]
    fn iops_example_from_section_2_1_3_2() {
        // "Required IOPS = 12000, shard disk IOPS = 5000 → ~3 shards"
        assert_eq!(shards_for_iops(12_000, 5_000), 3);
    }

    #[test]
    fn ops_formula_uses_0_7_overhead() {
        // N = G / (S * 0.7): G = 7000, S = 1000 → 10 shards.
        assert_eq!(shards_for_ops(7_000, 1_000), 10);
        // Sanity: without overhead it would be 7.
        assert_eq!(div_ceil_u64(7_000, 1_000), 7);
    }

    #[test]
    fn thesis_sizes_its_own_cluster_at_three_shards() {
        // 9.94 GB dataset, 8 GB servers, 2 GB overhead → 2 by RAM,
        // 3 deployed.
        let bytes = (9.94 * GIB as f64) as u64;
        assert_eq!(shards_for_ram(bytes, 8 * GIB, 2 * GIB), 2);
        assert_eq!(thesis_cluster_shards(bytes), 3);
    }

    #[test]
    fn plan_takes_binding_constraint() {
        let plan = plan_cluster(&ShardingFactors {
            data_bytes: 3 * TIB / 2,
            disk_per_shard: 256 * GIB,
            working_set_bytes: 200 * GIB,
            ram_per_shard: 64 * GIB,
            ram_overhead: 0,
            required_iops: 12_000,
            iops_per_shard: 5_000,
            required_ops: 7_000,
            ops_per_shard: 1_000,
        });
        assert_eq!(plan.by_disk, 6);
        assert_eq!(plan.by_ram, 4);
        assert_eq!(plan.by_iops, 3);
        assert_eq!(plan.by_ops, 10);
        assert_eq!(plan.shards, 10);
    }

    #[test]
    fn minimums_are_one_shard() {
        assert_eq!(shards_for_disk(1, GIB), 1);
        assert_eq!(shards_for_ram(1, GIB, 0), 1);
        assert_eq!(shards_for_iops(1, 1000), 1);
    }

    #[test]
    #[should_panic(expected = "no RAM left")]
    fn overhead_exceeding_ram_panics() {
        let _ = shards_for_ram(GIB, GIB, 2 * GIB);
    }
}
