//! A shard: one `mongod` instance holding a slice of the data
//! (thesis Section 2.1.3.1 component i).

use crate::chunk::ShardId;
use doclite_docstore::Database;

/// A shard wraps a full document-store engine, exactly as each cluster
/// node in the paper ran its own `mongod`.
pub struct Shard {
    id: ShardId,
    name: String,
    db: Database,
}

impl Shard {
    /// Creates a shard with a conventional name (`Shard1`, `Shard2`, … —
    /// the node names of thesis Table 3.4).
    pub fn new(id: ShardId, db_name: &str) -> Self {
        Shard { id, name: format!("Shard{}", id + 1), db: Database::new(db_name) }
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The shard's node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard-local database engine.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Bytes of data stored on this shard.
    pub fn data_size(&self) -> usize {
        self.db.data_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    #[test]
    fn shard_names_follow_thesis_convention() {
        assert_eq!(Shard::new(0, "d").name(), "Shard1");
        assert_eq!(Shard::new(2, "d").name(), "Shard3");
    }

    #[test]
    fn shard_wraps_engine() {
        let s = Shard::new(0, "d");
        s.db().collection("c").insert_one(doc! {"a" => 1i64}).unwrap();
        assert_eq!(s.db().get_collection("c").unwrap().len(), 1);
        assert!(s.data_size() > 0);
    }
}
