//! A shard: one cluster node holding a slice of the data (thesis
//! Section 2.1.3.1 component i). A shard is "either a single mongod
//! instance or a replica set" — here every shard is backed by a
//! [`ReplicaSet`], with a single-member set standing in for the bare
//! `mongod` of the thesis's evaluation cluster and multi-member sets
//! reproducing Fig 2.5's replicated production topology.

use crate::chunk::ShardId;
use crate::replica::{ReadPreference, ReplicaSet};
use doclite_docstore::wal::SyncPolicy;
use doclite_docstore::{Database, Result};
use std::path::Path;
use std::sync::Arc;

/// A shard wraps a replica set of full document-store engines, exactly
/// as each cluster node in the paper ran its own `mongod`.
pub struct Shard {
    id: ShardId,
    name: String,
    rs: ReplicaSet,
}

impl Shard {
    /// Creates a single-member shard with a conventional name (`Shard1`,
    /// `Shard2`, … — the node names of thesis Table 3.4).
    pub fn new(id: ShardId, db_name: &str) -> Self {
        Self::with_replicas(id, db_name, 1)
    }

    /// Creates a shard backed by a `members`-strong replica set
    /// (`members ≥ 1`). Member databases are named
    /// `{db_name}_s{id}_m{member}`.
    pub fn with_replicas(id: ShardId, db_name: &str, members: usize) -> Self {
        Shard {
            id,
            name: format!("Shard{}", id + 1),
            rs: ReplicaSet::new(format!("{db_name}_s{id}"), members),
        }
    }

    /// Like [`Shard::with_replicas`], but every member is durable: WAL
    /// and checkpoints live under `<base_dir>/m<member>`, so a crashed
    /// member restarts with all of its acknowledged writes.
    pub fn with_durable_replicas(
        id: ShardId,
        db_name: &str,
        members: usize,
        base_dir: &Path,
        sync: SyncPolicy,
    ) -> Result<Self> {
        Ok(Shard {
            id,
            name: format!("Shard{}", id + 1),
            rs: ReplicaSet::new_durable(format!("{db_name}_s{id}"), members, base_dir, sync)?,
        })
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The shard's node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing replica set.
    pub fn replica_set(&self) -> &ReplicaSet {
        &self.rs
    }

    /// The shard-local database engine: the replica-set primary's copy.
    /// This is the inspection handle (balancer bookkeeping, tests,
    /// data-size reports); routed traffic goes through
    /// [`Shard::replica_set`] or [`Shard::read_db`] so replication and
    /// failover apply.
    pub fn db(&self) -> Arc<Database> {
        self.rs.db()
    }

    /// The database serving reads under `pref`, with failover to any
    /// healthy member; errors when every member is down.
    pub fn read_db(&self, pref: ReadPreference) -> Result<Arc<Database>> {
        self.rs.read_db(pref)
    }

    /// Number of replica-set members.
    pub fn member_count(&self) -> usize {
        self.rs.member_count()
    }

    /// Bytes of data stored on this shard (primary copy; replicas hold
    /// the same data again).
    pub fn data_size(&self) -> usize {
        self.db().data_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::WriteConcern;
    use doclite_bson::doc;

    #[test]
    fn shard_names_follow_thesis_convention() {
        assert_eq!(Shard::new(0, "d").name(), "Shard1");
        assert_eq!(Shard::new(2, "d").name(), "Shard3");
    }

    #[test]
    fn shard_wraps_engine() {
        let s = Shard::new(0, "d");
        s.db().collection("c").insert_one(doc! {"a" => 1i64}).unwrap();
        assert_eq!(s.db().get_collection("c").unwrap().len(), 1);
        assert!(s.data_size() > 0);
    }

    #[test]
    fn replicated_shard_serves_reads_after_primary_loss() {
        let s = Shard::with_replicas(0, "d", 3);
        s.replica_set()
            .insert_one("c", doc! {"a" => 1i64}, WriteConcern::Majority)
            .unwrap();
        s.replica_set().fail_member(0);
        let db = s.read_db(ReadPreference::Primary).unwrap();
        assert_eq!(db.get_collection("c").unwrap().len(), 1);
    }
}
