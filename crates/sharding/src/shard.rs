//! A shard: one cluster node holding a slice of the data (thesis
//! Section 2.1.3.1 component i). A shard is "either a single mongod
//! instance or a replica set" — here every shard is backed by a
//! [`ReplicaSet`], with a single-member set standing in for the bare
//! `mongod` of the thesis's evaluation cluster and multi-member sets
//! reproducing Fig 2.5's replicated production topology.

use crate::chunk::{KeyBound, ShardId};
use doclite_docstore::CompoundKey;
use crate::replica::{ReadPreference, ReplicaSet};
use doclite_docstore::wal::SyncPolicy;
use doclite_docstore::{Database, Error, Result};
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// A shard wraps a replica set of full document-store engines, exactly
/// as each cluster node in the paper ran its own `mongod`.
pub struct Shard {
    id: ShardId,
    name: String,
    rs: ReplicaSet,
    /// Key ranges this shard has *surrendered* per collection: the
    /// migration critical section. A range enters the table when a
    /// chunk starts moving away and leaves it if a chunk moves back
    /// (interval subtraction). The table is negative — absent
    /// collection = owns everything — so unsharded traffic never
    /// touches it. Writes addressed to a surrendered range fail with
    /// [`Error::StaleRoute`] instead of landing on a shard the router's
    /// (stale) view still thinks owns them.
    surrendered: RwLock<HashMap<String, Vec<(KeyBound, KeyBound)>>>,
}

impl Shard {
    /// Creates a single-member shard with a conventional name (`Shard1`,
    /// `Shard2`, … — the node names of thesis Table 3.4).
    pub fn new(id: ShardId, db_name: &str) -> Self {
        Self::with_replicas(id, db_name, 1)
    }

    /// Creates a shard backed by a `members`-strong replica set
    /// (`members ≥ 1`). Member databases are named
    /// `{db_name}_s{id}_m{member}`.
    pub fn with_replicas(id: ShardId, db_name: &str, members: usize) -> Self {
        Shard {
            id,
            name: format!("Shard{}", id + 1),
            rs: ReplicaSet::new(format!("{db_name}_s{id}"), members),
            surrendered: RwLock::new(HashMap::new()),
        }
    }

    /// Like [`Shard::with_replicas`], but every member is durable: WAL
    /// and checkpoints live under `<base_dir>/m<member>`, so a crashed
    /// member restarts with all of its acknowledged writes.
    pub fn with_durable_replicas(
        id: ShardId,
        db_name: &str,
        members: usize,
        base_dir: &Path,
        sync: SyncPolicy,
    ) -> Result<Self> {
        Ok(Shard {
            id,
            name: format!("Shard{}", id + 1),
            rs: ReplicaSet::new_durable(format!("{db_name}_s{id}"), members, base_dir, sync)?,
            surrendered: RwLock::new(HashMap::new()),
        })
    }

    /// The shard id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The shard's node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing replica set.
    pub fn replica_set(&self) -> &ReplicaSet {
        &self.rs
    }

    /// The shard-local database engine: the replica-set primary's copy.
    /// This is the inspection handle (balancer bookkeeping, tests,
    /// data-size reports); routed traffic goes through
    /// [`Shard::replica_set`] or [`Shard::read_db`] so replication and
    /// failover apply.
    pub fn db(&self) -> Arc<Database> {
        self.rs.db()
    }

    /// The database serving reads under `pref`, with failover to any
    /// healthy member; errors when every member is down.
    pub fn read_db(&self, pref: ReadPreference) -> Result<Arc<Database>> {
        self.rs.read_db(pref)
    }

    /// Number of replica-set members.
    pub fn member_count(&self) -> usize {
        self.rs.member_count()
    }

    /// Bytes of data stored on this shard (primary copy; replicas hold
    /// the same data again).
    pub fn data_size(&self) -> usize {
        self.db().data_size()
    }

    /// Marks `[min, max)` of `collection` as no longer owned: the first
    /// step of a chunk migration. Taken under the write lock, so it
    /// strictly orders against in-flight [`Shard::owned_write`] calls —
    /// once this returns, every write the migration's source scan can
    /// miss is already applied, and every later write bounces with
    /// [`Error::StaleRoute`].
    pub fn surrender_range(&self, collection: &str, min: KeyBound, max: KeyBound) {
        self.surrendered
            .write()
            .entry(collection.to_string())
            .or_default()
            .push((min, max));
    }

    /// Returns `[min, max)` of `collection` to this shard's ownership
    /// (a chunk migrated back in). Interval-subtracts the range from
    /// every surrendered entry, splitting entries it punches through.
    pub fn reclaim_range(&self, collection: &str, min: &KeyBound, max: &KeyBound) {
        let mut table = self.surrendered.write();
        let Some(ranges) = table.get_mut(collection) else { return };
        let mut kept = Vec::with_capacity(ranges.len());
        for (a, b) in ranges.drain(..) {
            // No overlap with [min, max): keep whole.
            if b.cmp_bound(min) != Ordering::Greater || a.cmp_bound(max) != Ordering::Less {
                kept.push((a, b));
                continue;
            }
            if a.cmp_bound(min) == Ordering::Less {
                kept.push((a, min.clone()));
            }
            if max.cmp_bound(&b) == Ordering::Less {
                kept.push((max.clone(), b));
            }
        }
        if kept.is_empty() {
            table.remove(collection);
        } else {
            *ranges = kept;
        }
    }

    /// True if this shard still owns `key` in `collection` (i.e. the
    /// key lies in no surrendered range).
    pub fn owns(&self, collection: &str, key: &CompoundKey) -> bool {
        let table = self.surrendered.read();
        match table.get(collection) {
            None => true,
            Some(ranges) => !ranges.iter().any(|(min, max)| {
                min.cmp_key(key) != Ordering::Greater && max.cmp_key(key) == Ordering::Greater
            }),
        }
    }

    /// Runs a key-addressed write against this shard *while holding the
    /// ownership read lock*, so the write cannot interleave with a
    /// migration's surrender-then-scan: either it lands before the
    /// surrender (and the scan copies it) or it observes the surrender
    /// and bounces with [`Error::StaleRoute`] without running `op`.
    pub fn owned_write<T>(
        &self,
        collection: &str,
        key: &CompoundKey,
        op: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let table = self.surrendered.read();
        let stale = table.get(collection).is_some_and(|ranges| {
            ranges.iter().any(|(min, max)| {
                min.cmp_key(key) != Ordering::Greater && max.cmp_key(key) == Ordering::Greater
            })
        });
        if stale {
            return Err(Error::StaleRoute(format!(
                "{} no longer owns the targeted range of '{collection}'",
                self.name
            )));
        }
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::WriteConcern;
    use doclite_bson::doc;

    #[test]
    fn shard_names_follow_thesis_convention() {
        assert_eq!(Shard::new(0, "d").name(), "Shard1");
        assert_eq!(Shard::new(2, "d").name(), "Shard3");
    }

    #[test]
    fn shard_wraps_engine() {
        let s = Shard::new(0, "d");
        s.db().collection("c").insert_one(doc! {"a" => 1i64}).unwrap();
        assert_eq!(s.db().get_collection("c").unwrap().len(), 1);
        assert!(s.data_size() > 0);
    }

    #[test]
    fn ownership_surrender_reclaim_roundtrip() {
        use doclite_bson::Value;
        let key = |v: i64| CompoundKey::from_values(vec![Value::Int64(v)]);
        let bound = |v: i64| KeyBound::Key(key(v));
        let s = Shard::new(0, "d");
        // Default: owns everything, and owned_write runs the op.
        assert!(s.owns("c", &key(5)));
        assert_eq!(s.owned_write("c", &key(5), || Ok(1)).unwrap(), 1);

        s.surrender_range("c", bound(10), bound(20));
        assert!(s.owns("c", &key(9)));
        assert!(!s.owns("c", &key(10)));
        assert!(!s.owns("c", &key(19)));
        assert!(s.owns("c", &key(20)));
        // Other collections are unaffected.
        assert!(s.owns("other", &key(15)));
        // A write into the surrendered range bounces without running.
        let err = s
            .owned_write("c", &key(15), || -> Result<()> { panic!("op must not run") })
            .unwrap_err();
        assert!(matches!(err, Error::StaleRoute(_)));

        // Reclaiming the middle splits the surrendered range.
        s.reclaim_range("c", &bound(13), &bound(16));
        assert!(!s.owns("c", &key(12)));
        assert!(s.owns("c", &key(14)));
        assert!(!s.owns("c", &key(17)));
        // Reclaiming supersets clears the table entirely.
        s.reclaim_range("c", &KeyBound::MinKey, &KeyBound::MaxKey);
        assert!(s.owns("c", &key(12)));
        assert!(s.surrendered.read().is_empty());
    }

    #[test]
    fn replicated_shard_serves_reads_after_primary_loss() {
        let s = Shard::with_replicas(0, "d", 3);
        s.replica_set()
            .insert_one("c", doc! {"a" => 1i64}, WriteConcern::Majority)
            .unwrap();
        s.replica_set().fail_member(0);
        let db = s.read_db(ReadPreference::Primary).unwrap();
        assert_eq!(db.get_collection("c").unwrap().len(), 1);
    }
}
