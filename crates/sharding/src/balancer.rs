//! The balancer: evens chunk counts across shards so "resources such as
//! RAM and CPU can be utilized effectively" (thesis Section 2.1.3.2).

use crate::chunk::ShardId;
use crate::router::Mongos;
use doclite_docstore::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};

/// A migration performed by one balancing round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Migration {
    pub collection: String,
    pub chunk_index: usize,
    pub from: ShardId,
    pub to: ShardId,
    pub docs_moved: usize,
}

/// Chunk-count balancer. A round repeatedly moves one chunk from the
/// most-loaded shard to the least-loaded shard until the spread is within
/// `threshold` (MongoDB's migration threshold is 2 for small clusters;
/// the default here is 1 so test-size clusters converge tightly).
#[derive(Clone, Copy, Debug)]
pub struct Balancer {
    /// Maximum tolerated difference in chunk counts between the heaviest
    /// and lightest shard.
    pub threshold: usize,
    /// Safety valve on migrations per round.
    pub max_migrations: usize,
}

impl Default for Balancer {
    fn default() -> Self {
        Balancer { threshold: 1, max_migrations: 1024 }
    }
}

impl Balancer {
    /// Balances one collection, returning the migrations performed.
    ///
    /// Chunk counts are kept per shard *id* over the router's live
    /// shard set — identity-based, so the balancer keeps working after
    /// shards join or leave (ids are monotonic and sparse once a shard
    /// has been removed; a positional `vec[id]` would panic). Draining
    /// shards are prioritized as sources and never chosen as
    /// destinations, so a plain balancing round makes drain progress
    /// too.
    pub fn balance_collection(
        &self,
        router: &Mongos,
        collection: &str,
    ) -> Result<Vec<Migration>> {
        let mut migrations = Vec::new();
        for _ in 0..self.max_migrations {
            let Some(meta) = router.config().meta(collection) else { break };
            let live: Vec<ShardId> = router.shards().iter().map(|s| s.id()).collect();
            let draining: BTreeSet<ShardId> = router
                .config()
                .shard_entries()
                .iter()
                .filter(|e| e.draining)
                .map(|e| e.id)
                .collect();
            // Count chunks per live shard, including empty ones.
            let mut counts: BTreeMap<ShardId, usize> =
                live.iter().map(|&id| (id, 0)).collect();
            for c in &meta.chunks {
                *counts.entry(c.shard).or_insert(0) += 1;
            }
            let Some((&to, &min_n)) = counts
                .iter()
                .filter(|(id, _)| !draining.contains(id) && live.contains(id))
                .min_by_key(|(id, n)| (**n, **id))
            else {
                break; // no destination available (everything draining)
            };
            // Source: the fullest draining shard if any still holds
            // chunks; otherwise the fullest non-draining shard, subject
            // to the spread threshold.
            let drain_source = counts
                .iter()
                .filter(|(id, n)| draining.contains(id) && **n > 0)
                .max_by_key(|(id, n)| (**n, **id))
                .map(|(&id, _)| id);
            let from = match drain_source {
                Some(id) => id,
                None => {
                    let (&max_shard, &max_n) = counts
                        .iter()
                        .filter(|(id, _)| !draining.contains(id))
                        .max_by_key(|(id, n)| (**n, **id))
                        .expect("destination exists, so a source does too");
                    if max_n.saturating_sub(min_n) <= self.threshold {
                        break;
                    }
                    max_shard
                }
            };
            if from == to {
                break;
            }
            // Move the first movable chunk off the source. A drain must
            // empty the shard completely, so it moves jumbo chunks too;
            // plain balancing leaves them pinned.
            let moving_for_drain = drain_source.is_some();
            let Some(chunk_index) = meta
                .chunks
                .iter()
                .position(|c| c.shard == from && (moving_for_drain || !c.jumbo))
            else {
                break; // only jumbo chunks left; nothing movable
            };
            let docs_moved = router.move_chunk(collection, chunk_index, to)?;
            migrations.push(Migration {
                collection: collection.to_owned(),
                chunk_index,
                from,
                to,
                docs_moved,
            });
        }
        Ok(migrations)
    }

    /// Balances every sharded collection.
    pub fn balance_all(&self, router: &Mongos) -> Result<Vec<Migration>> {
        let mut all = Vec::new();
        for name in router.config().sharded_collections() {
            all.extend(self.balance_collection(router, &name)?);
        }
        Ok(all)
    }

    /// Moves every chunk off `shard`, retrying each migration under the
    /// router's retry policy (a drain runs while traffic — and fault
    /// injection — is live; one bounced `move_chunk` must not wedge the
    /// whole removal). Returns the migrations performed; errors only
    /// after a migration exhausts its retries.
    pub fn drain_shard(&self, router: &Mongos, shard: ShardId) -> Result<Vec<Migration>> {
        let retry = router.retry_policy();
        let mut migrations = Vec::new();
        for collection in router.config().sharded_collections() {
            loop {
                if migrations.len() >= self.max_migrations {
                    return Err(Error::Unavailable(format!(
                        "drain of shard {shard} exceeded {} migrations",
                        self.max_migrations
                    )));
                }
                let Some(meta) = router.config().meta(&collection) else { break };
                let Some(chunk_index) = meta.chunks.iter().position(|c| c.shard == shard)
                else {
                    break; // collection fully drained
                };
                let draining: BTreeSet<ShardId> = router
                    .config()
                    .shard_entries()
                    .iter()
                    .filter(|e| e.draining)
                    .map(|e| e.id)
                    .collect();
                // Lightest live, non-draining destination.
                let live = router.shards();
                let mut counts: BTreeMap<ShardId, usize> = live
                    .iter()
                    .map(|s| s.id())
                    .filter(|id| *id != shard && !draining.contains(id))
                    .map(|id| (id, 0))
                    .collect();
                if counts.is_empty() {
                    return Err(Error::Unavailable(format!(
                        "no destination shard available to drain shard {shard}"
                    )));
                }
                for c in &meta.chunks {
                    if let Some(n) = counts.get_mut(&c.shard) {
                        *n += 1;
                    }
                }
                let (&to, _) = counts
                    .iter()
                    .min_by_key(|(id, n)| (**n, **id))
                    .expect("checked non-empty");
                let mut attempt = 0u32;
                let docs_moved = loop {
                    match router.move_chunk(&collection, chunk_index, to) {
                        Ok(n) => break n,
                        Err(e) => {
                            if attempt >= retry.max_retries {
                                return Err(e);
                            }
                            attempt += 1;
                            let backoff =
                                retry.jittered_backoff(attempt, shard as u64 + attempt as u64);
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                        }
                    }
                };
                migrations.push(Migration {
                    collection: collection.clone(),
                    chunk_index,
                    from: shard,
                    to,
                    docs_moved,
                });
            }
        }
        Ok(migrations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigServer;
    use crate::network::NetworkModel;
    use crate::shard::Shard;
    use crate::shardkey::ShardKey;
    use doclite_bson::doc;
    use std::sync::Arc;

    fn loaded_router(n_shards: usize, docs: i64) -> Mongos {
        let shards: Vec<Arc<Shard>> = (0..n_shards)
            .map(|i| Arc::new(Shard::new(i, "test")))
            .collect();
        let r = Mongos::new(shards, Arc::new(ConfigServer::new()), NetworkModel::free());
        r.config().shard_collection_with_chunk_size(
            "facts",
            ShardKey::range(["k"]),
            0,
            2 * 1024,
        );
        for i in 0..docs {
            r.insert_one("facts", doc! {"k" => i, "pad" => "p".repeat(40)})
                .unwrap();
        }
        r
    }

    #[test]
    fn balancing_spreads_chunks_within_threshold() {
        let r = loaded_router(3, 600);
        let before = r.config().meta("facts").unwrap();
        assert!(before.chunks.len() >= 3, "need several chunks to balance");
        // All chunks start on shard 0.
        assert!(before.chunks.iter().all(|c| c.shard == 0));

        let migrations = Balancer::default().balance_collection(&r, "facts").unwrap();
        assert!(!migrations.is_empty());

        let after = r.config().meta("facts").unwrap();
        after.check_invariants().unwrap();
        let counts = after.chunks_per_shard();
        let max = counts.values().max().unwrap();
        let min_over_all_shards = (0..3)
            .map(|s| counts.get(&s).copied().unwrap_or(0))
            .min()
            .unwrap();
        assert!(max - min_over_all_shards <= 1);
        // No documents lost.
        assert_eq!(r.collection_len("facts"), 600);
    }

    #[test]
    fn queries_remain_correct_after_balancing() {
        let r = loaded_router(3, 300);
        Balancer::default().balance_collection(&r, "facts").unwrap();
        for probe in [0i64, 50, 299] {
            let hits = r.find("facts", &doclite_docstore::Filter::eq("k", probe));
            assert_eq!(hits.len(), 1, "k={probe}");
        }
    }

    #[test]
    fn balanced_cluster_is_a_fixpoint() {
        let r = loaded_router(2, 400);
        let b = Balancer::default();
        b.balance_collection(&r, "facts").unwrap();
        let again = b.balance_collection(&r, "facts").unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn balance_all_covers_every_sharded_collection() {
        let r = loaded_router(2, 200);
        r.config().shard_collection_with_chunk_size(
            "other",
            ShardKey::range(["k"]),
            0,
            1024,
        );
        for i in 0..100i64 {
            r.insert_one("other", doc! {"k" => i, "pad" => "q".repeat(40)})
                .unwrap();
        }
        let migrations = Balancer::default().balance_all(&r).unwrap();
        let colls: std::collections::HashSet<_> =
            migrations.iter().map(|m| m.collection.as_str()).collect();
        assert!(colls.contains("facts"));
        assert!(colls.contains("other"));
    }
}
