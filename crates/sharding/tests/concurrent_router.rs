//! Multi-threaded router regressions: chunk accounting under concurrent
//! splits, exactly-once warning drains, and lossless NetStats counters
//! when many worker threads share one `Mongos`.

use doclite_bson::doc;
use doclite_docstore::Filter;
use doclite_sharding::{
    check_content, ClusterConfig, DegradedReads, NetworkModel, RetryPolicy, ShardKey,
    ShardedCluster,
};
use std::sync::atomic::{AtomicUsize, Ordering};

fn cluster(n_shards: usize) -> ShardedCluster {
    ShardedCluster::with_config(ClusterConfig {
        n_shards,
        db_name: "conc".into(),
        network: NetworkModel::free(),
        ..ClusterConfig::default()
    })
}

/// 8 inserter threads race against live chunk splits (tiny threshold):
/// the chunk map's byte/doc totals must account for every insert exactly,
/// and the map invariants must hold. Regression for the stale-index
/// write in `insert_routed` (a concurrent split shifted chunk indices
/// between the routing snapshot and the accounting update, crediting the
/// wrong chunk).
#[test]
fn chunk_accounting_is_exact_under_concurrent_splits() {
    const THREADS: i64 = 8;
    const DOCS: i64 = 250;
    let cluster = cluster(3);
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    let router = cluster.router();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..DOCS {
                    router
                        .insert_one(
                            "facts",
                            doc! {"k" => t * DOCS + i, "pad" => "y".repeat(40)},
                        )
                        .unwrap();
                }
            });
        }
    });

    let total = (THREADS * DOCS) as usize;
    assert_eq!(router.count("facts", &Filter::True), total);

    let meta = router.config().meta("facts").unwrap();
    meta.check_invariants().unwrap();
    assert!(meta.chunks.len() > 1, "splits must have happened");
    let docs: usize = meta.chunks.iter().map(|c| c.docs).sum();
    assert_eq!(docs, total, "chunk doc accounting drifted");

    // Every chunk's accounting must track the shard-resident reality,
    // not just the totals. Split-time apportioning estimates the
    // left/right division from a key snapshot (as MongoDB's split
    // vectors do), so inserts racing a split can shift a few documents
    // across one boundary — but the stale-index bug this guards against
    // credits entire runs of inserts to the wrong chunk, which blows
    // far past this tolerance.
    for (i, chunk) in meta.chunks.iter().enumerate() {
        let mut resident = 0usize;
        let coll = router
            .shard(chunk.shard)
            .unwrap()
            .db()
            .get_collection("facts")
            .unwrap();
        coll.for_each(|d| {
            if chunk.contains(&meta.key.extract(d)) {
                resident += 1;
            }
        });
        let drift = chunk.docs.abs_diff(resident);
        assert!(
            drift <= 4,
            "chunk {i} claims {} docs but holds {resident} (drift {drift})",
            chunk.docs
        );
    }
}

/// Chunk-migration atomicity: 8 writer threads pour seeded,
/// re-derivable documents into one hot chunk while a mover thread
/// bounces that chunk between the two shards. Writers ride the
/// stale-route retry protocol (elastic policy: jittered backoff plus a
/// per-op deadline), so once everyone joins, every ticket must exist
/// exactly once with exactly its derived bytes — a missing or doubled
/// document means the migration critical section leaked a racing write.
#[test]
fn chunk_migration_is_atomic_under_concurrent_inserts() {
    const WRITERS: i64 = 8;
    const DOCS: i64 = 150;
    const MOVES: usize = 30;
    let derive = |id: i64| doc! {"_id" => id, "t" => id, "pad" => "m".repeat(32)};
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 2,
        db_name: "atomic".into(),
        network: NetworkModel::free(),
        retry: RetryPolicy::elastic(),
        ..ClusterConfig::default()
    });
    // One huge chunk: every insert and every migration fight over it.
    cluster
        .shard_collection("sales", ShardKey::range(["t"]), 64 * 1024 * 1024)
        .unwrap();
    let router = cluster.router();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || {
                for i in 0..DOCS {
                    router.insert_one("sales", derive(w * DOCS + i)).unwrap();
                }
            });
        }
        s.spawn(|| {
            for m in 0..MOVES {
                let to = (m % 2 == 0) as usize; // bounce 1, 0, 1, 0, …
                router.move_chunk("sales", 0, to).unwrap();
            }
        });
    });

    let total = (WRITERS * DOCS) as usize;
    assert_eq!(router.count("sales", &Filter::True), total);
    let report = check_content(&cluster, "sales", "t", 0..WRITERS * DOCS, derive);
    assert_eq!(report.checked, total);
    assert!(report.is_clean(), "migration leaked writes: {report:?}");
}

/// Concurrent broadcast readers against a partitioned shard record one
/// warning per degraded read, and concurrent `take_warnings` drainers
/// see each warning exactly once.
#[test]
fn warnings_drain_exactly_once_under_concurrency() {
    const READERS: usize = 4;
    const READS: usize = 50;
    let mut cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 3,
        db_name: "warn".into(),
        network: NetworkModel::free(),
        retry: RetryPolicy::none(),
        ..ClusterConfig::default()
    });
    cluster.router_mut().set_degraded_reads(DegradedReads::Partial);
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 64 * 1024)
        .unwrap();
    let router = cluster.router();
    for i in 0..30i64 {
        router.insert_one("facts", doc! {"k" => i}).unwrap();
    }
    router.faults().set_partitioned(0, true);

    let drained = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..READS {
                    // Broadcast read: the partitioned shard's leg fails
                    // and Partial mode records exactly one warning.
                    let _ = router.try_find_with("facts", &Filter::True, &Default::default());
                }
            });
        }
        // Two drainers race the readers; whatever they pull must never
        // be seen twice.
        for _ in 0..2 {
            let drained = &drained;
            s.spawn(move || {
                for _ in 0..200 {
                    let got = router.take_warnings().len();
                    drained.fetch_add(got, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
    });
    let leftover = router.take_warnings().len();
    assert_eq!(
        drained.load(Ordering::Relaxed) + leftover,
        READERS * READS,
        "warnings were lost or double-drained"
    );
}

/// NetStats counters are atomic: 8 threads charging in parallel lose
/// nothing and the exchange/byte totals come out exact.
#[test]
fn net_stats_counters_are_exact_under_concurrency() {
    const THREADS: u64 = 8;
    const CHARGES: u64 = 10_000;
    let cluster = cluster(2);
    let stats = cluster.router().net_stats();
    let model = NetworkModel::free();
    let before_ex = stats.exchanges();
    let before_bytes = stats.bytes();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stats = &stats;
            let model = &model;
            s.spawn(move || {
                for i in 0..CHARGES {
                    stats.charge(model, (t * CHARGES + i) as usize % 97);
                }
            });
        }
    });
    let expect_bytes: u64 = (0..THREADS * CHARGES).map(|v| v % 97).sum();
    assert_eq!(stats.exchanges() - before_ex, THREADS * CHARGES);
    assert_eq!(stats.bytes() - before_bytes, expect_bytes);
}
