//! Chaos suite: deterministic seeded fault schedules against a
//! replica-backed sharded cluster. Members are killed and recovered and
//! shards partitioned mid-workload; afterwards every member of every
//! shard must hold exactly the primary's documents (bit-identical under
//! encoding, insertion order ignored).

use doclite_bson::doc;
use doclite_docstore::{Filter, SyncPolicy};
use doclite_sharding::chaos::{self, ChaosSchedule, FaultAction};
use doclite_sharding::{
    ClusterConfig, DegradedReads, DurabilityConfig, MemberState, NetworkModel, ReadPreference,
    RetryPolicy, ShardKey, ShardedCluster, WriteConcern,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory per test (and per proptest case): chaos
/// tests run in one process, so a counter + pid disambiguates.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn chaos_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("doclite_chaos_{tag}_{}_{n}", std::process::id()));
    // A stale directory from an interrupted earlier run must not leak
    // its WAL/checkpoint state into this one.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn replicated_cluster(
    n_shards: usize,
    replicas: usize,
    concern: WriteConcern,
) -> ShardedCluster {
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards,
        replicas_per_shard: replicas,
        db_name: "chaos".into(),
        write_concern: concern,
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    cluster
}

/// Like [`replicated_cluster`], but every member persists a WAL and
/// checkpoints under `dir`, so crashed members restart with their
/// acknowledged writes instead of an empty database.
fn durable_cluster(
    n_shards: usize,
    replicas: usize,
    concern: WriteConcern,
    dir: &Path,
    sync: SyncPolicy,
) -> ShardedCluster {
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards,
        replicas_per_shard: replicas,
        db_name: "chaos".into(),
        write_concern: concern,
        durability: Some(DurabilityConfig { dir: dir.to_path_buf(), sync }),
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    cluster
}

/// Loads enough padded documents that chunks split, then balances so
/// every shard holds data.
fn load_and_balance(cluster: &ShardedCluster, n: i64) {
    for i in 0..n {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(30)})
            .unwrap();
    }
    cluster.balance().unwrap();
}

/// The tentpole scenario: a seeded fault schedule kills/recovers
/// members and partitions shards while writes and scatter-gather reads
/// keep flowing; after repairing everything, all members converge and
/// every acknowledged write is durable.
#[test]
fn seeded_fault_schedule_converges_after_recovery() {
    let cluster = replicated_cluster(3, 3, WriteConcern::W1);
    load_and_balance(&cluster, 120);

    let schedule = ChaosSchedule::seeded(0xC0FFEE, 200, 3, 3);
    let mut acked: Vec<i64> = Vec::new();
    let mut write_failures = 0usize;
    for step in 0..200usize {
        schedule.apply_due(&cluster, step);
        let k = 1000 + step as i64;
        match cluster.router().insert_one("facts", doc! {"k" => k}) {
            Ok(()) => acked.push(k),
            Err(_) => write_failures += 1,
        }
        if step % 10 == 0 {
            // Scatter-gather mid-chaos: may fail while a shard is
            // partitioned, must never panic or wedge.
            let _ = cluster.router().try_find_with(
                "facts",
                &Filter::True,
                &Default::default(),
            );
        }
    }
    assert!(
        !acked.is_empty(),
        "the schedule never leaves a shard without a primary, so some writes must land"
    );
    assert!(
        write_failures > 0,
        "a 200-step schedule should partition at least one write's target"
    );

    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    // Every acknowledged write survived the churn.
    for k in acked {
        assert_eq!(
            cluster.router().find("facts", &Filter::eq("k", k)).len(),
            1,
            "acknowledged write k={k} lost"
        );
    }
}

/// Acceptance criterion: with one member of a shard down, queries keep
/// returning exactly the healthy-cluster result.
#[test]
fn query_during_single_member_failure_matches_healthy_result() {
    let cluster = replicated_cluster(3, 3, WriteConcern::Majority);
    load_and_balance(&cluster, 90);

    let keys = |docs: Vec<doclite_bson::Document>| {
        let mut ks: Vec<i64> = docs
            .iter()
            .map(|d| match d.get("k") {
                Some(doclite_bson::Value::Int64(v)) => *v,
                other => panic!("bad k: {other:?}"),
            })
            .collect();
        ks.sort_unstable();
        ks
    };
    let healthy = keys(cluster.router().find("facts", &Filter::True));
    assert_eq!(healthy.len(), 90);

    // Kill the primary member of shard 2: an election replaces it and
    // reads fail over to the surviving members.
    cluster.router().shards()[1].replica_set().fail_member(0);
    let degraded = keys(cluster.router().find("facts", &Filter::True));
    assert_eq!(healthy, degraded);

    // Same under an explicit secondary read preference.
    let mut cluster = cluster;
    cluster
        .router_mut()
        .set_read_preference(ReadPreference::Secondary);
    assert_eq!(healthy, keys(cluster.router().find("facts", &Filter::True)));
}

/// A whole-shard partition: fail-fast errors by default, partial
/// results with a warning when the caller opts in.
#[test]
fn partitioned_shard_degrades_per_policy() {
    let mut cluster = replicated_cluster(3, 1, WriteConcern::W1);
    load_and_balance(&cluster, 300);
    let total = cluster.router().find("facts", &Filter::True).len();
    assert_eq!(total, 300);
    let shard1_docs = cluster.router().shards()[1]
        .db()
        .get_collection("facts")
        .map(|c| c.len())
        .unwrap_or(0);
    assert!(shard1_docs > 0, "balance must give shard 2 data");

    cluster.router().faults().set_partitioned(1, true);

    // Default policy: the broadcast fails loudly.
    let err = cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .unwrap_err();
    assert!(err.to_string().contains("unavailable"), "{err}");

    // Partial policy: reachable shards answer, a warning is recorded.
    cluster.router_mut().set_degraded_reads(DegradedReads::Partial);
    let partial = cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .unwrap();
    assert_eq!(partial.len(), total - shard1_docs);
    let warnings = cluster.router().take_warnings();
    assert!(!warnings.is_empty());
    assert!(warnings[0].contains("partial"), "{warnings:?}");
    assert!(cluster.router().net_stats().partitioned() > 0);

    // Counts degrade the same way.
    assert_eq!(
        cluster.router().try_count("facts", &Filter::True).unwrap(),
        total - shard1_docs
    );

    // Healing restores full results.
    cluster.router().faults().set_partitioned(1, false);
    assert_eq!(cluster.router().find("facts", &Filter::True).len(), total);
}

/// Probabilistic drops: bounded-backoff retries ride through transient
/// loss on both reads and writes, deterministically under the seed.
#[test]
fn retries_recover_from_transient_drops() {
    let mut cluster = replicated_cluster(2, 1, WriteConcern::W1);
    cluster.router_mut().set_retry_policy(RetryPolicy {
        max_retries: 25,
        ..RetryPolicy::default()
    });
    load_and_balance(&cluster, 60);

    let faults = cluster.router().faults();
    faults.set_seed(42);
    faults.set_drop_probability(0.4);

    // With p=0.4 and 25 retries the chance any exchange exhausts its
    // budget is ~1e-10 per exchange: everything below must succeed.
    for i in 0..40i64 {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => 500 + i})
            .unwrap();
    }
    for i in 0..40i64 {
        assert_eq!(
            cluster
                .router()
                .try_find_with("facts", &Filter::eq("k", 500 + i), &Default::default())
                .unwrap()
                .len(),
            1
        );
    }
    let stats = cluster.router().net_stats();
    assert!(stats.dropped() > 0, "p=0.4 must drop some exchanges");
    assert_eq!(stats.dropped(), stats.retries(), "every drop was retried");

    cluster.router().faults().clear();
    chaos::check_convergence(&cluster).unwrap();
}

/// Writes route through the elected primary after the old one dies.
#[test]
fn writes_fail_over_to_new_primary() {
    let cluster = replicated_cluster(1, 3, WriteConcern::Majority);
    cluster.router().insert_one("facts", doc! {"k" => 1i64}).unwrap();

    let shards = cluster.router().shards();
    let rs = shards[0].replica_set();
    assert_eq!(rs.primary_index(), 0);
    rs.fail_member(0);
    assert_eq!(rs.primary_index(), 1);

    cluster.router().insert_one("facts", doc! {"k" => 2i64}).unwrap();
    assert_eq!(cluster.router().find("facts", &Filter::True).len(), 2);

    rs.recover_member(0);
    chaos::check_convergence(&cluster).unwrap();
    // The recovered ex-primary resynced the write it missed.
    assert_eq!(
        rs.member_db(0).get_collection("facts").unwrap().len(),
        2
    );
}

/// A request timeout fails oversized responses; slimmer exchanges pass.
#[test]
fn request_timeouts_fail_oversized_scatter_legs() {
    let mut cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 2,
        replicas_per_shard: 1,
        db_name: "chaos_t".into(),
        network: NetworkModel {
            round_trip: std::time::Duration::from_micros(100),
            bytes_per_sec: 1_000_000,
            mode: doclite_sharding::NetMode::Account,
        },
        retry: RetryPolicy::none(),
        ..ClusterConfig::default()
    });
    cluster.router_mut().set_scatter_mode(doclite_sharding::ScatterMode::Sequential);
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    for i in 0..50i64 {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => i, "pad" => "y".repeat(200)})
            .unwrap();
    }
    // ~10 kB of matching documents take ~10 ms on this 1 MB/s link: a
    // 1 ms budget times the broadcast out, but a targeted single-doc
    // read stays under it.
    cluster
        .router()
        .faults()
        .set_timeout(Some(std::time::Duration::from_millis(1)));
    assert!(cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .is_err());
    assert_eq!(
        cluster
            .router()
            .try_find_with("facts", &Filter::eq("k", 3i64), &Default::default())
            .unwrap()
            .len(),
        1
    );
    assert!(cluster.router().net_stats().timed_out() > 0);
}

/// The durability tentpole: a seeded schedule that *crashes* member
/// processes (memory lost, disk kept) and restarts them, interleaved
/// with link failures and partitions, all under live traffic. After
/// repairing everything the members converge bit-identically and every
/// acknowledged write — including those whose acking member later
/// crashed — is still present.
#[test]
fn seeded_crash_restart_schedule_converges_with_durability() {
    let dir = chaos_dir("seeded");
    let cluster =
        durable_cluster(3, 3, WriteConcern::Majority, &dir, SyncPolicy::EveryN(8));
    load_and_balance(&cluster, 120);

    let schedule = ChaosSchedule::seeded(0xD15C, 200, 3, 3);
    let crashes = schedule
        .events()
        .iter()
        .filter(|e| matches!(e.action, FaultAction::CrashMember { .. }))
        .count();
    let restarts = schedule
        .events()
        .iter()
        .filter(|e| matches!(e.action, FaultAction::RestartMember { .. }))
        .count();
    assert!(
        crashes > 0 && restarts > 0,
        "seed must exercise the crash path ({crashes} crashes, {restarts} restarts)"
    );

    let mut acked: Vec<i64> = Vec::new();
    for step in 0..200usize {
        schedule.apply_due(&cluster, step);
        let k = 1000 + step as i64;
        if cluster.router().insert_one("facts", doc! {"k" => k}).is_ok() {
            acked.push(k);
        }
        if step % 16 == 0 {
            // Reads mid-chaos may fail against a partitioned shard but
            // must never panic or wedge.
            let _ = cluster.router().try_find_with(
                "facts",
                &Filter::True,
                &Default::default(),
            );
        }
        if step == 100 {
            // A mid-run checkpoint on every live member: later restarts
            // recover from checkpoint + WAL tail, not the log alone.
            for shard in cluster.router().shards() {
                shard.replica_set().checkpoint_all().unwrap();
            }
        }
    }
    assert!(!acked.is_empty(), "the schedule always leaves a primary");

    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    for k in acked {
        assert_eq!(
            cluster.router().find("facts", &Filter::eq("k", k)).len(),
            1,
            "acknowledged write k={k} lost across crash/restart churn"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every member of a shard crashes — no in-memory copy survives — and
/// the data comes back from checkpoint + WAL alone. `w:all` writes make
/// every member's disk authoritative, so the restart order (first
/// restarted member becomes primary) cannot lose anything.
#[test]
fn total_shard_crash_recovers_every_acked_write_from_disk() {
    let dir = chaos_dir("total");
    let cluster = durable_cluster(1, 3, WriteConcern::All, &dir, SyncPolicy::Always);
    for i in 0..40i64 {
        cluster.router().insert_one("facts", doc! {"k" => i}).unwrap();
    }
    // Compact the first half into checkpoints, then keep writing so
    // recovery must stitch checkpoint state and the WAL tail together.
    let shards = cluster.router().shards();
    let rs = shards[0].replica_set();
    rs.checkpoint_all().unwrap();
    for i in 40..60i64 {
        cluster.router().insert_one("facts", doc! {"k" => i}).unwrap();
    }

    for m in 0..3 {
        rs.crash_member(m);
    }
    for m in 0..3 {
        assert_eq!(
            rs.member_db(m).get_collection("facts").map(|c| c.len()).unwrap_or(0),
            0,
            "a crashed member must hold nothing in memory"
        );
    }

    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    assert_eq!(cluster.router().find("facts", &Filter::True).len(), 60);
    // The shard-key index came back too (recovered from the WAL's
    // create-index frame), so targeted queries still work.
    assert!(cluster
        .router()
        .explain_targeting("facts", &Filter::eq("k", 30i64))
        .is_targeted());
    std::fs::remove_dir_all(&dir).ok();
}

/// A crashed member that restarts while its shard still has a healthy
/// primary resyncs the writes it missed while dead.
#[test]
fn restarted_member_catches_up_on_writes_it_missed() {
    let dir = chaos_dir("catchup");
    let cluster = durable_cluster(1, 3, WriteConcern::Majority, &dir, SyncPolicy::Always);
    for i in 0..10i64 {
        cluster.router().insert_one("facts", doc! {"k" => i}).unwrap();
    }
    let shards = cluster.router().shards();
    let rs = shards[0].replica_set();
    rs.crash_member(2);
    for i in 10..25i64 {
        cluster.router().insert_one("facts", doc! {"k" => i}).unwrap();
    }
    let report = rs.restart_member(2).unwrap();
    assert!(report.frames_replayed > 0, "the WAL held the pre-crash writes");
    assert_eq!(rs.member_db(2).get_collection("facts").unwrap().len(), 25);
    chaos::check_convergence(&cluster).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Catch-up by log shipping and catch-up by full copy must land the
/// stale member in the *same* state: run the identical missed-write
/// workload twice — once with the primary's WAL tail intact (frames
/// above the member's resume token ship incrementally) and once with a
/// checkpoint truncating that tail (forcing the full-copy fallback) —
/// and compare the recovered member's documents as multisets.
#[test]
fn log_shipping_catchup_matches_full_resync() {
    use doclite_bson::json::to_json;

    let mut recovered: Vec<Vec<String>> = Vec::new();
    for truncate in [false, true] {
        let tag = if truncate { "ship_trunc" } else { "ship_tail" };
        let dir = chaos_dir(tag);
        let cluster =
            durable_cluster(1, 3, WriteConcern::Majority, &dir, SyncPolicy::Always);
        // Explicit `_id`s: auto-generated ids differ between the two
        // cluster instances and would defeat the cross-run comparison.
        for i in 0..30i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"_id" => i, "k" => i})
                .unwrap();
        }
        let shards = cluster.router().shards();
        let rs = shards[0].replica_set();
        // Down, not crashed: memory intact, so recovery goes through
        // the incremental catch-up path (with its full-copy fallback).
        rs.fail_member(2);
        for i in 30..60i64 {
            cluster
                .router()
                .insert_one("facts", doc! {"_id" => i, "k" => i})
                .unwrap();
        }
        if truncate {
            // Shrink the change buffer and compact: the downed member's
            // resume token now predates the retained log, so shipping
            // must refuse and recovery must full-copy instead.
            rs.member_wal(0).expect("durable primary").set_change_capacity(1);
            rs.checkpoint_all().unwrap();
        }
        rs.recover_member(2);

        let stats = rs.resync_stats();
        if truncate {
            assert_eq!(
                (stats.log_shipped, stats.full_copies),
                (0, 1),
                "a truncated tail must force the full-copy fallback"
            );
        } else {
            assert_eq!(
                (stats.log_shipped, stats.full_copies),
                (1, 0),
                "an intact tail must ship incrementally"
            );
        }

        let mut docs: Vec<String> = rs
            .member_db(2)
            .get_collection("facts")
            .unwrap()
            .all_docs()
            .iter()
            .map(to_json)
            .collect();
        docs.sort();
        assert_eq!(docs.len(), 60);
        recovered.push(docs);
        chaos::check_convergence(&cluster).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        recovered[0], recovered[1],
        "the two recovery paths disagree on the member's final state"
    );
}

/// Under fail/recover churn with writes flowing, every recovery of a
/// downed secondary is served incrementally from the primary's log
/// tail — the full-copy path never fires when the tail is intact.
#[test]
fn downed_members_catch_up_by_log_shipping_under_chaos() {
    let dir = chaos_dir("shiplog");
    let cluster = durable_cluster(2, 3, WriteConcern::W1, &dir, SyncPolicy::EveryN(8));
    load_and_balance(&cluster, 120);

    const ROUNDS: u64 = 6;
    for round in 0..ROUNDS {
        let shard = (round % 2) as usize;
        let member = 1 + (round % 2) as usize; // a secondary, never member 0
        cluster.router().shards()[shard].replica_set().fail_member(member);
        for i in 0..15i64 {
            let k = 1000 + round as i64 * 15 + i;
            cluster.router().insert_one("facts", doc! {"k" => k}).unwrap();
        }
        cluster.router().shards()[shard].replica_set().recover_member(member);
    }

    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    let (shipped, copies) = cluster.router().shards().iter().fold((0, 0), |(s, c), sh| {
        let st = sh.replica_set().resync_stats();
        (s + st.log_shipped, c + st.full_copies)
    });
    assert!(
        shipped >= ROUNDS,
        "every recovery should ship the log tail (shipped {shipped} of {ROUNDS})"
    );
    assert_eq!(copies, 0, "no recovery should have needed a full copy");
    std::fs::remove_dir_all(&dir).ok();
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert k with w:1 (false) or w:majority (true).
    Write { k: i64, majority: bool },
    Fail { shard: usize, member: usize },
    Recover { shard: usize, member: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The write arm appears twice: the vendored prop_oneof! has no
    // weight syntax, and writes should outnumber fail/recover events.
    prop_oneof![
        (0..5_000i64, any::<bool>()).prop_map(|(k, majority)| Op::Write { k, majority }),
        (5_000..10_000i64, any::<bool>()).prop_map(|(k, majority)| Op::Write { k, majority }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| Op::Fail { shard, member }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| Op::Recover { shard, member }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of w:1 / w:majority writes with member
    /// failovers — including losing every member of a shard — ends,
    /// after recovering everyone, with all members bit-identical and
    /// one document per acknowledged write.
    #[test]
    fn interleaved_writes_and_failovers_converge(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let mut cluster = replicated_cluster(2, 3, WriteConcern::W1);
        load_and_balance(&cluster, 120);
        let mut acked = 0usize;
        for op in ops {
            match op {
                Op::Write { k, majority } => {
                    cluster.router_mut().set_write_concern(if majority {
                        WriteConcern::Majority
                    } else {
                        WriteConcern::W1
                    });
                    // Writes may fail while a shard has no primary or
                    // quorum; acknowledged ones must survive to the end.
                    if cluster.router().insert_one("facts", doc! {"k" => k}).is_ok() {
                        acked += 1;
                    }
                }
                Op::Fail { shard, member } => {
                    cluster.router().shards()[shard].replica_set().fail_member(member);
                }
                Op::Recover { shard, member } => {
                    cluster.router().shards()[shard].replica_set().recover_member(member);
                }
            }
        }
        chaos::heal_all(&cluster);
        chaos::check_convergence(&cluster).unwrap();
        prop_assert_eq!(cluster.router().collection_len("facts"), 120 + acked);
    }
}

#[derive(Clone, Debug)]
enum DurableOp {
    /// Insert k with w:1 (false) or w:majority (true).
    Write { k: i64, majority: bool },
    Fail { shard: usize, member: usize },
    Crash { shard: usize, member: usize },
    Recover { shard: usize, member: usize },
}

fn durable_op_strategy() -> impl Strategy<Value = DurableOp> {
    // Write arm doubled for weight, as in `op_strategy`.
    prop_oneof![
        (0..5_000i64, any::<bool>())
            .prop_map(|(k, majority)| DurableOp::Write { k, majority }),
        (5_000..10_000i64, any::<bool>())
            .prop_map(|(k, majority)| DurableOp::Write { k, majority }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| DurableOp::Fail { shard, member }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| DurableOp::Crash { shard, member }),
        (0..2usize, 0..3usize)
            .prop_map(|(shard, member)| DurableOp::Recover { shard, member }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of writes, link failures, and *process crashes*
    /// against a durable cluster converges with one document per
    /// acknowledged write. Crashes follow the same invariant the
    /// seeded schedule keeps — never crash the last healthy member of a
    /// shard (with per-member WALs there is no cross-member opTime, so
    /// a full-crash shard elects whichever member restarts first;
    /// `w:all` is the contract for surviving that, covered by
    /// `total_shard_crash_recovers_every_acked_write_from_disk`).
    #[test]
    fn interleaved_writes_crashes_and_failovers_converge_durably(
        ops in proptest::collection::vec(durable_op_strategy(), 1..60)
    ) {
        let dir = chaos_dir("prop");
        let mut cluster =
            durable_cluster(2, 3, WriteConcern::W1, &dir, SyncPolicy::Never);
        load_and_balance(&cluster, 120);
        let mut acked = 0usize;
        for op in ops {
            match op {
                DurableOp::Write { k, majority } => {
                    cluster.router_mut().set_write_concern(if majority {
                        WriteConcern::Majority
                    } else {
                        WriteConcern::W1
                    });
                    if cluster.router().insert_one("facts", doc! {"k" => k}).is_ok() {
                        acked += 1;
                    }
                }
                DurableOp::Fail { shard, member } => {
                    let shards = cluster.router().shards();
                    let rs = shards[shard].replica_set();
                    // Failing the link of a dead process is meaningless
                    // (and would erase the crashed marker).
                    if rs.member_state(member) != MemberState::Crashed {
                        rs.fail_member(member);
                    }
                }
                DurableOp::Crash { shard, member } => {
                    let shards = cluster.router().shards();
                    let rs = shards[shard].replica_set();
                    let up = (0..rs.member_count())
                        .filter(|&m| rs.member_state(m) == MemberState::Up)
                        .count();
                    if rs.member_state(member) == MemberState::Up && up > 1 {
                        rs.crash_member(member);
                    }
                }
                DurableOp::Recover { shard, member } => {
                    cluster.router().shards()[shard].replica_set().recover_member(member);
                }
            }
        }
        chaos::heal_all(&cluster);
        chaos::check_convergence(&cluster).unwrap();
        prop_assert_eq!(cluster.router().collection_len("facts"), 120 + acked);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// PR-8 acceptance scenario: an *elastic* seeded schedule adds shards,
/// drain-removes shards, and fires balancing rounds while members
/// crash, links fail, and shards partition — all under a seeded,
/// re-derivable write stream. After the storm the cluster is healed,
/// interrupted drains are finished, and the check demands both replica
/// convergence and byte-exact content for every acknowledged ticket:
/// any document an elastic reconfiguration lost, doubled, or mangled
/// fails the run. Runs at two seeds.
#[test]
fn elastic_seeded_schedule_preserves_content_across_reconfiguration() {
    for seed in [0xE1A5_0001u64, 0xE1A5_0002] {
        elastic_chaos_run(seed);
    }
}

fn elastic_chaos_run(seed: u64) {
    const STEPS: usize = 250;
    let derive = |id: i64| doc! {"_id" => id, "k" => id, "pad" => "e".repeat(24)};
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 3,
        replicas_per_shard: 3,
        db_name: "elastic".into(),
        write_concern: WriteConcern::W1,
        retry: RetryPolicy::elastic(),
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    let mut acked: Vec<i64> = Vec::new();
    for id in 0..150i64 {
        cluster.router().insert_one("facts", derive(id)).unwrap();
        acked.push(id);
    }
    cluster.balance().unwrap();

    let schedule = ChaosSchedule::seeded_elastic(seed, STEPS, 3, 3);
    let topology_events = schedule
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.action,
                FaultAction::AddShard | FaultAction::RemoveShard { .. } | FaultAction::Rebalance
            )
        })
        .count();
    assert!(
        topology_events > 0,
        "seed {seed:#x}: an elastic schedule must reshape the topology"
    );

    let mut write_failures = 0usize;
    for step in 0..STEPS {
        schedule.apply_due(&cluster, step);
        let id = 1000 + step as i64;
        match cluster.router().insert_one("facts", derive(id)) {
            Ok(()) => acked.push(id),
            Err(_) => write_failures += 1,
        }
        if step % 20 == 0 {
            // Scatter-gather mid-reconfiguration: may fail while a
            // shard is partitioned, must never panic or wedge.
            let _ = cluster
                .router()
                .try_find_with("facts", &Filter::True, &Default::default());
        }
    }
    assert!(
        acked.len() > 150,
        "seed {seed:#x}: retries should land most writes ({write_failures} failed)"
    );

    chaos::heal_all(&cluster);
    cluster.finish_drains().unwrap();
    cluster.balance().unwrap();
    let report = chaos::check_convergence_with_content(
        &cluster,
        "facts",
        "k",
        acked.iter().copied(),
        derive,
    )
    .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
    assert_eq!(report.checked, acked.len());
}
