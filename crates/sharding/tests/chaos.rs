//! Chaos suite: deterministic seeded fault schedules against a
//! replica-backed sharded cluster. Members are killed and recovered and
//! shards partitioned mid-workload; afterwards every member of every
//! shard must hold exactly the primary's documents (bit-identical under
//! encoding, insertion order ignored).

use doclite_bson::doc;
use doclite_docstore::Filter;
use doclite_sharding::chaos::{self, ChaosSchedule};
use doclite_sharding::{
    ClusterConfig, DegradedReads, NetworkModel, ReadPreference, RetryPolicy, ShardKey,
    ShardedCluster, WriteConcern,
};
use proptest::prelude::*;

fn replicated_cluster(
    n_shards: usize,
    replicas: usize,
    concern: WriteConcern,
) -> ShardedCluster {
    let cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards,
        replicas_per_shard: replicas,
        db_name: "chaos".into(),
        write_concern: concern,
        ..ClusterConfig::default()
    });
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    cluster
}

/// Loads enough padded documents that chunks split, then balances so
/// every shard holds data.
fn load_and_balance(cluster: &ShardedCluster, n: i64) {
    for i in 0..n {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => i, "pad" => "x".repeat(30)})
            .unwrap();
    }
    cluster.balance().unwrap();
}

/// The tentpole scenario: a seeded fault schedule kills/recovers
/// members and partitions shards while writes and scatter-gather reads
/// keep flowing; after repairing everything, all members converge and
/// every acknowledged write is durable.
#[test]
fn seeded_fault_schedule_converges_after_recovery() {
    let cluster = replicated_cluster(3, 3, WriteConcern::W1);
    load_and_balance(&cluster, 120);

    let schedule = ChaosSchedule::seeded(0xC0FFEE, 200, 3, 3);
    let mut acked: Vec<i64> = Vec::new();
    let mut write_failures = 0usize;
    for step in 0..200usize {
        schedule.apply_due(&cluster, step);
        let k = 1000 + step as i64;
        match cluster.router().insert_one("facts", doc! {"k" => k}) {
            Ok(()) => acked.push(k),
            Err(_) => write_failures += 1,
        }
        if step % 10 == 0 {
            // Scatter-gather mid-chaos: may fail while a shard is
            // partitioned, must never panic or wedge.
            let _ = cluster.router().try_find_with(
                "facts",
                &Filter::True,
                &Default::default(),
            );
        }
    }
    assert!(
        !acked.is_empty(),
        "the schedule never leaves a shard without a primary, so some writes must land"
    );
    assert!(
        write_failures > 0,
        "a 200-step schedule should partition at least one write's target"
    );

    chaos::heal_all(&cluster);
    chaos::check_convergence(&cluster).unwrap();
    // Every acknowledged write survived the churn.
    for k in acked {
        assert_eq!(
            cluster.router().find("facts", &Filter::eq("k", k)).len(),
            1,
            "acknowledged write k={k} lost"
        );
    }
}

/// Acceptance criterion: with one member of a shard down, queries keep
/// returning exactly the healthy-cluster result.
#[test]
fn query_during_single_member_failure_matches_healthy_result() {
    let cluster = replicated_cluster(3, 3, WriteConcern::Majority);
    load_and_balance(&cluster, 90);

    let keys = |docs: Vec<doclite_bson::Document>| {
        let mut ks: Vec<i64> = docs
            .iter()
            .map(|d| match d.get("k") {
                Some(doclite_bson::Value::Int64(v)) => *v,
                other => panic!("bad k: {other:?}"),
            })
            .collect();
        ks.sort_unstable();
        ks
    };
    let healthy = keys(cluster.router().find("facts", &Filter::True));
    assert_eq!(healthy.len(), 90);

    // Kill the primary member of shard 2: an election replaces it and
    // reads fail over to the surviving members.
    cluster.router().shards()[1].replica_set().fail_member(0);
    let degraded = keys(cluster.router().find("facts", &Filter::True));
    assert_eq!(healthy, degraded);

    // Same under an explicit secondary read preference.
    let mut cluster = cluster;
    cluster
        .router_mut()
        .set_read_preference(ReadPreference::Secondary);
    assert_eq!(healthy, keys(cluster.router().find("facts", &Filter::True)));
}

/// A whole-shard partition: fail-fast errors by default, partial
/// results with a warning when the caller opts in.
#[test]
fn partitioned_shard_degrades_per_policy() {
    let mut cluster = replicated_cluster(3, 1, WriteConcern::W1);
    load_and_balance(&cluster, 300);
    let total = cluster.router().find("facts", &Filter::True).len();
    assert_eq!(total, 300);
    let shard1_docs = cluster.router().shards()[1]
        .db()
        .get_collection("facts")
        .map(|c| c.len())
        .unwrap_or(0);
    assert!(shard1_docs > 0, "balance must give shard 2 data");

    cluster.router().faults().set_partitioned(1, true);

    // Default policy: the broadcast fails loudly.
    let err = cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .unwrap_err();
    assert!(err.to_string().contains("unavailable"), "{err}");

    // Partial policy: reachable shards answer, a warning is recorded.
    cluster.router_mut().set_degraded_reads(DegradedReads::Partial);
    let partial = cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .unwrap();
    assert_eq!(partial.len(), total - shard1_docs);
    let warnings = cluster.router().take_warnings();
    assert!(!warnings.is_empty());
    assert!(warnings[0].contains("partial"), "{warnings:?}");
    assert!(cluster.router().net_stats().partitioned() > 0);

    // Counts degrade the same way.
    assert_eq!(
        cluster.router().try_count("facts", &Filter::True).unwrap(),
        total - shard1_docs
    );

    // Healing restores full results.
    cluster.router().faults().set_partitioned(1, false);
    assert_eq!(cluster.router().find("facts", &Filter::True).len(), total);
}

/// Probabilistic drops: bounded-backoff retries ride through transient
/// loss on both reads and writes, deterministically under the seed.
#[test]
fn retries_recover_from_transient_drops() {
    let mut cluster = replicated_cluster(2, 1, WriteConcern::W1);
    cluster.router_mut().set_retry_policy(RetryPolicy {
        max_retries: 25,
        ..RetryPolicy::default()
    });
    load_and_balance(&cluster, 60);

    let faults = cluster.router().faults();
    faults.set_seed(42);
    faults.set_drop_probability(0.4);

    // With p=0.4 and 25 retries the chance any exchange exhausts its
    // budget is ~1e-10 per exchange: everything below must succeed.
    for i in 0..40i64 {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => 500 + i})
            .unwrap();
    }
    for i in 0..40i64 {
        assert_eq!(
            cluster
                .router()
                .try_find_with("facts", &Filter::eq("k", 500 + i), &Default::default())
                .unwrap()
                .len(),
            1
        );
    }
    let stats = cluster.router().net_stats();
    assert!(stats.dropped() > 0, "p=0.4 must drop some exchanges");
    assert_eq!(stats.dropped(), stats.retries(), "every drop was retried");

    cluster.router().faults().clear();
    chaos::check_convergence(&cluster).unwrap();
}

/// Writes route through the elected primary after the old one dies.
#[test]
fn writes_fail_over_to_new_primary() {
    let cluster = replicated_cluster(1, 3, WriteConcern::Majority);
    cluster.router().insert_one("facts", doc! {"k" => 1i64}).unwrap();

    let rs = cluster.router().shards()[0].replica_set();
    assert_eq!(rs.primary_index(), 0);
    rs.fail_member(0);
    assert_eq!(rs.primary_index(), 1);

    cluster.router().insert_one("facts", doc! {"k" => 2i64}).unwrap();
    assert_eq!(cluster.router().find("facts", &Filter::True).len(), 2);

    rs.recover_member(0);
    chaos::check_convergence(&cluster).unwrap();
    // The recovered ex-primary resynced the write it missed.
    assert_eq!(
        rs.member_db(0).get_collection("facts").unwrap().len(),
        2
    );
}

/// A request timeout fails oversized responses; slimmer exchanges pass.
#[test]
fn request_timeouts_fail_oversized_scatter_legs() {
    let mut cluster = ShardedCluster::with_config(ClusterConfig {
        n_shards: 2,
        replicas_per_shard: 1,
        db_name: "chaos_t".into(),
        network: NetworkModel {
            round_trip: std::time::Duration::from_micros(100),
            bytes_per_sec: 1_000_000,
            mode: doclite_sharding::NetMode::Account,
        },
        retry: RetryPolicy::none(),
        ..ClusterConfig::default()
    });
    cluster.router_mut().set_scatter_mode(doclite_sharding::ScatterMode::Sequential);
    cluster
        .shard_collection("facts", ShardKey::range(["k"]), 4 * 1024)
        .unwrap();
    for i in 0..50i64 {
        cluster
            .router()
            .insert_one("facts", doc! {"k" => i, "pad" => "y".repeat(200)})
            .unwrap();
    }
    // ~10 kB of matching documents take ~10 ms on this 1 MB/s link: a
    // 1 ms budget times the broadcast out, but a targeted single-doc
    // read stays under it.
    cluster
        .router()
        .faults()
        .set_timeout(Some(std::time::Duration::from_millis(1)));
    assert!(cluster
        .router()
        .try_find_with("facts", &Filter::True, &Default::default())
        .is_err());
    assert_eq!(
        cluster
            .router()
            .try_find_with("facts", &Filter::eq("k", 3i64), &Default::default())
            .unwrap()
            .len(),
        1
    );
    assert!(cluster.router().net_stats().timed_out() > 0);
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert k with w:1 (false) or w:majority (true).
    Write { k: i64, majority: bool },
    Fail { shard: usize, member: usize },
    Recover { shard: usize, member: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The write arm appears twice: the vendored prop_oneof! has no
    // weight syntax, and writes should outnumber fail/recover events.
    prop_oneof![
        (0..5_000i64, any::<bool>()).prop_map(|(k, majority)| Op::Write { k, majority }),
        (5_000..10_000i64, any::<bool>()).prop_map(|(k, majority)| Op::Write { k, majority }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| Op::Fail { shard, member }),
        (0..2usize, 0..3usize).prop_map(|(shard, member)| Op::Recover { shard, member }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of w:1 / w:majority writes with member
    /// failovers — including losing every member of a shard — ends,
    /// after recovering everyone, with all members bit-identical and
    /// one document per acknowledged write.
    #[test]
    fn interleaved_writes_and_failovers_converge(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let mut cluster = replicated_cluster(2, 3, WriteConcern::W1);
        load_and_balance(&cluster, 120);
        let mut acked = 0usize;
        for op in ops {
            match op {
                Op::Write { k, majority } => {
                    cluster.router_mut().set_write_concern(if majority {
                        WriteConcern::Majority
                    } else {
                        WriteConcern::W1
                    });
                    // Writes may fail while a shard has no primary or
                    // quorum; acknowledged ones must survive to the end.
                    if cluster.router().insert_one("facts", doc! {"k" => k}).is_ok() {
                        acked += 1;
                    }
                }
                Op::Fail { shard, member } => {
                    cluster.router().shards()[shard].replica_set().fail_member(member);
                }
                Op::Recover { shard, member } => {
                    cluster.router().shards()[shard].replica_set().recover_member(member);
                }
            }
        }
        chaos::heal_all(&cluster);
        chaos::check_convergence(&cluster).unwrap();
        prop_assert_eq!(cluster.router().collection_len("facts"), 120 + acked);
    }
}
