//! Pins the kernel's zero-allocation guarantee: evaluating a compiled
//! scalar `$match` over documents must not touch the heap at all.
//!
//! This lives in its own integration binary because it installs a
//! counting `#[global_allocator]` and because the assertion only holds
//! if no other test thread allocates concurrently — the single `#[test]`
//! here is the whole binary.
//!
//! The interpreted matcher re-splits the path (`String` per segment) and
//! clones multikey elements per document; the compiled kernel pre-splits
//! at compile time and compares entirely by reference, so after a warm-up
//! pass the allocation counter must not move across a full sweep.

use doclite_bson::{doc, Document};
use doclite_docstore::{compile, matches_compiled, Filter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with an allocation counter (frees are not counted;
/// the assertion is about acquiring heap memory, not balance).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn scalar_match_fast_path_does_not_allocate() {
    // A Q7-shaped residual: equality on one field, range on another,
    // and an $in probe — all against scalar document fields.
    let filter = Filter::and([
        Filter::eq("grp", 42i64),
        Filter::gte("v", 100.0),
        Filter::is_in("k", [3i64, 42, 142, 4095]),
    ]);
    let compiled = compile(&filter);

    let docs: Vec<Document> = (0..512i64)
        .map(|i| doc! {"_id" => i, "k" => i % 300, "grp" => i % 100, "v" => (i * 7 % 1000) as f64})
        .collect();

    let sweep = |hits: &mut usize| {
        for d in &docs {
            if matches_compiled(&compiled, d) {
                *hits += 1;
            }
        }
    };

    // Warm-up: any lazy one-time allocation (none expected, but e.g. a
    // lazily grown thread-local would be amortized here) happens now.
    let mut warm = 0usize;
    sweep(&mut warm);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut hits = 0usize;
    for _ in 0..16 {
        sweep(&mut hits);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert_eq!(
        delta, 0,
        "compiled scalar $match allocated {delta} times across {} evaluations",
        16 * docs.len()
    );
    // The filter actually selects documents (the fast path was exercised,
    // not short-circuited by an always-false branch).
    assert_eq!(hits, 16 * warm);
    assert!(warm > 0, "filter matched nothing; sweep is vacuous");
}
