//! Property tests: the cost-based planner chooses *physical plans*
//! only — results and error strings must be identical to the forced
//! rule-based planner across every `ExecMode` — plus regressions
//! pinning the decisions the cost model exists to make (a
//! low-selectivity predicate on an indexed field must drop the index
//! and take the full-scan path).
//!
//! The planner mode is a process-wide knob, so every test here
//! serializes on one mutex and restores the default (`Cost`) before
//! releasing it.

use doclite_bson::{doc, json::to_json, Document, Value};
use doclite_docstore::{
    set_planner_mode, Accumulator, Database, ExecMode, Expr, Filter, GroupId, IndexDef, Pipeline,
    PlannerMode,
};
use proptest::prelude::*;

static MODE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Serializes planner-mode flips across the tests in this binary (a
/// poisoned lock just means an earlier case failed — the guard is
/// still the right thing to hold).
fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
    MODE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Documents over a small colliding domain; `k` is the indexed field
/// the planner decides about, `grp`/`v` feed `$group`.
fn arb_doc() -> BoxedStrategy<Document> {
    (0..40i64, 0..5i64, 0..50i64)
        .prop_map(|(k, grp, v)| doc! {"k" => k, "grp" => grp, "v" => v})
        .boxed()
}

/// Filters over the indexed field at wildly different selectivities,
/// plus shapes the planner can only partially estimate (untracked
/// fields, disjunction, conjunction).
fn arb_filter() -> BoxedStrategy<Filter> {
    let leaf = prop_oneof![
        (0..40i64).prop_map(|k| Filter::eq("k", k)),
        (0..41i64).prop_map(|k| Filter::lt("k", k)),
        (0..41i64).prop_map(|k| Filter::gte("k", k)),
        prop::collection::vec(0..40i64, 0..6).prop_map(|ks| Filter::is_in("k", ks)),
        (0..5i64).prop_map(|g| Filter::eq("grp", g)),
        Just(Filter::True),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::and),
            prop::collection::vec(inner, 1..3).prop_map(Filter::or),
        ]
    })
    .boxed()
}

fn multiset(docs: &[Document]) -> Vec<String> {
    let mut v: Vec<String> = docs.iter().map(to_json).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever access path the cost model picks, the residual filter
    /// is always the full filter — so flipping the planner can never
    /// change what a pipeline returns, in any execution mode.
    #[test]
    fn cost_and_rule_plans_agree_across_exec_modes(
        docs in prop::collection::vec(arb_doc(), 200..420),
        filter in arb_filter(),
        group in any::<bool>(),
    ) {
        let _g = mode_lock();
        let db = Database::new("t");
        let coll = db.collection("c");
        coll.insert_many(docs).map_err(|(_, e)| e).unwrap();
        coll.create_index(IndexDef::single("k")).unwrap();
        coll.enable_columnar(["k", "grp", "v"]);
        let p = if group {
            Pipeline::new().match_stage(filter).group(
                GroupId::Expr(Expr::field("grp")),
                [("n", Accumulator::count()), ("s", Accumulator::sum_field("v"))],
            )
        } else {
            Pipeline::new().match_stage(filter)
        };
        for mode in [ExecMode::Streaming, ExecMode::Legacy, ExecMode::Parallel, ExecMode::Columnar]
        {
            set_planner_mode(PlannerMode::Rule);
            let rule = coll.aggregate_with_mode(&p, None, mode);
            set_planner_mode(PlannerMode::Cost);
            let cost = coll.aggregate_with_mode(&p, None, mode);
            match (rule, cost) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    multiset(&a), multiset(&b),
                    "results diverged under {:?}", mode
                ),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "errors diverged under {:?}", mode
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent fallibility under {:?}: rule {:?}, cost {:?}",
                    mode, a.map(|_| ()), b.map(|_| ())
                ),
            }
        }
        set_planner_mode(PlannerMode::Cost);
    }
}

/// Pipelines that fail must fail with the *same* error string under
/// both planners in every mode (an input-independent error, so scan
/// order cannot change which document surfaces it).
#[test]
fn error_strings_match_across_planner_modes() {
    let _g = mode_lock();
    let db = Database::new("t");
    let coll = db.collection("c");
    for i in 0..400i64 {
        coll.insert_one(doc! {"k" => i % 40, "v" => i}).unwrap();
    }
    coll.create_index(IndexDef::single("k")).unwrap();
    coll.enable_columnar(["k", "v"]);
    // Every matching document probes `$in` against a literal scalar:
    // the type error is the same whichever document the executor
    // reaches first.
    let p = Pipeline::new().match_stage(Filter::lt("k", 30i64)).group(
        GroupId::Null,
        [(
            "x",
            Accumulator::Sum(Expr::In(
                Box::new(Expr::Literal(Value::Int64(1))),
                Box::new(Expr::Literal(Value::Int64(0))),
            )),
        )],
    );
    for mode in [ExecMode::Streaming, ExecMode::Legacy, ExecMode::Parallel, ExecMode::Columnar] {
        set_planner_mode(PlannerMode::Rule);
        let rule = coll.aggregate_with_mode(&p, None, mode).unwrap_err().to_string();
        set_planner_mode(PlannerMode::Cost);
        let cost = coll.aggregate_with_mode(&p, None, mode).unwrap_err().to_string();
        assert_eq!(rule, cost, "error diverged under {mode:?}");
    }
    set_planner_mode(PlannerMode::Cost);
}

/// The regression the cost model exists for: a predicate on an indexed
/// field that matches ~90% of the collection must take the full scan
/// (rule mode blindly keeps the index), while a selective predicate
/// still seeks the index under both planners.
#[test]
fn low_selectivity_indexed_predicate_prefers_full_scan() {
    let _g = mode_lock();
    let db = Database::new("t");
    let coll = db.collection("c");
    for i in 0..4000i64 {
        coll.insert_one(doc! {"k" => i % 1000, "v" => i}).unwrap();
    }
    coll.create_index(IndexDef::single("k")).unwrap();
    let wide = Filter::lt("k", 900i64); // ~90% of rows
    let narrow = Filter::eq("k", 7i64); // ~0.1% of rows

    set_planner_mode(PlannerMode::Cost);
    let ex = coll.explain(&wide);
    assert!(!ex.used_index, "90% predicate must drop the index, got {}", ex.plan);
    assert_eq!(ex.plan, "COLLSCAN");
    let est = ex.est_rows.expect("cost mode reports an estimate");
    assert!(
        (1800..=7200).contains(&est),
        "estimate {est} wildly off actual {}",
        ex.docs_returned
    );
    let ex = coll.explain(&narrow);
    assert!(ex.used_index, "selective predicate must keep the index, got {}", ex.plan);

    // Rule mode: any usable prefix wins, estimates are not computed.
    set_planner_mode(PlannerMode::Rule);
    let ex = coll.explain(&wide);
    assert!(ex.used_index, "rule mode must blindly keep the index");
    assert!(ex.est_rows.is_none());
    set_planner_mode(PlannerMode::Cost);
}

/// Same pin at the aggregation layer: under `ExecMode::Columnar` the
/// wide predicate must stay on the full-scan (columnar kernel) path —
/// visible through the explain decision — and produce kernel results
/// identical to the streaming row path.
#[test]
fn columnar_keeps_full_scan_kernel_for_wide_indexed_predicate() {
    let _g = mode_lock();
    let db = Database::new("t");
    let coll = db.collection("c");
    for i in 0..4000i64 {
        coll.insert_one(doc! {"k" => i % 1000, "grp" => i % 8, "v" => i % 100}).unwrap();
    }
    coll.create_index(IndexDef::single("k")).unwrap();
    coll.enable_columnar(["k", "grp", "v"]);
    let p = Pipeline::new().match_stage(Filter::lt("k", 900i64)).group(
        GroupId::Expr(Expr::field("grp")),
        [("n", Accumulator::count()), ("s", Accumulator::sum_field("v"))],
    );

    set_planner_mode(PlannerMode::Cost);
    let ex = coll.explain_aggregate(&p, None).unwrap();
    assert_eq!(ex.stages[0].decision.as_deref(), Some("COLLSCAN"));
    let cols = coll.aggregate_with_mode(&p, None, ExecMode::Columnar).unwrap();
    let rows = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
    assert_eq!(multiset(&cols), multiset(&rows));

    set_planner_mode(PlannerMode::Rule);
    let ex = coll.explain_aggregate(&p, None).unwrap();
    assert_eq!(ex.stages[0].decision.as_deref(), Some("IXSCAN { k_1 } (range)"));
    set_planner_mode(PlannerMode::Cost);
}
