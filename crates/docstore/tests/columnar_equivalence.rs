//! Property tests: the columnar batch executor agrees with the
//! streaming row executor — results *and* error strings — with the
//! parallel-columnar variant agreeing too.
//!
//! The document domain is adversarial for the sidecar:
//!
//! * `a` — small colliding integers plus ±2^53±1 / `i64::MIN/MAX`
//!   extremes (the large-integer exactness class), with `Int32`/`Int64`
//!   variants mixed so narrow-cell reconstruction is load-bearing;
//! * `b` — scalars, nulls, strings, *arrays*, and missing fields, so
//!   `b`-touching batches constantly flip between vectorized and
//!   exotic row-fallback execution;
//! * `v` — dyadic doubles (multiples of 0.5), so `$sum`/`$avg` are
//!   exact and chunk-order merges cannot hide behind float slack.
//!
//! Collections also take random deletes (dead slots, free-list reuse)
//! and re-inserts before querying, exercising incremental sidecar
//! maintenance rather than the rebuild path. Pipelines cover fully
//! vectorized prefixes, row-fallback `$match` steps on undeclared
//! paths, whole-pipeline delegation (`$project` first), uncovered
//! `$group` shapes, and fallible epilogue expressions whose error
//! strings must match the row path exactly.
//!
//! No secondary indexes: an index-served `$match` may reorder the
//! stream, which is outside the columnar path's order contract.

use doclite_bson::{doc, Document, Value};
use doclite_docstore::{
    Accumulator, CmpOp, Collection, ExecMode, Expr, Filter, GroupId, Pipeline, ProjectField,
};
use proptest::prelude::*;

const BIG: i64 = 1 << 53;

fn extreme_int() -> BoxedStrategy<i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MIN + 1),
        Just(-BIG - 1),
        Just(-BIG),
        Just(BIG),
        Just(BIG + 1),
        Just(i64::MAX - 1),
        Just(i64::MAX),
    ]
    .boxed()
}

/// `a`: integers over a colliding domain plus the precision-cliff
/// extremes, in both integer widths.
fn arb_a() -> BoxedStrategy<Value> {
    prop_oneof![
        (0..4i32).prop_map(Value::Int32),
        (0..4i64).prop_map(Value::Int64),
        extreme_int().prop_map(Value::Int64),
        Just(Value::Null),
    ]
    .boxed()
}

/// `b`: the exotic-trigger field — scalars of several types, arrays,
/// and nulls.
fn arb_b() -> BoxedStrategy<Value> {
    prop_oneof![
        (0..3i64).prop_map(Value::Int64),
        "[xy]{0,2}".prop_map(Value::String),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
        prop::collection::vec((0..3i64).prop_map(Value::Int64), 0..3).prop_map(Value::Array),
    ]
    .boxed()
}

/// `v`: dyadic doubles so running sums are exact under any chunking.
fn arb_v() -> BoxedStrategy<Value> {
    (-8i64..9).prop_map(|n| Value::Double(n as f64 * 0.5)).boxed()
}

/// `Some`/`None` with equal weight (the vendored proptest has no
/// `prop::option` module).
fn opt<T: std::fmt::Debug + Clone + 'static>(s: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    prop_oneof![Just(None), s.prop_map(Some)].boxed()
}

fn arb_document() -> BoxedStrategy<Document> {
    (opt(arb_a()), opt(arb_b()), opt(arb_v()))
        .prop_map(|(a, b, v)| {
            let mut d = Document::new();
            if let Some(x) = a {
                d.set("a", x);
            }
            if let Some(x) = b {
                d.set("b", x);
            }
            if let Some(x) = v {
                d.set("v", x);
            }
            d
        })
        .boxed()
}

/// Filter paths: declared columns, and `missing` (undeclared — forces
/// the per-step row fallback inside an otherwise-covered plan).
fn arb_path() -> BoxedStrategy<String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("v".to_string()),
        Just("missing".to_string()),
    ]
    .boxed()
}

fn arb_rhs() -> BoxedStrategy<Value> {
    prop_oneof![
        arb_a(),
        arb_b(),
        arb_v(),
        extreme_int().prop_map(|n| Value::Double(n as f64)),
    ]
    .boxed()
}

fn arb_cmp_op() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Gt),
        Just(CmpOp::Gte),
        Just(CmpOp::Lt),
        Just(CmpOp::Lte),
    ]
    .boxed()
}

fn arb_leaf_filter() -> BoxedStrategy<Filter> {
    prop_oneof![
        (arb_path(), arb_cmp_op(), arb_rhs())
            .prop_map(|(p, op, v)| Filter::Cmp { path: p, op, value: v }),
        (arb_path(), prop::collection::vec(arb_rhs(), 0..4))
            .prop_map(|(p, vs)| Filter::is_in(p, vs)),
        (arb_path(), prop::collection::vec(arb_rhs(), 0..4))
            .prop_map(|(p, vs)| Filter::not_in(p, vs)),
        arb_path().prop_map(Filter::exists),
        arb_path().prop_map(Filter::not_exists),
    ]
    .boxed()
}

fn arb_filter() -> BoxedStrategy<Filter> {
    arb_leaf_filter()
        .prop_recursive(2, 8, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::and),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::or),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::Nor),
                inner.prop_map(Filter::not),
            ]
        })
        .boxed()
}

/// Group-by paths: a vectorized integer column, the exotic-riddled
/// mixed column, and an undeclared path (uncovered → streaming rest).
fn arb_group_path() -> BoxedStrategy<String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("missing".to_string()),
    ]
    .boxed()
}

/// Pipeline shapes spanning every coverage class of the planner.
fn arb_pipeline() -> BoxedStrategy<Pipeline> {
    let group_fields = |path: String| {
        vec![
            ("n".to_string(), Accumulator::count()),
            ("s".to_string(), Accumulator::sum_field("v")),
            ("av".to_string(), Accumulator::avg_field("v")),
            ("mn".to_string(), Accumulator::Min(Expr::field("a"))),
            ("mx".to_string(), Accumulator::Max(Expr::field("a"))),
            ("fst".to_string(), Accumulator::First(Expr::field(path.clone()))),
            ("set".to_string(), Accumulator::AddToSet(Expr::field(path))),
        ]
    };
    prop_oneof![
        // Covered match → covered group (plus sort epilogue in rest).
        (arb_filter(), arb_group_path(), any::<bool>()).prop_map(move |(f, g, sorted)| {
            let p = Pipeline::new().match_stage(f).group(
                GroupId::Expr(Expr::field(g.clone())),
                group_fields(g),
            );
            if sorted {
                p.sort([("n", -1), ("s", 1)])
            } else {
                p
            }
        }),
        // _id: null single-group fold.
        arb_filter().prop_map(|f| {
            Pipeline::new().match_stage(f).group(
                GroupId::Null,
                [
                    ("n", Accumulator::count()),
                    ("s", Accumulator::sum_field("v")),
                    ("last", Accumulator::Last(Expr::field("a"))),
                    ("xs", Accumulator::Push(Expr::field("b"))),
                ],
            )
        }),
        // Covered match → count.
        arb_filter().prop_map(|f| Pipeline::new().match_stage(f).count("n")),
        // Covered match, then a fallible epilogue: $add over `b` errors
        // on strings/bools/arrays — error strings must match streaming.
        arb_filter().prop_map(|f| {
            Pipeline::new().match_stage(f).project([(
                "bad",
                ProjectField::Compute(Expr::Add(vec![Expr::field("b"), Expr::lit(1i64)])),
            )])
        }),
        // Uncovered group id (computed expression): match prefix still
        // vectorizes, group runs in the streaming rest.
        arb_filter().prop_map(|f| {
            Pipeline::new().match_stage(f).group(
                GroupId::Expr(Expr::Add(vec![Expr::field("a"), Expr::lit(1i64)])),
                [("n", Accumulator::count())],
            )
        }),
        // Whole-pipeline delegation: $project first, nothing covered.
        arb_filter().prop_map(|f| {
            Pipeline::new()
                .project([("a", ProjectField::Include), ("v", ProjectField::Include)])
                .match_stage(f)
                .count("n")
        }),
    ]
    .boxed()
}

/// Builds the collection with the sidecar enabled *before* the writes,
/// then applies deletes and re-inserts so the columns under test were
/// maintained incrementally, not rebuilt.
fn build_collection(
    docs: Vec<Document>,
    delete_a: Option<i64>,
    extra: Vec<Document>,
) -> Collection {
    let c = Collection::new("columnar_equivalence");
    c.enable_columnar(["a", "b", "v"]);
    c.insert_many(docs).expect("insert");
    if let Some(k) = delete_a {
        c.delete_many(&Filter::eq("a", k));
    }
    c.insert_many(extra).expect("insert extra");
    c
}

fn assert_equiv(c: &Collection, p: &Pipeline) {
    let row = c.aggregate_with_mode(p, None, ExecMode::Streaming);
    let serial = c.aggregate_columnar_with(p, None, 1, 16);
    let par = c.aggregate_columnar_with(p, None, 4, 16);
    match (&row, &serial) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "streaming vs columnar: {:?}", p),
        (Err(a), Err(b)) => prop_assert_eq!(
            a.to_string(),
            b.to_string(),
            "error strings diverge: {:?}",
            p
        ),
        _ => prop_assert!(
            false,
            "divergent fallibility for {:?}: streaming {:?}, columnar {:?}",
            p,
            row.as_ref().map(|_| ()),
            serial.as_ref().map(|_| ())
        ),
    }
    match (&serial, &par) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "serial vs parallel columnar: {:?}", p),
        (Err(a), Err(b)) => prop_assert_eq!(
            a.to_string(),
            b.to_string(),
            "parallel error strings diverge: {:?}",
            p
        ),
        _ => prop_assert!(
            false,
            "divergent fallibility for {:?}: serial {:?}, parallel {:?}",
            p,
            serial.as_ref().map(|_| ()),
            par.as_ref().map(|_| ())
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_agrees_with_streaming(
        docs in prop::collection::vec(arb_document(), 0..40),
        delete_a in opt((0..4i64).boxed()),
        extra in prop::collection::vec(arb_document(), 0..8),
        pipeline in arb_pipeline(),
    ) {
        let c = build_collection(docs, delete_a, extra);
        assert_equiv(&c, &pipeline);
    }
}

/// The mid-pipeline fallback shape as a pinned regression: a covered
/// `$match` on a declared column ANDed with a row-fallback `$match` on
/// an undeclared path, a group over the exotic-riddled column, and a
/// streaming sort epilogue — every layer of the hybrid plan in one
/// pipeline.
#[test]
fn hybrid_plan_layers_agree() {
    let c = Collection::new("hybrid");
    c.enable_columnar(["a", "v"]);
    c.insert_many((0..200).map(|i| {
        let mut d = doc! {"_id" => i as i64, "a" => (i % 5) as i64, "v" => (i % 7) as f64 * 0.5};
        if i % 11 == 0 {
            d.set("tag", Value::from("t"));
        }
        if i % 13 == 0 {
            // Exotic cells in `a` (arrays) sprinkle row-fallback chunks
            // through the vectorized scan.
            d.set("a", Value::Array(vec![Value::Int64(i as i64)]));
        }
        d
    }))
    .expect("insert");
    let p = Pipeline::new()
        .match_stage(Filter::gte("v", 1.0f64))
        .match_stage(Filter::not_exists("tag"))
        .group(
            GroupId::Expr(Expr::field("a")),
            [
                ("n", Accumulator::count()),
                ("s", Accumulator::sum_field("v")),
            ],
        )
        .sort([("n", -1)]);
    let row = c.aggregate_with_mode(&p, None, ExecMode::Streaming).expect("row");
    for (workers, chunk) in [(1, 16), (1, 1024), (4, 16), (8, 3)] {
        let col = c
            .aggregate_columnar_with(&p, None, workers, chunk)
            .expect("columnar");
        assert_eq!(col, row, "workers={workers} chunk={chunk}");
    }
}

/// `ExecMode::Columnar` on a collection with *no* sidecar is exactly
/// the streaming executor (whole-pipeline delegation).
#[test]
fn columnar_mode_without_sidecar_is_streaming() {
    let c = Collection::new("nosidecar");
    c.insert_many((0..50).map(|i| doc! {"_id" => i as i64, "k" => (i % 3) as i64}))
        .expect("insert");
    assert!(!c.columnar_enabled());
    let p = Pipeline::new()
        .match_stage(Filter::eq("k", 1i64))
        .count("n");
    let row = c.aggregate_with_mode(&p, None, ExecMode::Streaming).expect("row");
    let col = c.aggregate_with_mode(&p, None, ExecMode::Columnar).expect("columnar");
    assert_eq!(col, row);
    c.enable_columnar(["k"]);
    assert!(c.columnar_enabled());
    let col = c.aggregate_with_mode(&p, None, ExecMode::Columnar).expect("columnar");
    assert_eq!(col, row);
    c.disable_columnar();
    assert!(!c.columnar_enabled());
}

/// Updates rewrite sidecar cells in place: aggregate answers track the
/// post-update documents under every executor.
#[test]
fn updates_keep_sidecar_consistent() {
    use doclite_docstore::UpdateSpec;
    let c = Collection::new("upd");
    c.enable_columnar(["g", "v"]);
    c.insert_many((0..60).map(|i| doc! {"_id" => i as i64, "g" => (i % 3) as i64, "v" => i as i64}))
        .expect("insert");
    c.update(&Filter::eq("g", 1i64), &UpdateSpec::set("g", 9i64), false, true)
        .expect("update");
    c.delete_many(&Filter::eq("g", 2i64));
    let p = Pipeline::new().group(
        GroupId::Expr(Expr::field("g")),
        [("n", Accumulator::count()), ("s", Accumulator::sum_field("v"))],
    );
    let row = c.aggregate_with_mode(&p, None, ExecMode::Streaming).expect("row");
    let col = c.aggregate_columnar_with(&p, None, 1, 16).expect("columnar");
    assert_eq!(col, row);
    assert_eq!(row.len(), 2); // groups 0 and 9 remain
}
