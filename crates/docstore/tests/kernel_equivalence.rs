//! Property tests: the compiled execution kernel agrees with the
//! interpreted reference evaluators.
//!
//! Two pairings:
//!
//! * **Matcher** — `matches_compiled(&compile(f), d)` vs the interpreted
//!   `query::matches(f, d)` on random filters × random documents. The
//!   interpreted matcher re-splits paths and clones multikey elements on
//!   every call; the kernel pre-splits paths and compares by reference —
//!   the answers must be bit-identical anyway.
//! * **Expressions** — `CompiledExpr::new(e).eval_ref(d)` vs the
//!   interpreted `Expr::eval(d)`: equal values on success, equal error
//!   messages on failure (type errors are part of the contract).
//!
//! Documents are drawn over a small colliding domain with nested
//! documents, arrays (including arrays of documents for multikey
//! fan-out), nulls, and missing fields, and filters reference both
//! present and absent dotted paths so the null-vs-missing and
//! array-any rules are exercised on both sides.

use doclite_bson::{doc, Document, Value};
use doclite_docstore::agg::Expr;
use doclite_docstore::query::{compile, matches, matches_compiled};
use doclite_docstore::{CmpOp, CompiledExpr, Filter};
use proptest::prelude::*;

/// Scalar values over a domain small enough that equality, set probes,
/// and range endpoints all collide, mixing numeric types so the
/// canonical numeric unification (Int32 == 1.0 etc.) is load-bearing.
fn arb_scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (0..4i32).prop_map(Value::Int32),
        (0..4i64).prop_map(Value::Int64),
        (0..4u8).prop_map(|n| Value::Double(f64::from(n))),
        Just(Value::Double(1.5)),
        // Integers past the f64-precision cliff: neighbours here used
        // to collide through the lossy `as_f64` unification, so keep
        // them circulating through every comparison path.
        extreme_int().prop_map(Value::Int64),
        extreme_int().prop_map(|n| Value::Double(n as f64)),
        "[xy]{0,2}".prop_map(Value::String),
        any::<bool>().prop_map(Value::Bool),
    ]
    .boxed()
}

/// ±2^53±1 and the i64 endpoints — the collision class of the old
/// f64-unified numeric comparison.
fn extreme_int() -> BoxedStrategy<i64> {
    const BIG: i64 = 1 << 53;
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MIN + 1),
        Just(-BIG - 1),
        Just(-BIG),
        Just(BIG),
        Just(BIG + 1),
        Just(i64::MAX - 1),
        Just(i64::MAX),
    ]
    .boxed()
}

/// A document value: scalars, arrays of scalars, and arrays of
/// single-field documents (the multikey dotted-path shape).
fn arb_field_value() -> BoxedStrategy<Value> {
    prop_oneof![
        arb_scalar(),
        arb_scalar(),
        prop::collection::vec(arb_scalar(), 0..4).prop_map(Value::Array),
        prop::collection::vec(arb_scalar(), 0..3).prop_map(|vs| {
            Value::Array(vs.into_iter().map(|v| Value::Document(doc! {"c" => v})).collect())
        }),
    ]
    .boxed()
}

/// Documents with top-level fields `a`/`b`, a nested `n.c`, and each
/// field independently missing so null-vs-missing paths are common.
/// `Some`/`None` with equal weight (the vendored proptest has no
/// `prop::option` module).
fn opt<T: Clone + 'static>(s: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    prop_oneof![Just(None), s.prop_map(Some)].boxed()
}

fn arb_document() -> BoxedStrategy<Document> {
    (
        opt(arb_field_value()),
        opt(arb_field_value()),
        opt(arb_scalar()),
    )
        .prop_map(|(a, b, c)| {
            let mut d = Document::new();
            if let Some(v) = a {
                d.set("a", v);
            }
            if let Some(v) = b {
                d.set("b", v);
            }
            if let Some(v) = c {
                d.set("n", Value::Document(doc! {"c" => v}));
            }
            d
        })
        .boxed()
}

/// Paths the filters probe: present scalars, nested fields, multikey
/// dotted paths through arrays of documents, and never-present fields.
fn arb_path() -> BoxedStrategy<String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("n.c".to_string()),
        Just("a.c".to_string()),
        Just("missing".to_string()),
        Just("n.missing".to_string()),
    ]
    .boxed()
}

fn arb_cmp_op() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Gt),
        Just(CmpOp::Gte),
        Just(CmpOp::Lt),
        Just(CmpOp::Lte),
    ]
    .boxed()
}

fn arb_leaf_filter() -> BoxedStrategy<Filter> {
    prop_oneof![
        (arb_path(), arb_cmp_op(), arb_field_value())
            .prop_map(|(p, op, v)| Filter::Cmp { path: p, op, value: v }),
        (arb_path(), prop::collection::vec(arb_scalar(), 0..5))
            .prop_map(|(p, vs)| Filter::is_in(p, vs)),
        (arb_path(), prop::collection::vec(arb_scalar(), 0..5))
            .prop_map(|(p, vs)| Filter::not_in(p, vs)),
        arb_path().prop_map(Filter::exists),
        arb_path().prop_map(Filter::not_exists),
    ]
    .boxed()
}

fn arb_filter() -> BoxedStrategy<Filter> {
    arb_leaf_filter()
        .prop_recursive(3, 16, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::and),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::or),
                prop::collection::vec(inner.clone(), 1..3).prop_map(Filter::Nor),
                inner.prop_map(Filter::not),
            ]
        })
        .boxed()
}

/// Expressions over the same paths, covering every constructor the
/// kernel mirrors — including the fallible numeric and string ops so
/// error behaviour is compared, not just success values.
fn arb_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_scalar().prop_map(Expr::Literal),
        arb_path().prop_map(Expr::Field),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(("[kq]", inner.clone()), 1..3)
                .prop_map(|fs| Expr::Doc(fs.into_iter().collect())),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, o)| Expr::cond(c, t, o)),
            (arb_cmp_op(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Or),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Add),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::subtract(a, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::Multiply),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::divide(a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::In(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::IfNull(Box::new(a), Box::new(b))),
            prop::collection::vec(inner, 1..3).prop_map(Expr::Concat),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_matcher_agrees_with_interpreted(
        filter in arb_filter(),
        docs in prop::collection::vec(arb_document(), 0..12),
    ) {
        let compiled = compile(&filter);
        for d in &docs {
            prop_assert_eq!(
                matches(&filter, d),
                matches_compiled(&compiled, d),
                "filter {:?} on doc {:?}", filter, d
            );
        }
    }

    #[test]
    fn compiled_expr_agrees_with_interpreted(
        expr in arb_expr(),
        docs in prop::collection::vec(arb_document(), 0..8),
    ) {
        let compiled = CompiledExpr::new(&expr);
        for d in &docs {
            match (expr.eval(d), compiled.eval_ref(d)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    &a, b.as_value(),
                    "expr {:?} on doc {:?}", expr, d
                ),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "expr {:?} on doc {:?}", expr, d
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent fallibility for {:?} on {:?}: interpreted {:?}, compiled {:?}",
                    expr, d, a.map(|_| ()), b.map(|_| ())
                ),
            }
        }
    }
}

/// The `$in: [1.0]` ↔ `Int32(1)` unification pinned as a plain
/// regression test (the proptest domain covers it probabilistically).
#[test]
fn in_list_unifies_numeric_types_across_representations() {
    let f = Filter::is_in("a", [Value::Double(1.0)]);
    let c = compile(&f);
    for v in [
        Value::Int32(1),
        Value::Int64(1),
        Value::Double(1.0),
        Value::Array(vec![Value::Int32(5), Value::Int32(1)]),
    ] {
        let d = doc! {"a" => v};
        assert!(matches(&f, &d), "interpreted rejected {d:?}");
        assert!(matches_compiled(&c, &d), "compiled rejected {d:?}");
    }
    let miss = doc! {"a" => Value::Int32(2)};
    assert!(!matches(&f, &miss));
    assert!(!matches_compiled(&c, &miss));
}
