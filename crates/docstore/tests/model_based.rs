//! Model-based property test: a [`Collection`] with secondary indexes
//! must behave observationally like a naive `Vec<Document>` model under
//! arbitrary interleavings of inserts, updates, deletes, and finds —
//! regardless of which indexes exist (indexes may change plans, never
//! results).

use doclite_bson::{Document, Value};
use doclite_docstore::query::matcher::matches;
use doclite_docstore::update::apply_update;
use doclite_docstore::{Collection, Filter, IndexDef, UpdateSpec};
use proptest::prelude::*;

/// One step of the random workload.
#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, a: i64, b: String },
    UpdateSetA { filter_b: String, new_a: i64, multi: bool },
    IncA { filter_a: i64 },
    Delete { filter_a: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..200i64, 0..10i64, "[xyz]").prop_map(|(id, a, b)| Op::Insert { id, a, b }),
        ("[xyz]", 0..10i64, any::<bool>())
            .prop_map(|(filter_b, new_a, multi)| Op::UpdateSetA { filter_b, new_a, multi }),
        (0..10i64).prop_map(|filter_a| Op::IncA { filter_a }),
        (0..10i64).prop_map(|filter_a| Op::Delete { filter_a }),
    ]
}

/// The naive model: a vector of documents, every operation a full scan.
#[derive(Default)]
struct Model {
    docs: Vec<Document>,
}

impl Model {
    fn insert(&mut self, doc: Document) -> bool {
        let id = doc.get("_id").expect("id set");
        if self.docs.iter().any(|d| d.get("_id") == Some(id)) {
            return false; // duplicate
        }
        self.docs.push(doc);
        true
    }

    fn update(&mut self, filter: &Filter, spec: &UpdateSpec, multi: bool) -> usize {
        let mut modified = 0;
        for d in self.docs.iter_mut() {
            if matches(filter, d) {
                if apply_update(d, spec).expect("model update") {
                    modified += 1;
                }
                if !multi {
                    break;
                }
            }
        }
        modified
    }

    fn delete(&mut self, filter: &Filter) -> usize {
        let before = self.docs.len();
        self.docs.retain(|d| !matches(filter, d));
        before - self.docs.len()
    }

    fn find(&self, filter: &Filter) -> Vec<Document> {
        self.docs.iter().filter(|d| matches(filter, d)).cloned().collect()
    }
}

fn doc_for(id: i64, a: i64, b: &str) -> Document {
    let mut d = Document::new();
    d.set("_id", Value::Int64(id));
    d.set("a", Value::Int64(a));
    d.set("b", Value::from(b));
    d
}

fn sorted_by_id(mut docs: Vec<Document>) -> Vec<Document> {
    docs.sort_by(|x, y| {
        x.get("_id")
            .expect("_id")
            .canonical_cmp(y.get("_id").expect("_id"))
    });
    docs
}

fn run_workload(ops: &[Op], index_a: bool, index_b: bool) {
    let coll = Collection::new("sut");
    if index_a {
        coll.create_index(IndexDef::single("a")).expect("index a");
    }
    if index_b {
        coll.create_index(IndexDef::compound(["b", "a"])).expect("index b,a");
    }
    let mut model = Model::default();

    for op in ops {
        match op {
            Op::Insert { id, a, b } => {
                let doc = doc_for(*id, *a, b);
                let sut = coll.insert_one(doc.clone()).is_ok();
                let expected = model.insert(doc);
                assert_eq!(sut, expected, "insert divergence at {op:?}");
            }
            Op::UpdateSetA { filter_b, new_a, multi } => {
                let filter = Filter::eq("b", filter_b.as_str());
                let spec = UpdateSpec::set("a", *new_a);
                let sut = coll.update(&filter, &spec, false, *multi).expect("update");
                if *multi {
                    let expected = model.update(&filter, &spec, *multi);
                    assert_eq!(sut.modified, expected, "update divergence at {op:?}");
                } else {
                    // A single-document update's victim is unspecified
                    // (the engine picks in index-key order, the model in
                    // insertion order — MongoDB likewise leaves it open).
                    // Check only that *some* match was found iff the
                    // model finds one, then adopt the engine's state.
                    let model_would_match = !model.find(&filter).is_empty();
                    assert_eq!(sut.matched > 0, model_would_match, "match divergence at {op:?}");
                    model.docs = coll.all_docs();
                }
            }
            Op::IncA { filter_a } => {
                let filter = Filter::eq("a", *filter_a);
                let spec = UpdateSpec::Ops(vec![doclite_docstore::UpdateOp::Inc(
                    "a".into(),
                    1.0,
                )]);
                let sut = coll.update(&filter, &spec, false, true).expect("inc");
                let expected = model.update(&filter, &spec, true);
                assert_eq!(sut.modified, expected, "inc divergence at {op:?}");
            }
            Op::Delete { filter_a } => {
                let filter = Filter::eq("a", *filter_a);
                let sut = coll.delete_many(&filter);
                let expected = model.delete(&filter);
                assert_eq!(sut, expected, "delete divergence at {op:?}");
            }
        }
        // After every op, the observable state matches on several probes.
        for probe in [
            Filter::True,
            Filter::eq("a", 3i64),
            Filter::gt("a", 5i64),
            Filter::eq("b", "y"),
            Filter::and([Filter::eq("b", "x"), Filter::lte("a", 7i64)]),
        ] {
            let sut = sorted_by_id(coll.find(&probe));
            let expected = sorted_by_id(model.find(&probe));
            assert_eq!(sut, expected, "find divergence on {probe:?} after {op:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collection_matches_naive_model(ops in prop::collection::vec(arb_op(), 1..40)) {
        // Same workload under three index configurations: results must be
        // identical (plans differ, answers don't).
        run_workload(&ops, false, false);
        run_workload(&ops, true, false);
        run_workload(&ops, true, true);
    }
}
