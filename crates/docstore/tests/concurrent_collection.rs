//! Concurrency regressions for the snapshot-then-release read path.
//!
//! PR 6 shrank the collection read-lock hold time: queries snapshot
//! their candidate documents (`Arc` refcount bumps) under the lock and
//! run matching/sorting/aggregation lock-free. The stress report's
//! 2-thread standalone p999 blowup (466µs → 4128µs) was lock-convoy
//! shaped — a writer stuck behind a long analytical scan. These tests
//! pin the fix:
//!
//! * a writer completes *while* a long aggregation is still running,
//!   instead of queueing behind it;
//! * scans started around concurrent writes see a consistent snapshot
//!   (no torn documents, counts within the pre/post bounds).

use doclite_bson::doc;
use doclite_docstore::{
    Accumulator, Database, Expr, Filter, GroupId, Pipeline,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Builds a collection big enough that the analytical pipeline below
/// takes at least `min_scan` of wall time, by doubling. Returns the
/// database and the calibrated scan duration.
fn calibrated_db(min_scan: Duration) -> (Database, Duration) {
    let db = Database::new("bench");
    let coll = db.collection("facts");
    let mut n: usize = 8_192;
    let mut inserted = 0usize;
    loop {
        let batch: Vec<_> = (inserted..n)
            .map(|i| {
                doc! {
                    "_id" => i as i64,
                    "grp" => (i % 1000) as i64,
                    "v" => ((i * 31) % 9973) as i64
                }
            })
            .collect();
        coll.insert_many(batch).map_err(|(_, e)| e).unwrap();
        inserted = n;
        let t = Instant::now();
        let out = db.aggregate("facts", &scan_pipeline()).unwrap();
        let took = t.elapsed();
        assert!(!out.is_empty());
        if took >= min_scan || n >= 2_000_000 {
            return (db, took);
        }
        n *= 2;
    }
}

fn scan_pipeline() -> Pipeline {
    Pipeline::new()
        .match_stage(Filter::gte("v", 0i64))
        .group(
            GroupId::Expr(Expr::field("grp")),
            [("n", Accumulator::count()), ("s", Accumulator::sum_field("v"))],
        )
        .sort([("_id", 1)])
}

#[test]
fn writer_is_not_convoyed_behind_a_long_scan() {
    // Calibrate so the scan comfortably covers the writer's start delay.
    let (db, scan_time) = calibrated_db(Duration::from_millis(80));
    let scanning = AtomicBool::new(false);

    let (scan_done_at, write_done_at) = std::thread::scope(|s| {
        let scanner = s.spawn(|| {
            scanning.store(true, Ordering::SeqCst);
            let out = db.aggregate("facts", &scan_pipeline()).unwrap();
            assert!(!out.is_empty());
            Instant::now()
        });
        let writer = s.spawn(|| {
            while !scanning.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // Give the scanner a head start into the scan body, well
            // under the calibrated scan duration.
            std::thread::sleep(scan_time / 8);
            db.collection("facts")
                .insert_one(doc! {"_id" => -1i64, "grp" => 0i64, "v" => 1i64})
                .unwrap();
            Instant::now()
        });
        (scanner.join().unwrap(), writer.join().unwrap())
    });

    // Pre-fix, the insert queued behind the scan's read lock and could
    // only finish after it; post-fix it lands while the scan is still
    // running. Comparing completion instants avoids asserting absolute
    // latencies on a loaded (or single-core) machine.
    assert!(
        write_done_at < scan_done_at,
        "writer finished {:?} after the scan — read lock held across the scan",
        write_done_at.duration_since(scan_done_at)
    );
}

#[test]
fn scans_see_consistent_snapshots_under_concurrent_writes() {
    let db = Database::new("snap");
    let coll = db.collection("facts");
    let base = 4_000usize;
    let extra = 1_000usize;
    coll.insert_many(
        (0..base)
            .map(|i| doc! {"_id" => i as i64, "grp" => (i % 10) as i64, "v" => 1i64})
            .collect::<Vec<_>>(),
    )
    .map_err(|(_, e)| e)
    .unwrap();

    let counts: Vec<i64> = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for i in 0..extra {
                coll.insert_one(
                    doc! {"_id" => (base + i) as i64, "grp" => (i % 10) as i64, "v" => 1i64},
                )
                .unwrap();
            }
        });
        let mut counts = Vec::new();
        for _ in 0..50 {
            let out = db
                .aggregate(
                    "facts",
                    &Pipeline::new().group(GroupId::Null, [("n", Accumulator::count())]),
                )
                .unwrap();
            counts.push(match out[0].get("n") {
                Some(doclite_bson::Value::Int64(n)) => *n,
                other => panic!("count came back as {other:?}"),
            });
        }
        writer.join().unwrap();
        counts
    });

    // Each scan's snapshot was taken at some instant between test start
    // and writer completion: every count is within bounds, and counts
    // never go backwards faster than a snapshot can (they are each
    // internally consistent single values here — the bounds are the
    // meaningful check).
    for n in counts {
        assert!(
            (base as i64..=(base + extra) as i64).contains(&n),
            "snapshot count {n} outside [{base}, {}]",
            base + extra
        );
    }
    assert_eq!(coll.len(), base + extra);
}
