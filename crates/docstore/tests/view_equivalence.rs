//! Property tests for the WAL-driven materialized views and change
//! streams:
//!
//! 1. **View ≡ recompute at every watermark.** A generated op sequence
//!    (inserts, updates, deletes, checkpoints) interleaved with refresh
//!    points: after each refresh the view's served materialization must
//!    equal a fresh execution of the registered pipeline under *all
//!    four* executor modes — so the incremental accumulate/retract
//!    state, the dirty-group recompute, and the truncation-rebuild
//!    fallback all agree with every engine the store ships.
//! 2. **Resume tokens cut at every boundary.** For every frame boundary
//!    in a generated history, a cursor resumed at that token replays
//!    exactly the suffix — no lost frames, no duplicates — or reports
//!    `TruncatedToken` (and only when the token really fell behind the
//!    oldest retained frame).

use doclite_bson::doc;
use doclite_docstore::wal::{DurableDb, SyncPolicy, WalOptions};
use doclite_docstore::{
    watch, Accumulator, ChangeScope, Error, ExecMode, Expr, Filter, GroupId, Pipeline,
    UpdateSpec, ViewSet,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory per proptest case (one process, many
/// cases: a counter + pid disambiguates).
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("doclite_viewprop_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The registered view: Q7-shaped plus `$min`/`$max`, so deletes of
/// extreme contributions exercise the dirty-group recompute path, not
/// just the invertible counters.
fn view_pipeline() -> Pipeline {
    Pipeline::new()
        .match_stage(Filter::gte("qty", 0i64))
        .group(
            GroupId::Expr(Expr::field("cat")),
            [
                ("revenue", Accumulator::sum_field("price")),
                ("n", Accumulator::count()),
                ("avg_qty", Accumulator::avg_field("qty")),
                ("lo", Accumulator::Min(Expr::field("qty"))),
                ("hi", Accumulator::Max(Expr::field("price"))),
            ],
        )
        .sort([("_id", 1)])
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert a fresh document (ids are sequential, so inserts never
    /// collide; `qty` may be negative, probing the `$match` filter).
    Insert { cat: i64, price: i64, qty: i64 },
    /// Re-price an existing document picked by index (no-op when the
    /// table is empty or the pick was already deleted).
    Update { pick: u64, price: i64 },
    /// Delete an existing document picked by index.
    Delete { pick: u64 },
    /// Quiesced log compaction: truncates the WAL, so a lagging view
    /// cursor must take the documented rebuild fallback.
    Checkpoint,
    /// Refresh the view set and compare against recomputation.
    Refresh,
}

fn insert_op() -> impl Strategy<Value = Op> {
    (0..5i64, 0..100i64, -2..20i64)
        .prop_map(|(cat, price, qty)| Op::Insert { cat, price, qty })
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Insert arm repeated for weight (the vendored prop_oneof! has no
    // weighted form).
    prop_oneof![
        insert_op(),
        insert_op(),
        insert_op(),
        (any::<u64>(), 0..100i64).prop_map(|(pick, price)| Op::Update { pick, price }),
        any::<u64>().prop_map(|pick| Op::Delete { pick }),
        Just(Op::Checkpoint),
        Just(Op::Refresh),
        Just(Op::Refresh),
    ]
}

/// Drains the view set completely (each refresh call is bounded), then
/// asserts the served snapshot equals a fresh pipeline execution under
/// every executor mode.
fn assert_view_matches_all_modes(ddb: &DurableDb, views: &ViewSet) {
    loop {
        let stats = views.refresh().expect("refresh");
        if stats.frames_applied == 0 {
            break;
        }
    }
    let (served, _) = views.read("v").expect("view read");
    let coll = ddb.db().collection("sales");
    let pipeline = view_pipeline();
    for mode in [ExecMode::Streaming, ExecMode::Legacy, ExecMode::Parallel, ExecMode::Columnar] {
        let fresh = coll
            .aggregate_with_mode(&pipeline, None, mode)
            .expect("recompute");
        assert_eq!(&*served, &fresh, "mode {mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: at every refresh watermark the view is
    /// byte-identical to recomputing its pipeline, whichever executor
    /// recomputes it.
    #[test]
    fn view_equals_recompute_at_every_watermark(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let dir = case_dir("equiv");
        let (ddb, _) = DurableDb::open(
            "views",
            &dir,
            WalOptions { sync: SyncPolicy::Never, faults: None },
        )
        .expect("open");
        let sales = ddb.db().collection("sales");
        let views = ViewSet::for_durable(&ddb).expect("view set");
        views.create_view("v", "sales", view_pipeline()).expect("create view");

        let mut next_id: i64 = 0;
        for op in &ops {
            match op {
                Op::Insert { cat, price, qty } => {
                    let d = doc! {
                        "_id" => next_id,
                        "cat" => format!("c{cat}"),
                        "price" => *price,
                        "qty" => *qty,
                    };
                    next_id += 1;
                    sales.insert_one(d).expect("insert");
                }
                Op::Update { pick, price } if next_id > 0 => {
                    let id = (pick % next_id as u64) as i64;
                    let _ = sales.update(
                        &Filter::eq("_id", id),
                        &UpdateSpec::set("price", *price),
                        false,
                        false,
                    );
                }
                Op::Delete { pick } if next_id > 0 => {
                    let id = (pick % next_id as u64) as i64;
                    sales.delete_many(&Filter::eq("_id", id));
                }
                Op::Update { .. } | Op::Delete { .. } => {}
                Op::Checkpoint => ddb.checkpoint().expect("checkpoint"),
                Op::Refresh => assert_view_matches_all_modes(&ddb, &views),
            }
        }
        assert_view_matches_all_modes(&ddb, &views);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Cut the history at *every* frame boundary: a cursor resumed
    /// there replays exactly the suffix, or reports `TruncatedToken`
    /// only when the token genuinely predates the oldest retained
    /// frame (after which re-watching at the tip is the documented
    /// fallback and must succeed).
    #[test]
    fn resume_token_cut_at_every_boundary_loses_nothing(
        ops in prop::collection::vec(arb_op(), 1..40),
        capacity in 1usize..32,
    ) {
        let dir = case_dir("resume");
        let (ddb, _) = DurableDb::open(
            "views",
            &dir,
            WalOptions { sync: SyncPolicy::Never, faults: None },
        )
        .expect("open");
        // A small ring buffer makes checkpoint truncation actually
        // observable at old tokens instead of being papered over.
        ddb.wal().set_change_capacity(capacity);
        let sales = ddb.db().collection("sales");

        // Expected history: every op appends 0+ frames; the WAL tip
        // delta after each op is authoritative (a missed update/delete
        // appends nothing; a checkpoint truncates then heartbeats).
        let mut expected: Vec<u64> = Vec::new();
        let mut next_id: i64 = 0;
        let mut tip = ddb.wal().last_seq();
        for op in &ops {
            match op {
                Op::Insert { cat, price, qty } => {
                    let d = doc! {
                        "_id" => next_id,
                        "cat" => format!("c{cat}"),
                        "price" => *price,
                        "qty" => *qty,
                    };
                    next_id += 1;
                    sales.insert_one(d).expect("insert");
                }
                Op::Update { pick, price } if next_id > 0 => {
                    let id = (pick % next_id as u64) as i64;
                    let _ = sales.update(
                        &Filter::eq("_id", id),
                        &UpdateSpec::set("price", *price),
                        false,
                        false,
                    );
                }
                Op::Delete { pick } if next_id > 0 => {
                    let id = (pick % next_id as u64) as i64;
                    sales.delete_many(&Filter::eq("_id", id));
                }
                Op::Update { .. } | Op::Delete { .. } | Op::Refresh => {}
                Op::Checkpoint => ddb.checkpoint().expect("checkpoint"),
            }
            let now = ddb.wal().last_seq();
            expected.extend(tip + 1..=now);
            tip = now;
        }

        let replay_from = |token: u64| -> Result<Vec<u64>, Error> {
            let mut cursor = watch(ddb.wal(), ChangeScope::Database, Some(token))?;
            let mut seqs = Vec::new();
            loop {
                let batch = cursor.drain()?;
                if batch.is_empty() {
                    return Ok(seqs);
                }
                seqs.extend(batch.iter().map(|f| f.seq));
            }
        };

        for boundary in std::iter::once(0u64).chain(expected.iter().copied()) {
            let suffix: Vec<u64> =
                expected.iter().copied().filter(|&s| s > boundary).collect();
            match replay_from(boundary) {
                Ok(seqs) => prop_assert_eq!(seqs, suffix, "boundary {}", boundary),
                Err(Error::TruncatedToken { token, oldest }) => {
                    prop_assert_eq!(token, boundary);
                    prop_assert!(
                        boundary < oldest,
                        "truncation reported at boundary {boundary} but oldest is {oldest}"
                    );
                    // The documented fallback: re-watch at the tip.
                    let at_tip = replay_from(tip).expect("tip watch");
                    prop_assert!(at_tip.is_empty());
                }
                Err(e) => prop_assert!(false, "boundary {}: {e}", boundary),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
