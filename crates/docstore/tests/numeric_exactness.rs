//! Regression suite for the large-integer numeric-unification bug:
//! every comparison/hash/key-byte path used to collapse numerics
//! through `f64`, so `i64` values past 2^53 collided — `i64::MAX` and
//! `i64::MAX - 1` landed in one `$group` bucket, deduped in
//! `$addToSet`, tied in `$sort`, and shared hashed-index entries.
//! These tests pin the exact semantics on every consumer, across all
//! executor modes.

use doclite_bson::{doc, Document, Value};
use doclite_docstore::query::matches;
use doclite_docstore::{
    compile, matches_compiled, Accumulator, Collection, ExecMode, Expr, Filter, GroupId,
    IndexDef, Pipeline,
};

const BIG: i64 = 1 << 53;

fn big_int_docs() -> Vec<Document> {
    vec![
        doc! {"_id" => 0i64, "k" => i64::MAX, "v" => 1i64},
        doc! {"_id" => 1i64, "k" => i64::MAX - 1, "v" => 10i64},
        doc! {"_id" => 2i64, "k" => i64::MAX, "v" => 100i64},
        doc! {"_id" => 3i64, "k" => BIG, "v" => 1000i64},
        doc! {"_id" => 4i64, "k" => BIG + 1, "v" => 10_000i64},
        doc! {"_id" => 5i64, "k" => Value::Double(BIG as f64), "v" => 100_000i64},
        doc! {"_id" => 6i64, "k" => i64::MIN, "v" => 7i64},
        doc! {"_id" => 7i64, "k" => i64::MIN + 1, "v" => 8i64},
    ]
}

fn coll() -> Collection {
    let c = Collection::new("numeric_exactness");
    c.insert_many(big_int_docs()).expect("insert");
    // The columnar sidecar must preserve the same exactness: `k` holds
    // an exotic Double cell (slot 5), so grouped batches exercise the
    // row-fallback path; `v` stays fully vectorized.
    c.enable_columnar(["k", "v"]);
    c
}

const ALL_MODES: [ExecMode; 4] = [
    ExecMode::Legacy,
    ExecMode::Streaming,
    ExecMode::Parallel,
    ExecMode::Columnar,
];

#[test]
fn group_separates_large_integer_keys() {
    let c = coll();
    let p = Pipeline::new()
        .group(
            GroupId::Expr(Expr::field("k")),
            [("n", Accumulator::count()), ("sum_v", Accumulator::sum_field("v"))],
        )
        .sort([("_id", 1)]);
    for mode in ALL_MODES {
        let out = c.aggregate_with_mode(&p, None, mode).expect("aggregate");
        // Distinct keys: MIN, MIN+1, 2^53 (int unifies with the equal
        // double — they are exactly equal), 2^53+1, MAX-1, MAX.
        assert_eq!(out.len(), 6, "mode {mode:?}: {out:?}");
        let find = |k: &Value| {
            out.iter()
                .find(|d| d.get("_id").unwrap().canonical_eq(k))
                .unwrap_or_else(|| panic!("no group for {k:?} in mode {mode:?}"))
        };
        assert_eq!(find(&Value::Int64(i64::MAX)).get("n"), Some(&Value::Int64(2)));
        assert_eq!(
            find(&Value::Int64(i64::MAX)).get("sum_v"),
            Some(&Value::Int64(101))
        );
        assert_eq!(find(&Value::Int64(i64::MAX - 1)).get("n"), Some(&Value::Int64(1)));
        assert_eq!(
            find(&Value::Int64(BIG)).get("n"),
            Some(&Value::Int64(2)),
            "2^53 int and 2^53 double are exactly equal and must share a bucket"
        );
        assert_eq!(find(&Value::Int64(BIG + 1)).get("n"), Some(&Value::Int64(1)));
        assert_eq!(find(&Value::Int64(i64::MIN)).get("n"), Some(&Value::Int64(1)));
        assert_eq!(find(&Value::Int64(i64::MIN + 1)).get("n"), Some(&Value::Int64(1)));
    }
}

#[test]
fn add_to_set_keeps_large_integers_distinct() {
    let c = coll();
    let p = Pipeline::new().group(
        GroupId::Null,
        [("ks", Accumulator::AddToSet(Expr::field("k")))],
    );
    for mode in ALL_MODES {
        let out = c.aggregate_with_mode(&p, None, mode).expect("aggregate");
        assert_eq!(out.len(), 1);
        let ks = out[0].get("ks").and_then(Value::as_array).expect("ks array");
        // 8 inputs, one true duplicate pair (MAX twice) and one exact
        // cross-type unification (2^53 int == 2^53 double).
        assert_eq!(ks.len(), 6, "mode {mode:?}: {ks:?}");
        assert!(ks.iter().any(|v| v.canonical_eq(&Value::Int64(i64::MAX))));
        assert!(ks.iter().any(|v| v.canonical_eq(&Value::Int64(i64::MAX - 1))));
        assert!(ks.iter().any(|v| v.canonical_eq(&Value::Int64(BIG + 1))));
    }
}

#[test]
fn in_set_probe_is_exact() {
    let filter = Filter::is_in("k", [i64::MAX - 1, BIG]);
    let compiled = compile(&filter);
    let docs = big_int_docs();
    let hits: Vec<i64> = docs
        .iter()
        .filter(|d| matches_compiled(&compiled, d))
        .map(|d| d.get("_id").unwrap().as_i64().unwrap())
        .collect();
    // MAX must NOT match an $in probe for MAX-1; the 2^53 double DOES
    // match the 2^53 int probe (exactly equal).
    assert_eq!(hits, vec![1, 3, 5]);
    let interp: Vec<i64> = docs
        .iter()
        .filter(|d| matches(&filter, d))
        .map(|d| d.get("_id").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(hits, interp, "compiled and interpreted $in disagree");
}

#[test]
fn sort_orders_large_integers_exactly() {
    let c = coll();
    let p = Pipeline::new().sort([("k", 1), ("_id", 1)]);
    for mode in ALL_MODES {
        let out = c.aggregate_with_mode(&p, None, mode).expect("aggregate");
        let ids: Vec<i64> =
            out.iter().map(|d| d.get("_id").unwrap().as_i64().unwrap()).collect();
        // MIN < MIN+1 < 2^53(int, _id 3) = 2^53(double, _id 5) < 2^53+1
        // < MAX-1 < MAX(_id 0) < MAX(_id 2); the equal pair falls back
        // to the _id tiebreak.
        assert_eq!(ids, vec![6, 7, 3, 5, 4, 1, 0, 2], "mode {mode:?}");
    }
}

#[test]
fn hashed_index_separates_large_integer_keys() {
    let c = coll();
    c.create_index(IndexDef::hashed("k")).expect("hashed index");
    let max_hits = c.find(&Filter::eq("k", i64::MAX));
    assert_eq!(max_hits.len(), 2, "{max_hits:?}");
    let near_hits = c.find(&Filter::eq("k", i64::MAX - 1));
    assert_eq!(near_hits.len(), 1, "{near_hits:?}");
    assert_eq!(near_hits[0].get("_id"), Some(&Value::Int64(1)));
    // Exact cross-type equality still routes through the index.
    let big_hits = c.find(&Filter::eq("k", BIG));
    assert_eq!(big_hits.len(), 2, "{big_hits:?}");
    let plan = c.explain(&Filter::eq("k", i64::MAX));
    assert!(plan.used_index, "hashed index should serve equality: {plan:?}");
}

#[test]
fn btree_index_separates_large_integer_keys() {
    let c = coll();
    c.create_index(IndexDef::single("k")).expect("btree index");
    assert_eq!(c.find(&Filter::eq("k", i64::MAX)).len(), 2);
    assert_eq!(c.find(&Filter::eq("k", i64::MAX - 1)).len(), 1);
    // Range probes around the cliff stay exact too.
    assert_eq!(c.find(&Filter::gte("k", i64::MAX)).len(), 2);
    assert_eq!(c.find(&Filter::gte("k", i64::MAX - 1)).len(), 3);
}
