//! Property tests: morsel-driven parallel execution agrees with the
//! streaming executor on generated pipelines — results *and* error
//! strings, at 2 and 8 workers, under deliberately tiny morsels so
//! every pipeline actually splits — plus a determinism property (same
//! input → byte-identical output across repeated parallel runs) and
//! collection-level agreement of `ExecMode::Parallel` with
//! `ExecMode::Streaming`.
//!
//! Accumulators stay integer-valued throughout (the PR-5 convention):
//! integer sums are exact under any partitioning, so partial-state
//! merging cannot introduce float-rounding noise into the comparison.

use doclite_bson::{doc, json::to_json, Document, Value};
use doclite_docstore::agg::{execute_parallel_with, execute_streaming};
use doclite_docstore::{
    set_parallel_morsel_size, set_parallel_workers, Accumulator, Database, ExecMode, Expr,
    Filter, GroupId, IndexDef, Pipeline, ProjectField, Stage,
};
use proptest::prelude::*;

/// Mostly the small colliding domain, with occasional integers past
/// the f64-precision cliff so grouping/sorting on `a` exercises the
/// exact large-integer comparison (neighbours here used to collide).
fn arb_group_key() -> BoxedStrategy<i64> {
    const BIG: i64 = 1 << 53;
    prop_oneof![
        (0..6i64).boxed(),
        (0..6i64).boxed(),
        (0..6i64).boxed(),
        prop_oneof![
            Just(i64::MIN),
            Just(-BIG - 1),
            Just(BIG),
            Just(BIG + 1),
            Just(i64::MAX - 1),
            Just(i64::MAX),
        ]
        .boxed(),
    ]
    .boxed()
}

/// Documents over a small value domain so matches, groups, and sort
/// ties all actually collide.
fn arb_doc() -> BoxedStrategy<Document> {
    (
        arb_group_key(),
        0..4i64,
        "[xyz]",
        prop::collection::vec(0..5i64, 0..3),
        0..4i64,
    )
        .prop_map(|(a, b, tag, xs, xs_kind)| {
            let mut d = doc! {"a" => a, "b" => b, "tag" => tag};
            match xs_kind {
                // Array, missing, null, and scalar: the four $unwind
                // input shapes MongoDB 3.0 distinguishes — and for the
                // fallible $add projection below, the array and missing
                // shapes are exactly the error and Null cases.
                0 => d.set(
                    "xs",
                    Value::Array(xs.into_iter().map(Value::Int64).collect()),
                ),
                2 => d.set("xs", Value::Null),
                3 => d.set("xs", Value::Int64(7)),
                _ => {}
            }
            d
        })
        .boxed()
}

fn arb_filter() -> BoxedStrategy<Filter> {
    prop_oneof![
        (0..6i64).prop_map(|k| Filter::eq("a", k)),
        (0..7i64).prop_map(|k| Filter::lt("a", k)),
        (0..4i64).prop_map(|k| Filter::gte("b", k)),
        Just(Filter::exists("xs")),
        (0..6i64, 0..4i64)
            .prop_map(|(x, y)| Filter::and([Filter::gte("a", x), Filter::lt("b", y)])),
        (0..6i64, 0..4i64)
            .prop_map(|(x, y)| Filter::or([Filter::eq("a", x), Filter::eq("b", y)])),
    ]
    .boxed()
}

fn arb_sort_spec() -> BoxedStrategy<Vec<(String, i32)>> {
    prop_oneof![
        Just(vec![("a".to_string(), 1)]),
        Just(vec![("b".to_string(), -1), ("a".to_string(), 1)]),
        Just(vec![("tag".to_string(), 1), ("a".to_string(), -1)]),
    ]
    .boxed()
}

fn arb_group() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(GroupId::Null),
        Just(GroupId::Expr(Expr::field("a"))),
        Just(GroupId::Expr(Expr::field("tag"))),
        // A fallible group key: $add errors on array-valued xs, so the
        // first-error-in-document-order convention gets exercised at
        // the terminal too, not just in the per-document prefix.
        Just(GroupId::Expr(Expr::Add(vec![Expr::field("xs"), Expr::lit(1i64)]))),
    ]
    .prop_map(|id| Stage::Group {
        id,
        fields: vec![
            ("n".to_string(), Accumulator::count()),
            // Integer-valued accumulators: exact under any partitioning.
            ("sum_b".to_string(), Accumulator::sum_field("b")),
            ("avg_a".to_string(), Accumulator::avg_field("a")),
            ("first".to_string(), Accumulator::First(Expr::field("b"))),
            ("last".to_string(), Accumulator::Last(Expr::field("b"))),
            ("set".to_string(), Accumulator::AddToSet(Expr::field("b"))),
        ],
    })
    .boxed()
}

fn arb_project() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(Stage::Project(vec![
            ("a".to_string(), ProjectField::Include),
            ("tag".to_string(), ProjectField::Include),
        ])),
        Just(Stage::Project(vec![("xs".to_string(), ProjectField::Exclude)])),
        Just(Stage::Project(vec![
            ("b".to_string(), ProjectField::Include),
            ("s".to_string(), ProjectField::Compute(Expr::field("a"))),
        ])),
        // Fallible: $add over array-valued xs errors, over missing xs
        // yields Null, over scalar xs succeeds — error positions vary
        // with the data, probing the morsel-order error convention.
        Just(Stage::Project(vec![(
            "y".to_string(),
            ProjectField::Compute(Expr::Add(vec![Expr::field("xs"), Expr::lit(1i64)])),
        )])),
    ]
    .boxed()
}

/// Any stage, including bare `$skip`/`$limit` (which force the parallel
/// planner's lazy-prefix truncation) and the fallible projections.
fn arb_stage() -> BoxedStrategy<Stage> {
    prop_oneof![
        arb_filter().prop_map(Stage::Match),
        arb_project(),
        arb_sort_spec().prop_map(Stage::Sort),
        (0..15usize).prop_map(Stage::Limit),
        (0..8usize).prop_map(Stage::Skip),
        Just(Stage::Unwind("xs".to_string())),
        Just(Stage::Unwind("$xs".to_string())),
        Just(Stage::Count("n".to_string())),
        arb_group(),
    ]
    .boxed()
}

/// Stages whose output is order-insensitive as a multiset — safe to
/// compare across executors that enumerate the collection differently.
/// Excludes the fallible group key (an error's identity depends on
/// enumeration order, which legitimately differs at collection level).
fn arb_order_insensitive_stage() -> BoxedStrategy<Stage> {
    prop_oneof![
        arb_filter().prop_map(Stage::Match),
        Just(Stage::Project(vec![
            ("a".to_string(), ProjectField::Include),
            ("tag".to_string(), ProjectField::Include),
        ])),
        arb_sort_spec().prop_map(Stage::Sort),
        Just(Stage::Unwind("xs".to_string())),
        Just(Stage::Count("n".to_string())),
        Just(Stage::Group {
            id: GroupId::Expr(Expr::field("a")),
            fields: vec![
                ("n".to_string(), Accumulator::count()),
                ("sum_b".to_string(), Accumulator::sum_field("b")),
            ],
        }),
    ]
    .boxed()
}

fn build_pipeline(stages: &[Stage]) -> Pipeline {
    stages.iter().fold(Pipeline::new(), |p, s| p.stage(s.clone()))
}

fn multiset(docs: &[Document]) -> Vec<String> {
    let mut v: Vec<String> = docs.iter().map(to_json).collect();
    v.sort();
    v
}

/// Configures the process-global knobs every test in this binary uses.
/// All tests set the same values, so concurrent test threads cannot
/// observe a conflicting configuration.
fn configure_globals() {
    set_parallel_workers(4);
    set_parallel_morsel_size(5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline property: serial, 2-worker, and 8-worker execution
    /// agree on every generated pipeline × dataset — identical documents
    /// on success, identical error strings on failure — under a morsel
    /// size small enough that even tiny inputs split.
    #[test]
    fn parallel_agrees_with_serial_including_errors(
        docs in prop::collection::vec(arb_doc(), 0..40),
        stages in prop::collection::vec(arb_stage(), 0..5),
    ) {
        let serial = execute_streaming(docs.clone(), &stages, None);
        for workers in [2usize, 8] {
            let par = execute_parallel_with(&docs, &stages, None, workers, 3);
            match (&serial, &par) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "workers={}", workers),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "workers={}", workers)
                }
                _ => prop_assert!(
                    false,
                    "workers={}: serial {:?} vs parallel {:?}",
                    workers,
                    serial.as_ref().map(|d| d.len()),
                    par.as_ref().map(|d| d.len())
                ),
            }
        }
    }

    /// Determinism: repeated parallel runs of the same pipeline over the
    /// same input are byte-identical, regardless of worker scheduling.
    #[test]
    fn parallel_execution_is_deterministic(
        docs in prop::collection::vec(arb_doc(), 0..40),
        stages in prop::collection::vec(arb_stage(), 0..4),
    ) {
        let fingerprint = |r: &Result<Vec<Document>, doclite_docstore::Error>| match r {
            Ok(docs) => docs.iter().map(to_json).collect::<Vec<_>>().join("\n"),
            Err(e) => format!("ERR:{e}"),
        };
        let first = fingerprint(&execute_parallel_with(&docs, &stages, None, 8, 3));
        for _ in 0..2 {
            let again = fingerprint(&execute_parallel_with(&docs, &stages, None, 8, 3));
            prop_assert_eq!(&first, &again);
        }
    }

    /// Collection-level: `ExecMode::Parallel` through the planner
    /// (snapshot + residual match) agrees with `ExecMode::Streaming` as
    /// a multiset on order-insensitive pipelines.
    #[test]
    fn collection_parallel_mode_agrees_as_multisets(
        docs in prop::collection::vec(arb_doc(), 0..40),
        stages in prop::collection::vec(arb_order_insensitive_stage(), 0..4),
    ) {
        configure_globals();
        let db = Database::new("t");
        let coll = db.collection("c");
        coll.insert_many(docs).map_err(|(_, e)| e).unwrap();
        // An index on `a` so leading $match stages take the planner's
        // index-backed scan in both modes.
        coll.create_index(IndexDef::single("a")).unwrap();
        let p = build_pipeline(&stages);
        let streaming = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
        let parallel = coll.aggregate_with_mode(&p, None, ExecMode::Parallel).unwrap();
        prop_assert_eq!(multiset(&streaming), multiset(&parallel));
    }

    /// Collection-level exact agreement when a full-key sort makes the
    /// order total, window included.
    #[test]
    fn collection_parallel_mode_agrees_exactly_under_total_sort(
        docs in prop::collection::vec(arb_doc(), 0..40),
        filter in arb_filter(),
        skip in 0..6usize,
        limit in 1..12usize,
    ) {
        configure_globals();
        let db = Database::new("t");
        let coll = db.collection("c");
        coll.insert_many(docs).map_err(|(_, e)| e).unwrap();
        coll.create_index(IndexDef::single("a")).unwrap();
        let p = Pipeline::new()
            .match_stage(filter)
            .sort([("a", 1), ("_id", 1)])
            .skip(skip)
            .limit(limit);
        let streaming = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
        let parallel = coll.aggregate_with_mode(&p, None, ExecMode::Parallel).unwrap();
        prop_assert_eq!(streaming, parallel);
    }
}
