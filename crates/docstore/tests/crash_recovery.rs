//! Crash/recovery suite: WAL prefix cuts, torn writes, and bit flips.
//!
//! The central property: for a log cut at *any* byte inside the final
//! frame, recovery reproduces exactly the state as of the last intact
//! commit — never a torn document, never a lost earlier write.

use doclite_bson::doc;
use doclite_docstore::wal::{db_fingerprint, DurableDb, SyncPolicy, WalOptions};
use doclite_docstore::{Filter, StorageFaults, UpdateSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "doclite-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> WalOptions {
    WalOptions { sync: SyncPolicy::Always, faults: None }
}

const WAL_MAGIC_LEN: usize = 8;
const FRAME_HEADER: usize = 16;

/// Byte offsets of frame starts, plus the end offset of the last frame.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut pos = WAL_MAGIC_LEN;
    let mut bounds = vec![pos];
    while pos + FRAME_HEADER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + FRAME_HEADER + len > bytes.len() {
            break;
        }
        pos += FRAME_HEADER + len;
        bounds.push(pos);
    }
    bounds
}

/// Recovers a store whose `wal.log` is `bytes` truncated to `cut`, and
/// returns its fingerprint.
fn fingerprint_of_prefix(dir: &PathBuf, bytes: &[u8], cut: usize) -> doclite_bson::Document {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("wal.log"), &bytes[..cut]).unwrap();
    let (d, _) = DurableDb::open("db", dir, opts()).unwrap();
    db_fingerprint(d.db())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cut the log at every byte boundary of the final frame: recovery
    /// must equal the state as of the last intact commit, and the cut
    /// bytes must register as a torn tail (except at the exact frame
    /// boundary, where nothing is torn).
    #[test]
    fn prefix_cut_recovers_last_intact_commit(
        keys in proptest::collection::vec(0i64..1_000_000, 2..7),
        pad in 1usize..40,
    ) {
        let base = tmp("prefix");
        {
            let (d, _) = DurableDb::open("db", &base, opts()).unwrap();
            let c = d.db().collection("c");
            for (i, k) in keys.iter().enumerate() {
                // _id = position so duplicate keys stay insertable.
                c.insert_one(doc! {"_id" => i as i64, "k" => *k, "pad" => "x".repeat(pad)})
                    .unwrap();
            }
        }
        let bytes = std::fs::read(base.join("wal.log")).unwrap();
        let bounds = frame_boundaries(&bytes);
        prop_assert_eq!(bounds.len() - 1, keys.len(), "one frame per insert");
        let prev = bounds[bounds.len() - 2];
        let end = *bounds.last().unwrap();
        prop_assert_eq!(end, bytes.len(), "no trailing garbage in a clean log");

        let trial = tmp("prefix-trial");
        let expect_prev = fingerprint_of_prefix(&trial, &bytes, prev);
        let expect_full = fingerprint_of_prefix(&trial, &bytes, end);
        prop_assert_ne!(&expect_prev, &expect_full);

        for cut in prev..end {
            let _ = std::fs::remove_dir_all(&trial);
            std::fs::create_dir_all(&trial).unwrap();
            std::fs::write(trial.join("wal.log"), &bytes[..cut]).unwrap();
            let (d, report) = DurableDb::open("db", &trial, opts()).unwrap();
            prop_assert_eq!(&db_fingerprint(d.db()), &expect_prev, "cut at byte {}", cut);
            prop_assert_eq!(report.torn_tail, cut > prev, "cut at byte {}", cut);
            prop_assert_eq!(report.frames_replayed as usize, keys.len() - 1);
        }
        let full = fingerprint_of_prefix(&trial, &bytes, end);
        prop_assert_eq!(&full, &expect_full);

        std::fs::remove_dir_all(&base).unwrap();
        std::fs::remove_dir_all(&trial).unwrap();
    }
}

/// A torn write (half the frame hits disk, then the process dies) rolls
/// back to the pre-write state on recovery.
#[test]
fn torn_write_rolls_back_to_last_commit() {
    let dir = tmp("torn");
    let faults = StorageFaults::new();
    {
        let (d, _) = DurableDb::open(
            "db",
            &dir,
            WalOptions { sync: SyncPolicy::Always, faults: Some(faults.clone()) },
        )
        .unwrap();
        let c = d.db().collection("c");
        c.insert_one(doc! {"_id" => 1i64, "v" => "keep"}).unwrap();
        faults.tear_next_write();
        let err = c.insert_one(doc! {"_id" => 2i64, "v" => "torn away"});
        assert!(err.is_err(), "the write must not be acknowledged");
        assert!(faults.crashed());
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert!(report.torn_tail, "half a frame is on disk");
    assert_eq!(report.frames_replayed, 1);
    let c = d.db().get_collection("c").unwrap();
    assert_eq!(c.len(), 1);
    assert!(c.find_one(&Filter::eq("_id", 1i64)).is_some());
    assert!(c.find_one(&Filter::eq("_id", 2i64)).is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A byte-budget crash cuts the log mid-frame at an arbitrary offset;
/// recovery keeps every acknowledged write and drops the torn one.
#[test]
fn crash_after_bytes_preserves_acknowledged_prefix() {
    let dir = tmp("budget");
    let faults = StorageFaults::new();
    {
        let (d, _) = DurableDb::open(
            "db",
            &dir,
            WalOptions { sync: SyncPolicy::Always, faults: Some(faults.clone()) },
        )
        .unwrap();
        let c = d.db().collection("c");
        // Arm a budget that admits a few whole frames and then dies
        // somewhere inside a later one.
        faults.crash_after_bytes(200);
        let mut acked = 0i64;
        for i in 0..100i64 {
            match c.insert_one(doc! {"_id" => i, "v" => "some payload"}) {
                Ok(_) => acked = i + 1,
                Err(_) => break,
            }
        }
        assert!(acked > 0, "the budget admits at least one frame");
        assert!(faults.crashed(), "the budget is small enough to trip");
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    let c = d.db().get_collection("c").unwrap();
    // Every acknowledged insert is present; the torn one is not. (The
    // torn frame was cut mid-write, so a tail must have been discarded.)
    assert!(report.torn_tail);
    assert_eq!(c.len() as u64, report.frames_replayed);
    for i in 0..report.frames_replayed as i64 {
        assert!(
            c.find_one(&Filter::eq("_id", i)).is_some(),
            "acknowledged _id {i} lost"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A bit flip in the middle of the log is caught by the frame CRC:
/// recovery stops at the corrupt frame rather than replaying garbage.
#[test]
fn bit_flip_is_caught_by_frame_crc() {
    let dir = tmp("bitflip");
    {
        let (d, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = d.db().collection("c");
        for i in 0..10i64 {
            c.insert_one(doc! {"_id" => i, "v" => "payload payload"}).unwrap();
        }
    }
    let path = dir.join("wal.log");
    let mut bytes = std::fs::read(&path).unwrap();
    let bounds = frame_boundaries(&bytes);
    // Flip one byte inside the 6th frame's body.
    let target = bounds[5] + FRAME_HEADER + 3;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert!(report.torn_tail, "the corrupt frame and everything after it is dropped");
    assert_eq!(report.frames_replayed, 5);
    assert_eq!(d.db().get_collection("c").unwrap().len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Transient EIO fails the write without corrupting the log: the store
/// keeps working once the fault clears, and recovery sees every
/// successfully acknowledged write.
#[test]
fn transient_eio_is_not_fatal_to_the_log() {
    let dir = tmp("eio");
    let faults = StorageFaults::new();
    {
        let (d, _) = DurableDb::open(
            "db",
            &dir,
            WalOptions { sync: SyncPolicy::Always, faults: Some(faults.clone()) },
        )
        .unwrap();
        let c = d.db().collection("c");
        c.insert_one(doc! {"_id" => 1i64}).unwrap();
        faults.transient_eio(1);
        assert!(c.insert_one(doc! {"_id" => 2i64}).is_err(), "EIO surfaces");
        // The failed insert was rolled back from memory too, so the
        // live store already matches what recovery will rebuild.
        assert_eq!(c.len(), 1);
        // The fault has passed; later writes succeed.
        c.insert_one(doc! {"_id" => 3i64}).unwrap();
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert!(!report.torn_tail, "EIO left no partial frame");
    let c = d.db().get_collection("c").unwrap();
    assert!(c.find_one(&Filter::eq("_id", 1i64)).is_some());
    assert!(c.find_one(&Filter::eq("_id", 3i64)).is_some());
    // _id 2 was never acknowledged anywhere: not in the log, and rolled
    // back from memory when the append failed.
    assert!(c.find_one(&Filter::eq("_id", 2i64)).is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A WAL append failure rolls the in-memory apply back, so the live
/// store never diverges from what recovery would rebuild — and a
/// clean-shutdown seal written later still verifies.
#[test]
fn eio_rolls_back_insert_update_and_delete_in_memory() {
    let dir = tmp("eio-rollback");
    let faults = StorageFaults::new();
    {
        let (d, _) = DurableDb::open(
            "db",
            &dir,
            WalOptions { sync: SyncPolicy::Always, faults: Some(faults.clone()) },
        )
        .unwrap();
        let c = d.db().collection("c");
        c.insert_one(doc! {"_id" => 1i64, "v" => "original"}).unwrap();

        // Insert rollback: the same _id stays insertable afterwards.
        faults.transient_eio(1);
        assert!(c.insert_one(doc! {"_id" => 2i64}).is_err());
        assert_eq!(c.len(), 1);
        c.insert_one(doc! {"_id" => 2i64}).unwrap();

        // Update rollback: the document keeps its pre-update value.
        faults.transient_eio(1);
        assert!(c
            .update(&Filter::eq("_id", 1i64), &UpdateSpec::set("v", "changed"), false, true)
            .is_err());
        assert_eq!(
            c.find_one(&Filter::eq("_id", 1i64)).unwrap().get("v"),
            Some(&doclite_bson::Value::from("original"))
        );

        // Upsert rollback: the seeded document does not survive.
        faults.transient_eio(1);
        assert!(c
            .update(&Filter::eq("_id", 9i64), &UpdateSpec::set("v", "seed"), true, true)
            .is_err());
        assert!(c.find_one(&Filter::eq("_id", 9i64)).is_none());

        // Delete rollback: the fallible form errors, the documents stay.
        faults.transient_eio(1);
        assert!(c.try_delete_many(&Filter::True).is_err());
        assert_eq!(c.len(), 2);
        // The infallible wrapper reports 0 removed under the same fault.
        faults.transient_eio(1);
        assert_eq!(c.delete_many(&Filter::eq("_id", 2i64)), 0);
        assert_eq!(c.len(), 2);

        // Memory matches the log, so the seal fingerprint verifies.
        d.seal().unwrap();
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert!(report.sealed, "fingerprint of the rolled-back state verifies");
    let c = d.db().get_collection("c").unwrap();
    assert_eq!(c.len(), 2);
    assert_eq!(
        c.find_one(&Filter::eq("_id", 1i64)).unwrap().get("v"),
        Some(&doclite_bson::Value::from("original"))
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A delete large enough that a single WAL frame would blow the scan cap
/// (and, pre-fix, silently truncate the log) survives recovery via
/// chunked Delete frames.
#[test]
fn huge_delete_survives_recovery_via_chunked_frames() {
    let dir = tmp("huge-delete");
    {
        let (d, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = d.db().collection("c");
        // ~700 KB string _ids × 40 docs ≈ 28 MB of ids: far over the
        // one-frame cap once logged as a single Delete record.
        for i in 0..40i64 {
            c.insert_one(doc! {"_id" => format!("{i:04}-{}", "x".repeat(700 * 1024))})
                .unwrap();
        }
        assert_eq!(c.delete_many(&Filter::True), 40);
        // A write *after* the delete: pre-fix, the oversized frame made
        // this one unreachable to the recovery scan.
        d.db().collection("after").insert_one(doc! {"_id" => 1i64}).unwrap();
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert!(!report.torn_tail, "chunked frames all scan cleanly");
    assert_eq!(d.db().get_collection("c").unwrap().len(), 0, "deletes replayed");
    assert_eq!(d.db().get_collection("after").unwrap().len(), 1, "later write reachable");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoint + post-checkpoint WAL writes + crash: recovery stitches
/// both together.
#[test]
fn checkpoint_plus_wal_tail_recovers_combined_state() {
    let dir = tmp("stitch");
    {
        let (d, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = d.db().collection("c");
        c.insert_many((0..30i64).map(|i| doc! {"_id" => i, "v" => i})).unwrap();
        d.checkpoint().unwrap();
        c.insert_many((30..40i64).map(|i| doc! {"_id" => i, "v" => i})).unwrap();
        c.delete_many(&Filter::eq("_id", 0i64));
    }
    let (d, report) = DurableDb::open("db", &dir, opts()).unwrap();
    assert_eq!(report.checkpoint_docs, 30);
    assert!(report.frames_replayed >= 2, "inserts + delete replayed from the log");
    let c = d.db().get_collection("c").unwrap();
    assert_eq!(c.len(), 39);
    assert!(c.find_one(&Filter::eq("_id", 0i64)).is_none());
    assert!(c.find_one(&Filter::eq("_id", 39i64)).is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}
