//! Property tests: the streaming executor agrees with the legacy
//! materializing executor on generated pipelines.
//!
//! Two levels:
//!
//! * **Function level** — `exec::execute` vs `stream::execute_streaming`
//!   over the same owned input must agree *exactly*, order included:
//!   both define the pipeline semantics over a fixed input order.
//! * **Collection level** — `aggregate_with_mode(Legacy)` vs
//!   `(Streaming)` must agree as *multisets*: the streaming path feeds
//!   the executor in planner candidate order, which for an index-backed
//!   `$match` is index order rather than slot order, so pipelines
//!   without an order-sensitive window may permute the output. Windowed
//!   stages (`$skip`/`$limit`) are exercised at the collection level
//!   only behind a full-key `$sort` that makes the order total.

use doclite_bson::{doc, json::to_json, Document, Value};
use doclite_docstore::agg::{exec, execute_streaming};
use doclite_docstore::{
    Accumulator, Database, ExecMode, Expr, Filter, GroupId, IndexDef, Pipeline, ProjectField,
    Stage,
};
use proptest::prelude::*;

/// Mostly the small colliding domain, with occasional integers past
/// the f64-precision cliff so grouping/sorting on `a` exercises the
/// exact large-integer comparison (neighbours here used to collide).
fn arb_group_key() -> BoxedStrategy<i64> {
    const BIG: i64 = 1 << 53;
    prop_oneof![
        (0..6i64).boxed(),
        (0..6i64).boxed(),
        (0..6i64).boxed(),
        prop_oneof![
            Just(i64::MIN),
            Just(-BIG - 1),
            Just(BIG),
            Just(BIG + 1),
            Just(i64::MAX - 1),
            Just(i64::MAX),
        ]
        .boxed(),
    ]
    .boxed()
}

/// Documents over a small value domain so matches, groups, and sort
/// ties all actually collide.
fn arb_doc() -> BoxedStrategy<Document> {
    (
        arb_group_key(),
        0..4i64,
        "[xyz]",
        prop::collection::vec(0..5i64, 0..3),
        0..4i64,
    )
        .prop_map(|(a, b, tag, xs, xs_kind)| {
            let mut d = doc! {"a" => a, "b" => b, "tag" => tag};
            match xs_kind {
                // Array, missing, null, and scalar: the four $unwind
                // input shapes MongoDB 3.0 distinguishes.
                0 => d.set(
                    "xs",
                    Value::Array(xs.into_iter().map(Value::Int64).collect()),
                ),
                2 => d.set("xs", Value::Null),
                3 => d.set("xs", Value::Int64(7)),
                _ => {}
            }
            d
        })
        .boxed()
}

fn arb_filter() -> BoxedStrategy<Filter> {
    prop_oneof![
        (0..6i64).prop_map(|k| Filter::eq("a", k)),
        (0..7i64).prop_map(|k| Filter::lt("a", k)),
        (0..4i64).prop_map(|k| Filter::gte("b", k)),
        Just(Filter::exists("xs")),
        (0..6i64, 0..4i64).prop_map(|(x, y)| {
            Filter::and([Filter::gte("a", x), Filter::lt("b", y)])
        }),
        (0..6i64, 0..4i64)
            .prop_map(|(x, y)| Filter::or([Filter::eq("a", x), Filter::eq("b", y)])),
    ]
    .boxed()
}

fn arb_sort_spec() -> BoxedStrategy<Vec<(String, i32)>> {
    prop_oneof![
        Just(vec![("a".to_string(), 1)]),
        Just(vec![("b".to_string(), -1), ("a".to_string(), 1)]),
        Just(vec![("tag".to_string(), 1), ("a".to_string(), -1)]),
    ]
    .boxed()
}

fn arb_group() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(GroupId::Null),
        Just(GroupId::Expr(Expr::field("a"))),
        Just(GroupId::Expr(Expr::field("tag"))),
    ]
    .prop_map(|id| Stage::Group {
        id,
        fields: vec![
            ("n".to_string(), Accumulator::count()),
            // Integer-valued accumulators: exact under any input order.
            ("sum_b".to_string(), Accumulator::sum_field("b")),
            ("avg_a".to_string(), Accumulator::avg_field("a")),
        ],
    })
    .boxed()
}

fn arb_project() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(Stage::Project(vec![
            ("a".to_string(), ProjectField::Include),
            ("tag".to_string(), ProjectField::Include),
        ])),
        Just(Stage::Project(vec![(
            "xs".to_string(),
            ProjectField::Exclude
        )])),
        Just(Stage::Project(vec![
            ("b".to_string(), ProjectField::Include),
            ("s".to_string(), ProjectField::Compute(Expr::field("a"))),
        ])),
    ]
    .boxed()
}

/// Any stage, including the order-sensitive `$skip`/`$limit` window.
fn arb_stage() -> BoxedStrategy<Stage> {
    prop_oneof![
        arb_filter().prop_map(Stage::Match),
        arb_project(),
        arb_sort_spec().prop_map(Stage::Sort),
        (0..15usize).prop_map(Stage::Limit),
        (0..8usize).prop_map(Stage::Skip),
        Just(Stage::Unwind("xs".to_string())),
        Just(Stage::Unwind("$xs".to_string())),
        Just(Stage::Count("n".to_string())),
        arb_group(),
    ]
    .boxed()
}

/// Stages whose output is order-insensitive as a multiset — safe to
/// compare across executors that enumerate the collection differently.
fn arb_order_insensitive_stage() -> BoxedStrategy<Stage> {
    prop_oneof![
        arb_filter().prop_map(Stage::Match),
        arb_project(),
        arb_sort_spec().prop_map(Stage::Sort),
        Just(Stage::Unwind("xs".to_string())),
        Just(Stage::Count("n".to_string())),
        arb_group(),
    ]
    .boxed()
}

fn build_pipeline(stages: &[Stage]) -> Pipeline {
    stages
        .iter()
        .fold(Pipeline::new(), |p, s| p.stage(s.clone()))
}

fn multiset(docs: &[Document]) -> Vec<String> {
    let mut v: Vec<String> = docs.iter().map(to_json).collect();
    v.sort();
    v
}

/// Regression for the fused `$sort` window: a `$limit` followed by a
/// larger `$skip` inverts the window (`start > end`), which must behave
/// like the legacy executor (empty result), not panic on slicing.
#[test]
fn sort_limit_then_larger_skip_matches_legacy() {
    let docs: Vec<Document> = (0..10i64).map(|i| doc! {"a" => i % 3, "_id" => i}).collect();
    for stages in [
        vec![
            Stage::Sort(vec![("a".into(), 1), ("_id".into(), 1)]),
            Stage::Limit(3),
            Stage::Skip(5),
        ],
        vec![
            Stage::Sort(vec![("a".into(), -1)]),
            Stage::Skip(2),
            Stage::Limit(4),
            Stage::Skip(9),
            Stage::Limit(1),
        ],
    ] {
        let legacy = exec::execute(docs.clone(), &stages).unwrap();
        let streaming = execute_streaming(docs.clone(), &stages, None).unwrap();
        assert_eq!(legacy, streaming);
        assert!(legacy.is_empty());
    }
}

/// A `$sort` followed by an arbitrary `$skip`/`$limit` chain — the
/// fusion subspace the general stage generator samples too thinly to
/// hit degenerate windows (e.g. limit-then-larger-skip) reliably.
fn arb_window_chain() -> BoxedStrategy<Vec<Stage>> {
    prop::collection::vec(
        prop_oneof![
            (0..10usize).prop_map(Stage::Skip),
            (0..10usize).prop_map(Stage::Limit),
        ],
        0..4,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sort_window_chains_agree_exactly(
        docs in prop::collection::vec(arb_doc(), 0..20),
        spec in arb_sort_spec(),
        chain in arb_window_chain(),
    ) {
        let mut stages = vec![Stage::Sort(spec)];
        stages.extend(chain);
        let legacy = exec::execute(docs.clone(), &stages).unwrap();
        let streaming = execute_streaming(docs, &stages, None).unwrap();
        prop_assert_eq!(legacy, streaming);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn executors_agree_exactly_on_owned_input(
        docs in prop::collection::vec(arb_doc(), 0..30),
        stages in prop::collection::vec(arb_stage(), 0..5),
    ) {
        let legacy = exec::execute(docs.clone(), &stages).unwrap();
        let streaming = execute_streaming(docs, &stages, None).unwrap();
        prop_assert_eq!(legacy, streaming);
    }

    #[test]
    fn collection_modes_agree_as_multisets(
        docs in prop::collection::vec(arb_doc(), 0..40),
        stages in prop::collection::vec(arb_order_insensitive_stage(), 0..4),
    ) {
        let db = Database::new("t");
        let coll = db.collection("c");
        coll.insert_many(docs).map_err(|(_, e)| e).unwrap();
        // An index on `a` so leading $match stages take the planner's
        // index-backed scan in streaming mode.
        coll.create_index(IndexDef::single("a")).unwrap();
        let p = build_pipeline(&stages);
        let legacy = coll.aggregate_with_mode(&p, None, ExecMode::Legacy).unwrap();
        let streaming = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
        prop_assert_eq!(multiset(&legacy), multiset(&streaming));
    }

    #[test]
    fn collection_modes_agree_exactly_under_total_sort(
        docs in prop::collection::vec(arb_doc(), 0..40),
        filter in arb_filter(),
        skip in 0..6usize,
        limit in 1..12usize,
    ) {
        let db = Database::new("t");
        let coll = db.collection("c");
        coll.insert_many(docs).map_err(|(_, e)| e).unwrap();
        coll.create_index(IndexDef::single("a")).unwrap();
        // Sorting by (a, _id) totally orders the documents, so the
        // window selects the same documents whichever order the
        // executor enumerated the collection in.
        let p = Pipeline::new()
            .match_stage(filter)
            .sort([("a", 1), ("_id", 1)])
            .skip(skip)
            .limit(limit);
        let legacy = coll.aggregate_with_mode(&p, None, ExecMode::Legacy).unwrap();
        let streaming = coll.aggregate_with_mode(&p, None, ExecMode::Streaming).unwrap();
        prop_assert_eq!(legacy, streaming);
    }
}
