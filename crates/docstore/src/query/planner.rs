//! Query planning: index selection under the index-prefix rule.
//!
//! Thesis Section 2.1.2 describes MongoDB's prefix rule: a compound index
//! on `(a, b, c)` serves queries constraining `a`, `a,b`, or `a,b,c`. The
//! planner extracts per-path constraints from the conjunctive part of a
//! filter, scores each index by its usable equality prefix (plus a final
//! range), and picks the best. The full filter is always re-applied as a
//! residual, so plans are correct even when the index key is a
//! conservative over-approximation (multikey, partial prefix, `$or`).

use super::filter::{CmpOp, Filter};
use crate::index::{Index, IndexKind};
use crate::ordvalue::CompoundKey;
use doclite_bson::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Per-path constraint derived from a filter's conjunctive predicates.
#[derive(Clone, Debug, Default)]
pub struct PathConstraint {
    /// Equality set: the path must equal one of these (`$eq` → 1 value,
    /// `$in` → n values). Empty set = unsatisfiable.
    pub eq_set: Option<Vec<Value>>,
    /// Lower bound (value, inclusive).
    pub min: Option<(Value, bool)>,
    /// Upper bound (value, inclusive).
    pub max: Option<(Value, bool)>,
}

impl PathConstraint {
    fn add_eq(&mut self, v: Value) {
        match &mut self.eq_set {
            None => self.eq_set = Some(vec![v]),
            Some(set) => {
                // Conjunction of equalities: intersect.
                set.retain(|x| x.canonical_eq(&v));
            }
        }
    }

    fn add_in(&mut self, values: &[Value]) {
        match &mut self.eq_set {
            None => self.eq_set = Some(values.to_vec()),
            Some(set) => set.retain(|x| values.iter().any(|v| v.canonical_eq(x))),
        }
    }

    fn add_min(&mut self, v: Value, inclusive: bool) {
        let tighter = match &self.min {
            None => true,
            Some((cur, cur_incl)) => match v.canonical_cmp(cur) {
                Ordering::Greater => true,
                Ordering::Equal => *cur_incl && !inclusive,
                Ordering::Less => false,
            },
        };
        if tighter {
            self.min = Some((v, inclusive));
        }
    }

    fn add_max(&mut self, v: Value, inclusive: bool) {
        let tighter = match &self.max {
            None => true,
            Some((cur, cur_incl)) => match v.canonical_cmp(cur) {
                Ordering::Less => true,
                Ordering::Equal => *cur_incl && !inclusive,
                Ordering::Greater => false,
            },
        };
        if tighter {
            self.max = Some((v, inclusive));
        }
    }

    /// True if the constraint pins the path to exact value(s).
    pub fn is_equality(&self) -> bool {
        self.eq_set.is_some()
    }

    /// True if there is a usable range bound.
    pub fn has_range(&self) -> bool {
        self.min.is_some() || self.max.is_some()
    }
}

/// Extracts per-path constraints from the top-level conjunction of a
/// filter. Disjunctions (`$or`/`$nor`/`$not`) contribute nothing — they
/// cannot narrow an index scan conservatively. Also used by the sharding
/// router to decide targeted-vs-broadcast (thesis Section 4.3 item iii).
pub fn conjunctive_constraints(filter: &Filter) -> HashMap<String, PathConstraint> {
    let mut map: HashMap<String, PathConstraint> = HashMap::new();
    collect(filter, &mut map);
    map
}

fn collect(filter: &Filter, map: &mut HashMap<String, PathConstraint>) {
    match filter {
        Filter::And(fs) => {
            for f in fs {
                collect(f, map);
            }
        }
        Filter::Cmp { path, op, value } => {
            let c = map.entry(path.clone()).or_default();
            match op {
                CmpOp::Eq => c.add_eq(value.clone()),
                CmpOp::Gt => c.add_min(value.clone(), false),
                CmpOp::Gte => c.add_min(value.clone(), true),
                CmpOp::Lt => c.add_max(value.clone(), false),
                CmpOp::Lte => c.add_max(value.clone(), true),
                CmpOp::Ne => {}
            }
        }
        Filter::In { path, values } => {
            map.entry(path.clone()).or_default().add_in(values);
        }
        // $or/$nor/$not/$nin/$exists/True: no conjunctive narrowing.
        _ => {}
    }
}

/// How a query will fetch candidate documents.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanKind {
    /// Scan every live document.
    CollScan,
    /// Point lookups on full index keys (equality on every index field).
    IndexEq { index: String, keys: Vec<CompoundKey> },
    /// B-tree range scan on the index's first field.
    IndexRange {
        index: String,
        min: Option<(Value, bool)>,
        max: Option<(Value, bool)>,
    },
}

/// A chosen plan: a fetch strategy plus the residual filter that is always
/// re-applied to candidates.
#[derive(Clone, Debug)]
pub struct Plan {
    pub kind: PlanKind,
    pub residual: Filter,
}

impl Plan {
    /// Short explain string, e.g. `IXSCAN { d_year_1 }` / `COLLSCAN`.
    pub fn describe(&self) -> String {
        match &self.kind {
            PlanKind::CollScan => "COLLSCAN".to_owned(),
            PlanKind::IndexEq { index, keys } => {
                format!("IXSCAN {{ {index} }} ({} point lookup(s))", keys.len())
            }
            PlanKind::IndexRange { index, .. } => format!("IXSCAN {{ {index} }} (range)"),
        }
    }

    /// True if the plan uses an index.
    pub fn uses_index(&self) -> bool {
        !matches!(self.kind, PlanKind::CollScan)
    }
}

/// Upper bound on the cartesian expansion of `$in` sets into point
/// lookups; beyond this the planner degrades to a first-field range or a
/// collection scan.
const MAX_POINT_LOOKUPS: usize = 1024;

/// Picks the best plan for a filter over the available indexes.
pub fn plan(filter: &Filter, indexes: &[Index]) -> Plan {
    let constraints = conjunctive_constraints(filter);
    let mut best: Option<(usize, PlanKind)> = None; // (score, kind)

    for idx in indexes {
        let Some(candidate) = plan_for_index(idx, &constraints) else {
            continue;
        };
        let score = score(&candidate, idx);
        let better = match &best {
            None => true,
            Some((best_score, _)) => score > *best_score,
        };
        if better {
            best = Some((score, candidate));
        }
    }

    Plan {
        kind: best.map_or(PlanKind::CollScan, |(_, k)| k),
        residual: filter.clone(),
    }
}

fn score(kind: &PlanKind, idx: &Index) -> usize {
    match kind {
        PlanKind::CollScan => 0,
        // Full-key equality is the most selective; weight by key arity so
        // a compound full-key match beats a single-field one.
        PlanKind::IndexEq { .. } => 100 + idx.def.fields.len() * 10,
        PlanKind::IndexRange { min, max, .. } => {
            let bounded = usize::from(min.is_some()) + usize::from(max.is_some());
            // An eq-as-range (min==max inclusive) scores above a true range.
            10 + bounded
        }
    }
}

fn plan_for_index(
    idx: &Index,
    constraints: &HashMap<String, PathConstraint>,
) -> Option<PlanKind> {
    let fields = idx.def.field_names();

    // Case 1: equality on every index field → point lookups.
    let eq_sets: Option<Vec<&Vec<Value>>> = fields
        .iter()
        .map(|f| constraints.get(*f).and_then(|c| c.eq_set.as_ref()))
        .collect();
    if let Some(eq_sets) = eq_sets {
        let combos: usize = eq_sets.iter().map(|s| s.len().max(1)).product();
        if combos > 0 && combos <= MAX_POINT_LOOKUPS && eq_sets.iter().all(|s| !s.is_empty())
        {
            let keys = cartesian(&eq_sets);
            return Some(PlanKind::IndexEq { index: idx.def.name.clone(), keys });
        }
    }

    // Case 2 (B-tree only): range or equality on the first field.
    if idx.def.kind == IndexKind::BTree {
        if let Some(c) = constraints.get(fields[0]) {
            if let Some(eq) = &c.eq_set {
                if eq.len() == 1 {
                    let v = eq[0].clone();
                    return Some(PlanKind::IndexRange {
                        index: idx.def.name.clone(),
                        min: Some((v.clone(), true)),
                        max: Some((v, true)),
                    });
                }
            } else if c.has_range() {
                return Some(PlanKind::IndexRange {
                    index: idx.def.name.clone(),
                    min: c.min.clone(),
                    max: c.max.clone(),
                });
            }
        }
    }

    None
}

/// Per-row cost of the full collection scan (the baseline unit).
pub const COST_SCAN_ROW: f64 = 1.0;
/// Per-row cost of fetching an index candidate (Arc bump + residual
/// match) — barely above the scan row, because the streaming scan is
/// itself just an Arc bump + match per row.
pub const COST_FETCH_ROW: f64 = 1.2;
/// Fixed cost per index probe (point lookup or range-scan start).
pub const COST_SEEK: f64 = 16.0;
/// Per-row cost of the vectorized columnar kernel, from the recorded
/// ~8× batch-vs-row speedup on scan-heavy shapes (BENCH_columnar).
pub const COST_COLUMNAR_ROW: f64 = 0.15;

/// Below this live-document count the cost model defers to the rule
/// planner: every choice is noise at this scale, and deferring keeps
/// small-fixture behavior (and its `explain` counters) unchanged.
pub const SMALL_COLLECTION: usize = 256;

/// Match fraction below which an index scan beats the columnar kernel
/// (`frac · FETCH < COLUMNAR` per row).
pub fn columnar_index_threshold() -> f64 {
    COST_COLUMNAR_ROW / COST_FETCH_ROW
}

/// A plan chosen by the cost model, with the estimates that selected it.
#[derive(Clone, Debug)]
pub struct CostedPlan {
    pub plan: Plan,
    /// Estimated fraction of live documents satisfying the full filter.
    pub est_fraction: f64,
    /// Estimated result rows (`est_fraction × live`).
    pub est_rows: u64,
    /// Estimated cost of the chosen plan, in scan-row units.
    pub cost: f64,
}

/// Cost-based planning: enumerates the same candidates as [`plan`] plus
/// the collection scan, prices each with the per-field statistics, and
/// picks the cheapest. The residual filter is always the full filter, so
/// any choice returns identical results — a misestimate costs time, not
/// correctness. Collections under [`SMALL_COLLECTION`] documents defer
/// to the rule planner.
pub fn plan_with_stats(
    filter: &Filter,
    indexes: &[Index],
    stats: &crate::stats::CollStats,
    live: usize,
) -> CostedPlan {
    let est_fraction = stats.estimate_fraction(filter);
    let est_rows = (est_fraction * live as f64).round() as u64;
    if live <= SMALL_COLLECTION {
        let plan = plan(filter, indexes);
        return CostedPlan { plan, est_fraction, est_rows, cost: live as f64 };
    }
    let constraints = conjunctive_constraints(filter);
    let mut best_kind = PlanKind::CollScan;
    let mut best_cost = live as f64 * COST_SCAN_ROW;
    for idx in indexes {
        let Some(candidate) = plan_for_index(idx, &constraints) else {
            continue;
        };
        let cost = index_cost(&candidate, idx, stats, live);
        if cost < best_cost {
            best_cost = cost;
            best_kind = candidate;
        }
    }
    CostedPlan {
        plan: Plan { kind: best_kind, residual: filter.clone() },
        est_fraction,
        est_rows,
        cost: best_cost,
    }
}

/// Prices an index candidate: seeks plus estimated candidate fetches.
fn index_cost(kind: &PlanKind, idx: &Index, stats: &crate::stats::CollStats, live: usize) -> f64 {
    let fields = idx.def.field_names();
    match kind {
        PlanKind::CollScan => live as f64 * COST_SCAN_ROW,
        PlanKind::IndexEq { keys, .. } => {
            // Candidate fraction: Σ over keys of Π over fields of the
            // per-value equality fraction (independence assumption).
            let mut frac = 0.0;
            for key in keys {
                let mut kf = 1.0;
                for (f, ov) in fields.iter().zip(&key.0) {
                    kf *= stats.eq_value_fraction(f, ov.value());
                }
                frac += kf;
            }
            let rows = frac.min(1.0) * live as f64;
            keys.len() as f64 * COST_SEEK + rows * COST_FETCH_ROW
        }
        PlanKind::IndexRange { min, max, .. } => {
            let c = PathConstraint { eq_set: None, min: min.clone(), max: max.clone() };
            let frac = stats.constraint_fraction(fields[0], &c);
            COST_SEEK + frac * live as f64 * COST_FETCH_ROW
        }
    }
}

fn cartesian(sets: &[&Vec<Value>]) -> Vec<CompoundKey> {
    let mut keys: Vec<Vec<Value>> = vec![Vec::new()];
    for set in sets {
        let mut next = Vec::with_capacity(keys.len() * set.len());
        for prefix in &keys {
            for v in set.iter() {
                let mut k = prefix.clone();
                k.push(v.clone());
                next.push(k);
            }
        }
        keys = next;
    }
    keys.into_iter().map(CompoundKey::from_values).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexDef;

    fn idx(def: IndexDef) -> Index {
        Index::new(def).unwrap()
    }

    #[test]
    fn constraints_merge_ranges() {
        let f = Filter::and([
            Filter::gte("p", 1i64),
            Filter::gt("p", 0i64),
            Filter::lte("p", 9i64),
            Filter::lt("p", 20i64),
        ]);
        let c = conjunctive_constraints(&f);
        let pc = &c["p"];
        assert_eq!(pc.min, Some((Value::Int64(1), true)));
        assert_eq!(pc.max, Some((Value::Int64(9), true)));
    }

    #[test]
    fn constraints_intersect_eq_and_in() {
        let f = Filter::and([
            Filter::is_in("k", [1i64, 2i64, 3i64]),
            Filter::is_in("k", [2i64, 3i64, 4i64]),
        ]);
        let c = conjunctive_constraints(&f);
        let eq = c["k"].eq_set.as_ref().unwrap();
        assert_eq!(eq.len(), 2);
    }

    #[test]
    fn or_contributes_no_constraints() {
        let f = Filter::or([Filter::eq("a", 1i64), Filter::eq("b", 2i64)]);
        assert!(conjunctive_constraints(&f).is_empty());
    }

    #[test]
    fn full_key_equality_beats_range() {
        let indexes = vec![
            idx(IndexDef::single("a")),
            idx(IndexDef::compound(["a", "b"])),
        ];
        let f = Filter::and([Filter::eq("a", 1i64), Filter::eq("b", 2i64)]);
        let p = plan(&f, &indexes);
        assert!(matches!(
            &p.kind,
            PlanKind::IndexEq { index, keys } if index == "a_1_b_1" && keys.len() == 1
        ));
    }

    #[test]
    fn in_expands_to_point_lookups() {
        let indexes = vec![idx(IndexDef::single("dow"))];
        let f = Filter::is_in("dow", [6i64, 0i64]);
        let p = plan(&f, &indexes);
        assert!(matches!(&p.kind, PlanKind::IndexEq { keys, .. } if keys.len() == 2));
    }

    #[test]
    fn range_uses_first_field() {
        let indexes = vec![idx(IndexDef::compound(["price", "qty"]))];
        let f = Filter::between("price", 1i64, 5i64);
        let p = plan(&f, &indexes);
        assert!(matches!(&p.kind, PlanKind::IndexRange { index, .. } if index == "price_1_qty_1"));
    }

    #[test]
    fn prefix_rule_no_first_field_means_collscan() {
        let indexes = vec![idx(IndexDef::compound(["a", "b"]))];
        let f = Filter::eq("b", 1i64); // only the non-leading field
        let p = plan(&f, &indexes);
        assert_eq!(p.kind, PlanKind::CollScan);
    }

    #[test]
    fn hashed_index_serves_equality_not_range() {
        let indexes = vec![idx(IndexDef::hashed("k"))];
        let eq = plan(&Filter::eq("k", 1i64), &indexes);
        assert!(matches!(eq.kind, PlanKind::IndexEq { .. }));
        let rng = plan(&Filter::gt("k", 1i64), &indexes);
        assert_eq!(rng.kind, PlanKind::CollScan);
    }

    #[test]
    fn unsatisfiable_eq_intersection_degrades_safely() {
        let indexes = vec![idx(IndexDef::single("k"))];
        let f = Filter::and([Filter::eq("k", 1i64), Filter::eq("k", 2i64)]);
        let p = plan(&f, &indexes);
        // Empty eq set → no index plan; collection scan with residual
        // filter still returns zero rows, which is correct.
        assert_eq!(p.kind, PlanKind::CollScan);
    }
}
