//! The query subsystem: the match language, its evaluator, and the
//! index-selecting planner.

pub mod filter;
pub mod matcher;
pub mod planner;

pub use filter::{CmpOp, Filter};
pub use matcher::{compile, matches, matches_compiled, CompiledFilter};
pub use planner::{conjunctive_constraints, plan, PathConstraint, Plan, PlanKind};
