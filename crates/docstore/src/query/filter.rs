//! The match expression language (`find` filters and `$match` stages).
//!
//! Covers the operators the thesis's workload uses — `$eq` (implicit),
//! `$ne`, `$gt`, `$gte`, `$lt`, `$lte`, `$in`, `$nin`, `$exists`, `$and`,
//! `$or`, `$nor`, `$not` — over dotted paths with array-any semantics.

use doclite_bson::Value;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Gt,
    Gte,
    Lt,
    Lte,
}

impl CmpOp {
    /// Human-readable operator token (`$eq` etc.).
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "$eq",
            CmpOp::Ne => "$ne",
            CmpOp::Gt => "$gt",
            CmpOp::Gte => "$gte",
            CmpOp::Lt => "$lt",
            CmpOp::Lte => "$lte",
        }
    }
}

/// A match expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Filter {
    /// Matches every document.
    True,
    /// `{path: {$op: value}}`.
    Cmp {
        path: String,
        op: CmpOp,
        value: Value,
    },
    /// `{path: {$in: [..]}}`.
    In { path: String, values: Vec<Value> },
    /// `{path: {$nin: [..]}}`.
    Nin { path: String, values: Vec<Value> },
    /// `{path: {$exists: bool}}`.
    Exists { path: String, exists: bool },
    /// `{$and: [..]}`.
    And(Vec<Filter>),
    /// `{$or: [..]}`.
    Or(Vec<Filter>),
    /// `{$nor: [..]}`.
    Nor(Vec<Filter>),
    /// `{path: {$not: {..}}}` / top-level negation.
    Not(Box<Filter>),
}

impl Filter {
    /// `{path: value}` — implicit equality.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Eq, value: value.into() }
    }

    /// `{path: {$ne: value}}`.
    pub fn ne(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Ne, value: value.into() }
    }

    /// `{path: {$gt: value}}`.
    pub fn gt(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Gt, value: value.into() }
    }

    /// `{path: {$gte: value}}`.
    pub fn gte(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Gte, value: value.into() }
    }

    /// `{path: {$lt: value}}`.
    pub fn lt(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Lt, value: value.into() }
    }

    /// `{path: {$lte: value}}`.
    pub fn lte(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Cmp { path: path.into(), op: CmpOp::Lte, value: value.into() }
    }

    /// `{path: {$gte: lo, $lte: hi}}` — SQL `BETWEEN`.
    pub fn between(
        path: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Self {
        let path = path.into();
        Filter::And(vec![Filter::gte(path.clone(), lo), Filter::lte(path, hi)])
    }

    /// `{path: {$in: values}}`.
    pub fn is_in<V: Into<Value>>(
        path: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        Filter::In {
            path: path.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// `{path: {$nin: values}}`.
    pub fn not_in<V: Into<Value>>(
        path: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        Filter::Nin {
            path: path.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// `{path: {$exists: true}}`.
    pub fn exists(path: impl Into<String>) -> Self {
        Filter::Exists { path: path.into(), exists: true }
    }

    /// `{path: {$exists: false}}`.
    pub fn not_exists(path: impl Into<String>) -> Self {
        Filter::Exists { path: path.into(), exists: false }
    }

    /// `$and` of the given filters (flattens nested `$and`s).
    pub fn and(filters: impl IntoIterator<Item = Filter>) -> Self {
        let mut flat = Vec::new();
        for f in filters {
            match f {
                Filter::And(inner) => flat.extend(inner),
                Filter::True => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Filter::True,
            1 => flat.pop().expect("len checked"),
            _ => Filter::And(flat),
        }
    }

    /// `$or` of the given filters.
    pub fn or(filters: impl IntoIterator<Item = Filter>) -> Self {
        let flat: Vec<Filter> = filters.into_iter().collect();
        match flat.len() {
            0 => Filter::True,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Filter::Or(flat),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Filter) -> Self {
        Filter::Not(Box::new(f))
    }

    /// All dotted paths referenced by this filter, in first-mention order
    /// (used by the planner and by shard-key targeting).
    pub fn referenced_paths(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Filter::True => {}
            Filter::Cmp { path, .. }
            | Filter::In { path, .. }
            | Filter::Nin { path, .. }
            | Filter::Exists { path, .. } => {
                if !out.contains(&path.as_str()) {
                    out.push(path);
                }
            }
            Filter::And(fs) | Filter::Or(fs) | Filter::Nor(fs) => {
                for f in fs {
                    f.collect_paths(out);
                }
            }
            Filter::Not(f) => f.collect_paths(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_and_simplifies() {
        let f = Filter::and([Filter::True, Filter::eq("a", 1i64)]);
        assert_eq!(f, Filter::eq("a", 1i64));

        let f = Filter::and([
            Filter::and([Filter::eq("a", 1i64), Filter::eq("b", 2i64)]),
            Filter::eq("c", 3i64),
        ]);
        assert!(matches!(f, Filter::And(ref v) if v.len() == 3));
    }

    #[test]
    fn or_of_one_collapses() {
        let f = Filter::or([Filter::eq("a", 1i64)]);
        assert_eq!(f, Filter::eq("a", 1i64));
    }

    #[test]
    fn between_builds_range() {
        let f = Filter::between("p", 1i64, 5i64);
        assert!(matches!(f, Filter::And(ref v) if v.len() == 2));
    }

    #[test]
    fn referenced_paths_dedupes_in_order() {
        let f = Filter::and([
            Filter::eq("b", 1i64),
            Filter::or([Filter::gt("a", 0i64), Filter::lt("b", 9i64)]),
        ]);
        assert_eq!(f.referenced_paths(), vec!["b", "a"]);
    }
}
