//! Filter evaluation against documents.
//!
//! Semantics follow MongoDB's match rules that the workload depends on:
//!
//! * a predicate on a path whose resolved value is an array matches if
//!   *any element* matches, or if the array as a whole matches (`$eq` on
//!   whole arrays);
//! * `{path: null}` matches both explicit nulls and missing fields;
//! * ordered comparisons (`$gt` …) only match within the same canonical
//!   type family — a number never `$gt`-matches a string;
//! * `$ne` / `$nin` are the negations of `$eq` / `$in` (so they *do*
//!   match documents where the field is missing).

use super::filter::{CmpOp, Filter};
use crate::ordvalue::OrdValue;
use doclite_bson::{Document, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// Evaluates a filter against a document.
pub fn matches(filter: &Filter, doc: &Document) -> bool {
    match filter {
        Filter::True => true,
        Filter::Cmp { path, op, value } => match_cmp(doc, path, *op, value),
        Filter::In { path, values } => values
            .iter()
            .any(|v| match_cmp(doc, path, CmpOp::Eq, v)),
        Filter::Nin { path, values } => !values
            .iter()
            .any(|v| match_cmp(doc, path, CmpOp::Eq, v)),
        Filter::Exists { path, exists } => doc.get_path(path).is_some() == *exists,
        Filter::And(fs) => fs.iter().all(|f| matches(f, doc)),
        Filter::Or(fs) => fs.iter().any(|f| matches(f, doc)),
        Filter::Nor(fs) => !fs.iter().any(|f| matches(f, doc)),
        Filter::Not(f) => !matches(f, doc),
    }
}

/// A filter preprocessed for repeated evaluation: `$in`/`$nin` value
/// lists become ordered sets, turning the thesis's large semi-join `$in`
/// arrays (Fig 4.8 step ii can pass thousands of keys) from `O(list)`
/// into `O(log list)` per document.
#[derive(Clone, Debug)]
pub enum CompiledFilter {
    True,
    Cmp { path: String, op: CmpOp, value: Value },
    InSet { path: String, set: BTreeSet<OrdValue>, has_null: bool },
    NinSet { path: String, set: BTreeSet<OrdValue>, has_null: bool },
    Exists { path: String, exists: bool },
    And(Vec<CompiledFilter>),
    Or(Vec<CompiledFilter>),
    Nor(Vec<CompiledFilter>),
    Not(Box<CompiledFilter>),
}

/// Compiles a filter for repeated evaluation.
pub fn compile(filter: &Filter) -> CompiledFilter {
    match filter {
        Filter::True => CompiledFilter::True,
        Filter::Cmp { path, op, value } => CompiledFilter::Cmp {
            path: path.clone(),
            op: *op,
            value: value.clone(),
        },
        Filter::In { path, values } => {
            let has_null = values.iter().any(Value::is_null);
            CompiledFilter::InSet {
                path: path.clone(),
                set: values.iter().cloned().map(OrdValue).collect(),
                has_null,
            }
        }
        Filter::Nin { path, values } => {
            let has_null = values.iter().any(Value::is_null);
            CompiledFilter::NinSet {
                path: path.clone(),
                set: values.iter().cloned().map(OrdValue).collect(),
                has_null,
            }
        }
        Filter::Exists { path, exists } => {
            CompiledFilter::Exists { path: path.clone(), exists: *exists }
        }
        Filter::And(fs) => CompiledFilter::And(fs.iter().map(compile).collect()),
        Filter::Or(fs) => CompiledFilter::Or(fs.iter().map(compile).collect()),
        Filter::Nor(fs) => CompiledFilter::Nor(fs.iter().map(compile).collect()),
        Filter::Not(f) => CompiledFilter::Not(Box::new(compile(f))),
    }
}

/// Evaluates a compiled filter. Semantics are identical to [`matches`]
/// on the source filter (see the `compiled_matches_agree` property test).
pub fn matches_compiled(filter: &CompiledFilter, doc: &Document) -> bool {
    match filter {
        CompiledFilter::True => true,
        CompiledFilter::Cmp { path, op, value } => match_cmp(doc, path, *op, value),
        CompiledFilter::InSet { path, set, has_null } => in_set(doc, path, set, *has_null),
        CompiledFilter::NinSet { path, set, has_null } => !in_set(doc, path, set, *has_null),
        CompiledFilter::Exists { path, exists } => doc.get_path(path).is_some() == *exists,
        CompiledFilter::And(fs) => fs.iter().all(|f| matches_compiled(f, doc)),
        CompiledFilter::Or(fs) => fs.iter().any(|f| matches_compiled(f, doc)),
        CompiledFilter::Nor(fs) => !fs.iter().any(|f| matches_compiled(f, doc)),
        CompiledFilter::Not(f) => !matches_compiled(f, doc),
    }
}

fn in_set(doc: &Document, path: &str, set: &BTreeSet<OrdValue>, has_null: bool) -> bool {
    match doc.get_path(path) {
        // {$in: [.., null]} matches a missing field, like {path: null}.
        None => has_null,
        Some(v) => {
            if set.contains(&OrdValue(v.clone())) {
                return true;
            }
            if let Value::Array(items) = &v {
                return items.iter().any(|e| set.contains(&OrdValue(e.clone())));
            }
            false
        }
    }
}

fn match_cmp(doc: &Document, path: &str, op: CmpOp, rhs: &Value) -> bool {
    let resolved = doc.get_path(path);
    match op {
        CmpOp::Eq => eq_matches(resolved.as_ref(), rhs),
        CmpOp::Ne => !eq_matches(resolved.as_ref(), rhs),
        CmpOp::Gt | CmpOp::Gte | CmpOp::Lt | CmpOp::Lte => {
            let Some(v) = resolved else { return false };
            ordered_matches(&v, op, rhs)
        }
    }
}

fn eq_matches(resolved: Option<&Value>, rhs: &Value) -> bool {
    match resolved {
        // {path: null} matches a missing field.
        None => rhs.is_null(),
        Some(v) => value_eq_any(v, rhs),
    }
}

/// Equality with array-any semantics: an array value matches if the whole
/// array equals `rhs` or any element does.
fn value_eq_any(v: &Value, rhs: &Value) -> bool {
    if v.canonical_eq(rhs) {
        return true;
    }
    if let Value::Array(items) = v {
        return items.iter().any(|e| e.canonical_eq(rhs));
    }
    false
}

fn ordered_matches(v: &Value, op: CmpOp, rhs: &Value) -> bool {
    if let Value::Array(items) = v {
        // Array-any semantics; note a whole-array comparison against a
        // non-array rhs never holds under same-family rules.
        return items.iter().any(|e| scalar_ordered(e, op, rhs));
    }
    scalar_ordered(v, op, rhs)
}

fn same_family(a: &Value, b: &Value) -> bool {
    use Value::*;
    matches!(
        (a, b),
        (Int32(_) | Int64(_) | Double(_), Int32(_) | Int64(_) | Double(_))
            | (String(_), String(_))
            | (Bool(_), Bool(_))
            | (DateTime(_), DateTime(_))
            | (ObjectId(_), ObjectId(_))
            | (Array(_), Array(_))
            | (Document(_), Document(_))
    )
}

fn scalar_ordered(v: &Value, op: CmpOp, rhs: &Value) -> bool {
    if !same_family(v, rhs) {
        return false;
    }
    let ord = v.canonical_cmp(rhs);
    match op {
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Gte => ord != Ordering::Less,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Lte => ord != Ordering::Greater,
        CmpOp::Eq | CmpOp::Ne => unreachable!("handled by eq_matches"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::{array, doc};

    #[test]
    fn implicit_eq_and_ne() {
        let d = doc! {"a" => 5i64};
        assert!(matches(&Filter::eq("a", 5i32), &d));
        assert!(!matches(&Filter::eq("a", 6i64), &d));
        assert!(matches(&Filter::ne("a", 6i64), &d));
        assert!(matches(&Filter::ne("missing", 6i64), &d));
    }

    #[test]
    fn null_matches_missing() {
        let d = doc! {"a" => Value::Null};
        assert!(matches(&Filter::eq("a", Value::Null), &d));
        assert!(matches(&Filter::eq("b", Value::Null), &d));
        assert!(!matches(&Filter::eq("a", 0i64), &d));
    }

    #[test]
    fn range_operators_respect_type_families() {
        let d = doc! {"n" => 10i64, "s" => "m"};
        assert!(matches(&Filter::gt("n", 5i64), &d));
        assert!(matches(&Filter::gte("n", 10.0f64), &d));
        assert!(!matches(&Filter::gt("n", "a"), &d));
        assert!(matches(&Filter::lt("s", "z"), &d));
        assert!(!matches(&Filter::lt("s", 100i64), &d));
    }

    #[test]
    fn between_is_inclusive() {
        let d = doc! {"p" => 0.99f64};
        assert!(matches(&Filter::between("p", 0.99f64, 1.49f64), &d));
        let d2 = doc! {"p" => 1.49f64};
        assert!(matches(&Filter::between("p", 0.99f64, 1.49f64), &d2));
        let d3 = doc! {"p" => 1.50f64};
        assert!(!matches(&Filter::between("p", 0.99f64, 1.49f64), &d3));
    }

    #[test]
    fn in_and_nin() {
        let d = doc! {"dow" => 6i64};
        assert!(matches(&Filter::is_in("dow", [6i64, 0i64]), &d));
        assert!(!matches(&Filter::is_in("dow", [1i64, 2i64]), &d));
        assert!(matches(&Filter::not_in("dow", [1i64, 2i64]), &d));
        // $nin matches missing fields, like $ne.
        assert!(matches(&Filter::not_in("absent", [1i64]), &d));
    }

    #[test]
    fn array_any_semantics() {
        let d = doc! {"tags" => array!["x", "y"]};
        assert!(matches(&Filter::eq("tags", "x"), &d));
        assert!(!matches(&Filter::eq("tags", "z"), &d));
        // whole-array equality
        assert!(matches(&Filter::eq("tags", array!["x", "y"]), &d));
        let nums = doc! {"xs" => array![1i64, 5i64, 9i64]};
        assert!(matches(&Filter::gt("xs", 8i64), &nums));
        assert!(!matches(&Filter::gt("xs", 9i64), &nums));
    }

    #[test]
    fn exists_checks_resolution() {
        let d = doc! {"a" => doc!{"b" => 1i64}};
        assert!(matches(&Filter::exists("a.b"), &d));
        assert!(matches(&Filter::not_exists("a.c"), &d));
        assert!(!matches(&Filter::exists("a.c"), &d));
    }

    #[test]
    fn boolean_combinators() {
        let d = doc! {"dep" => 2i64, "veh" => 1i64};
        let f = Filter::or([Filter::eq("dep", 2i64), Filter::eq("veh", 3i64)]);
        assert!(matches(&f, &d));
        let f = Filter::and([Filter::eq("dep", 2i64), Filter::eq("veh", 3i64)]);
        assert!(!matches(&f, &d));
        let f = Filter::Nor(vec![Filter::eq("dep", 3i64), Filter::eq("veh", 3i64)]);
        assert!(matches(&f, &d));
        assert!(matches(&Filter::not(Filter::eq("dep", 3i64)), &d));
    }

    #[test]
    fn dotted_path_into_embedded_docs() {
        let d = doc! {"demo" => doc!{"cd_gender" => "M"}};
        assert!(matches(&Filter::eq("demo.cd_gender", "M"), &d));
        assert!(!matches(&Filter::eq("demo.cd_gender", "F"), &d));
    }

    #[test]
    fn multikey_fanout_through_embedded_array() {
        let d = doc! {"books" => Value::Array(vec![
            Value::Document(doc!{"pages" => 100i64}),
            Value::Document(doc!{"pages" => 500i64}),
        ])};
        assert!(matches(&Filter::gt("books.pages", 400i64), &d));
        assert!(!matches(&Filter::gt("books.pages", 600i64), &d));
    }
}
