//! Filter evaluation against documents.
//!
//! Semantics follow MongoDB's match rules that the workload depends on:
//!
//! * a predicate on a path whose resolved value is an array matches if
//!   *any element* matches, or if the array as a whole matches (`$eq` on
//!   whole arrays);
//! * `{path: null}` matches both explicit nulls and missing fields;
//! * ordered comparisons (`$gt` …) only match within the same canonical
//!   type family — a number never `$gt`-matches a string;
//! * `$ne` / `$nin` are the negations of `$eq` / `$in` (so they *do*
//!   match documents where the field is missing).
//!
//! Two evaluators share these semantics: [`matches`] interprets the
//! source [`Filter`] directly (splitting paths and materializing values
//! per call — kept as the reference implementation the equivalence
//! proptests check against), while [`compile`]/[`matches_compiled`] is
//! the execution-kernel path: dotted paths are pre-split into
//! [`CompiledPath`]s, values resolve by reference (zero clones for
//! scalar paths), and `$in`/`$nin` lists become canonically sorted
//! slices probed by `binary_search` against a borrowed value.

use super::filter::{CmpOp, Filter};
use crate::ordvalue::OrdValue;
use doclite_bson::{CompiledPath, Document, Resolved, Value};
use std::cmp::Ordering;

/// Evaluates a filter against a document — the interpreted reference
/// implementation (see the module docs; hot paths use [`compile`]).
pub fn matches(filter: &Filter, doc: &Document) -> bool {
    match filter {
        Filter::True => true,
        Filter::Cmp { path, op, value } => match_cmp(doc, path, *op, value),
        Filter::In { path, values } => values
            .iter()
            .any(|v| match_cmp(doc, path, CmpOp::Eq, v)),
        Filter::Nin { path, values } => !values
            .iter()
            .any(|v| match_cmp(doc, path, CmpOp::Eq, v)),
        Filter::Exists { path, exists } => doc.get_path(path).is_some() == *exists,
        Filter::And(fs) => fs.iter().all(|f| matches(f, doc)),
        Filter::Or(fs) => fs.iter().any(|f| matches(f, doc)),
        Filter::Nor(fs) => !fs.iter().any(|f| matches(f, doc)),
        Filter::Not(f) => !matches(f, doc),
    }
}

/// A filter preprocessed for repeated evaluation: paths are pre-split
/// ([`CompiledPath`]), values resolve by reference, and `$in`/`$nin`
/// value lists become canonically sorted slices, turning the thesis's
/// large semi-join `$in` arrays (Fig 4.8 step ii can pass thousands of
/// keys) from `O(list)` clones into `O(log list)` clone-free probes per
/// document.
#[derive(Clone, Debug)]
pub enum CompiledFilter {
    True,
    Cmp { path: CompiledPath, op: CmpOp, value: Value },
    InSet { path: CompiledPath, set: Box<[OrdValue]>, has_null: bool },
    NinSet { path: CompiledPath, set: Box<[OrdValue]>, has_null: bool },
    Exists { path: CompiledPath, exists: bool },
    And(Vec<CompiledFilter>),
    Or(Vec<CompiledFilter>),
    Nor(Vec<CompiledFilter>),
    Not(Box<CompiledFilter>),
}

/// Sorts and dedups an `$in`/`$nin` value list under canonical order so
/// membership is a binary search against a borrowed probe value.
/// Shared with the columnar batch kernel, whose `$in` masks must probe
/// identically-built sets.
pub(crate) fn compile_set(values: &[Value]) -> Box<[OrdValue]> {
    let mut set: Vec<OrdValue> = values.iter().cloned().map(OrdValue).collect();
    set.sort();
    set.dedup();
    set.into_boxed_slice()
}

/// Compiles a filter for repeated evaluation.
pub fn compile(filter: &Filter) -> CompiledFilter {
    match filter {
        Filter::True => CompiledFilter::True,
        Filter::Cmp { path, op, value } => CompiledFilter::Cmp {
            path: CompiledPath::new(path),
            op: *op,
            value: value.clone(),
        },
        Filter::In { path, values } => CompiledFilter::InSet {
            path: CompiledPath::new(path),
            set: compile_set(values),
            has_null: values.iter().any(Value::is_null),
        },
        Filter::Nin { path, values } => CompiledFilter::NinSet {
            path: CompiledPath::new(path),
            set: compile_set(values),
            has_null: values.iter().any(Value::is_null),
        },
        Filter::Exists { path, exists } => {
            CompiledFilter::Exists { path: CompiledPath::new(path), exists: *exists }
        }
        Filter::And(fs) => CompiledFilter::And(fs.iter().map(compile).collect()),
        Filter::Or(fs) => CompiledFilter::Or(fs.iter().map(compile).collect()),
        Filter::Nor(fs) => CompiledFilter::Nor(fs.iter().map(compile).collect()),
        Filter::Not(f) => CompiledFilter::Not(Box::new(compile(f))),
    }
}

/// Evaluates a compiled filter. Semantics are identical to [`matches`]
/// on the source filter (pinned by the kernel-equivalence proptests);
/// scalar predicates evaluate without any heap allocation (pinned by
/// the counting-allocator test).
pub fn matches_compiled(filter: &CompiledFilter, doc: &Document) -> bool {
    match filter {
        CompiledFilter::True => true,
        CompiledFilter::Cmp { path, op, value } => {
            let resolved = path.resolve(doc);
            match op {
                CmpOp::Eq => eq_matches(resolved.as_ref().map(Resolved::as_value), value),
                CmpOp::Ne => !eq_matches(resolved.as_ref().map(Resolved::as_value), value),
                CmpOp::Gt | CmpOp::Gte | CmpOp::Lt | CmpOp::Lte => {
                    let Some(v) = resolved else { return false };
                    ordered_matches(v.as_value(), *op, value)
                }
            }
        }
        CompiledFilter::InSet { path, set, has_null } => {
            in_set(path.resolve(doc).as_ref().map(Resolved::as_value), set, *has_null)
        }
        CompiledFilter::NinSet { path, set, has_null } => {
            !in_set(path.resolve(doc).as_ref().map(Resolved::as_value), set, *has_null)
        }
        CompiledFilter::Exists { path, exists } => path.resolve(doc).is_some() == *exists,
        CompiledFilter::And(fs) => fs.iter().all(|f| matches_compiled(f, doc)),
        CompiledFilter::Or(fs) => fs.iter().any(|f| matches_compiled(f, doc)),
        CompiledFilter::Nor(fs) => !fs.iter().any(|f| matches_compiled(f, doc)),
        CompiledFilter::Not(f) => !matches_compiled(f, doc),
    }
}

/// Clone-free membership probe: canonical binary search of `v` in the
/// sorted set, so `{$in: [1.0]}` finds `Int32(1)` through the same
/// cross-numeric-type comparison the old `BTreeSet<OrdValue>` used.
pub(crate) fn set_contains(set: &[OrdValue], v: &Value) -> bool {
    set.binary_search_by(|ov| ov.0.canonical_cmp(v)).is_ok()
}

fn in_set(resolved: Option<&Value>, set: &[OrdValue], has_null: bool) -> bool {
    match resolved {
        // {$in: [.., null]} matches a missing field, like {path: null}.
        None => has_null,
        Some(v) => {
            if set_contains(set, v) {
                return true;
            }
            if let Value::Array(items) = v {
                return items.iter().any(|e| set_contains(set, e));
            }
            false
        }
    }
}

fn match_cmp(doc: &Document, path: &str, op: CmpOp, rhs: &Value) -> bool {
    let resolved = doc.get_path(path);
    match op {
        CmpOp::Eq => eq_matches(resolved.as_ref(), rhs),
        CmpOp::Ne => !eq_matches(resolved.as_ref(), rhs),
        CmpOp::Gt | CmpOp::Gte | CmpOp::Lt | CmpOp::Lte => {
            let Some(v) = resolved else { return false };
            ordered_matches(&v, op, rhs)
        }
    }
}

fn eq_matches(resolved: Option<&Value>, rhs: &Value) -> bool {
    match resolved {
        // {path: null} matches a missing field.
        None => rhs.is_null(),
        Some(v) => value_eq_any(v, rhs),
    }
}

/// Equality with array-any semantics: an array value matches if the whole
/// array equals `rhs` or any element does. Entirely by reference — the
/// multikey element scan never clones.
fn value_eq_any(v: &Value, rhs: &Value) -> bool {
    if v.canonical_eq(rhs) {
        return true;
    }
    if let Value::Array(items) = v {
        return items.iter().any(|e| e.canonical_eq(rhs));
    }
    false
}

fn ordered_matches(v: &Value, op: CmpOp, rhs: &Value) -> bool {
    if let Value::Array(items) = v {
        // Array-any semantics; note a whole-array comparison against a
        // non-array rhs never holds under same-family rules.
        return items.iter().any(|e| scalar_ordered(e, op, rhs));
    }
    scalar_ordered(v, op, rhs)
}

fn same_family(a: &Value, b: &Value) -> bool {
    use Value::*;
    matches!(
        (a, b),
        (Int32(_) | Int64(_) | Double(_), Int32(_) | Int64(_) | Double(_))
            | (String(_), String(_))
            | (Bool(_), Bool(_))
            | (DateTime(_), DateTime(_))
            | (ObjectId(_), ObjectId(_))
            | (Array(_), Array(_))
            | (Document(_), Document(_))
    )
}

fn scalar_ordered(v: &Value, op: CmpOp, rhs: &Value) -> bool {
    if !same_family(v, rhs) {
        return false;
    }
    let ord = v.canonical_cmp(rhs);
    match op {
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Gte => ord != Ordering::Less,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Lte => ord != Ordering::Greater,
        CmpOp::Eq | CmpOp::Ne => unreachable!("handled by eq_matches"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::{array, doc};

    /// Evaluates through both the interpreted and compiled evaluators
    /// and insists they agree, so every semantic test below pins both.
    fn matches(filter: &Filter, doc: &Document) -> bool {
        let interpreted = super::matches(filter, doc);
        let compiled = matches_compiled(&compile(filter), doc);
        assert_eq!(
            interpreted, compiled,
            "interpreted and compiled evaluators disagree on {filter:?} over {doc:?}"
        );
        interpreted
    }

    #[test]
    fn implicit_eq_and_ne() {
        let d = doc! {"a" => 5i64};
        assert!(matches(&Filter::eq("a", 5i32), &d));
        assert!(!matches(&Filter::eq("a", 6i64), &d));
        assert!(matches(&Filter::ne("a", 6i64), &d));
        assert!(matches(&Filter::ne("missing", 6i64), &d));
    }

    #[test]
    fn null_matches_missing() {
        let d = doc! {"a" => Value::Null};
        assert!(matches(&Filter::eq("a", Value::Null), &d));
        assert!(matches(&Filter::eq("b", Value::Null), &d));
        assert!(!matches(&Filter::eq("a", 0i64), &d));
    }

    #[test]
    fn range_operators_respect_type_families() {
        let d = doc! {"n" => 10i64, "s" => "m"};
        assert!(matches(&Filter::gt("n", 5i64), &d));
        assert!(matches(&Filter::gte("n", 10.0f64), &d));
        assert!(!matches(&Filter::gt("n", "a"), &d));
        assert!(matches(&Filter::lt("s", "z"), &d));
        assert!(!matches(&Filter::lt("s", 100i64), &d));
    }

    #[test]
    fn between_is_inclusive() {
        let d = doc! {"p" => 0.99f64};
        assert!(matches(&Filter::between("p", 0.99f64, 1.49f64), &d));
        let d2 = doc! {"p" => 1.49f64};
        assert!(matches(&Filter::between("p", 0.99f64, 1.49f64), &d2));
        let d3 = doc! {"p" => 1.50f64};
        assert!(!matches(&Filter::between("p", 0.99f64, 1.49f64), &d3));
    }

    #[test]
    fn in_and_nin() {
        let d = doc! {"dow" => 6i64};
        assert!(matches(&Filter::is_in("dow", [6i64, 0i64]), &d));
        assert!(!matches(&Filter::is_in("dow", [1i64, 2i64]), &d));
        assert!(matches(&Filter::not_in("dow", [1i64, 2i64]), &d));
        // $nin matches missing fields, like $ne.
        assert!(matches(&Filter::not_in("absent", [1i64]), &d));
    }

    #[test]
    fn in_set_unifies_numeric_types() {
        // Regression: the sorted-slice probe must keep the cross-type
        // numeric unification the BTreeSet<OrdValue> representation had.
        let d = doc! {"k" => Value::Int32(1)};
        assert!(matches(&Filter::is_in("k", [1.0f64]), &d));
        assert!(matches(&Filter::is_in("k", [1i64]), &d));
        assert!(!matches(&Filter::is_in("k", [2.0f64]), &d));
        let d = doc! {"k" => 2.0f64};
        assert!(matches(&Filter::is_in("k", [Value::Int32(2)]), &d));
        assert!(!matches(&Filter::not_in("k", [2i64]), &d));
        // ... and through array-any element probes.
        let d = doc! {"ks" => array![Value::Int32(3), Value::Int32(4)]};
        assert!(matches(&Filter::is_in("ks", [4.0f64]), &d));
    }

    #[test]
    fn in_with_null_and_whole_array_values() {
        let missing = doc! {"other" => 1i64};
        assert!(matches(&Filter::is_in("k", [Value::Null, Value::Int64(2)]), &missing));
        assert!(!matches(&Filter::is_in("k", [Value::Int64(2)]), &missing));
        // A whole array can be a set member.
        let d = doc! {"tags" => array!["x", "y"]};
        assert!(matches(&Filter::is_in("tags", [array!["x", "y"]]), &d));
        // Duplicate list values collapse without changing semantics.
        let d = doc! {"k" => 1i64};
        assert!(matches(&Filter::is_in("k", [1i64, 1i64, 1i64]), &d));
    }

    #[test]
    fn array_any_semantics() {
        let d = doc! {"tags" => array!["x", "y"]};
        assert!(matches(&Filter::eq("tags", "x"), &d));
        assert!(!matches(&Filter::eq("tags", "z"), &d));
        // whole-array equality
        assert!(matches(&Filter::eq("tags", array!["x", "y"]), &d));
        let nums = doc! {"xs" => array![1i64, 5i64, 9i64]};
        assert!(matches(&Filter::gt("xs", 8i64), &nums));
        assert!(!matches(&Filter::gt("xs", 9i64), &nums));
    }

    #[test]
    fn exists_checks_resolution() {
        let d = doc! {"a" => doc!{"b" => 1i64}};
        assert!(matches(&Filter::exists("a.b"), &d));
        assert!(matches(&Filter::not_exists("a.c"), &d));
        assert!(!matches(&Filter::exists("a.c"), &d));
    }

    #[test]
    fn boolean_combinators() {
        let d = doc! {"dep" => 2i64, "veh" => 1i64};
        let f = Filter::or([Filter::eq("dep", 2i64), Filter::eq("veh", 3i64)]);
        assert!(matches(&f, &d));
        let f = Filter::and([Filter::eq("dep", 2i64), Filter::eq("veh", 3i64)]);
        assert!(!matches(&f, &d));
        let f = Filter::Nor(vec![Filter::eq("dep", 3i64), Filter::eq("veh", 3i64)]);
        assert!(matches(&f, &d));
        assert!(matches(&Filter::not(Filter::eq("dep", 3i64)), &d));
    }

    #[test]
    fn dotted_path_into_embedded_docs() {
        let d = doc! {"demo" => doc!{"cd_gender" => "M"}};
        assert!(matches(&Filter::eq("demo.cd_gender", "M"), &d));
        assert!(!matches(&Filter::eq("demo.cd_gender", "F"), &d));
    }

    #[test]
    fn multikey_fanout_through_embedded_array() {
        let d = doc! {"books" => Value::Array(vec![
            Value::Document(doc!{"pages" => 100i64}),
            Value::Document(doc!{"pages" => 500i64}),
        ])};
        assert!(matches(&Filter::gt("books.pages", 400i64), &d));
        assert!(!matches(&Filter::gt("books.pages", 600i64), &d));
    }

    #[test]
    fn invalid_paths_never_resolve_in_either_evaluator() {
        let d = doc! {"a" => 1i64};
        for path in ["", "a..b", ".a"] {
            assert!(!matches(&Filter::exists(path), &d), "path {path:?}");
            // An unresolvable path behaves like a missing field: $eq null
            // and $ne/$nin match, everything else does not.
            assert!(matches(&Filter::eq(path, Value::Null), &d));
            assert!(matches(&Filter::ne(path, 1i64), &d));
            assert!(!matches(&Filter::gt(path, 0i64), &d));
        }
    }
}
