//! Canonical key-byte encoding for hash-table keys.
//!
//! `$group` and `$lookup` used to key their hash tables on
//! [`OrdValue`](crate::ordvalue::OrdValue), which forces a full `Value`
//! clone per document just to probe the table. This module encodes a
//! borrowed [`Value`] into a flat byte string with the *equality
//! semantics of canonical comparison*:
//!
//! ```text
//! encode(a) == encode(b)   ⇔   a.canonical_eq(b)
//! ```
//!
//! so a reusable scratch buffer can probe `HashMap<Box<[u8]>, _>`
//! without allocating or cloning anything per document. The encoding
//! mirrors the normalization [`OrdValue`](crate::ordvalue::OrdValue)'s
//! `Hash` impl applies (one byte tag per canonical type family; all
//! numerics through a normalized `f64` with `-0.0` collapsed and NaN
//! canonicalized), extended with length prefixes so nested strings,
//! arrays, and documents can never collide structurally.
//!
//! Numerics encode through [`NumericKey`], the exact normal form shared
//! with canonical comparison — `i64` values above 2^53 no longer
//! collapse through `f64`, and the numeric payload is big-endian so its
//! byte order *is* canonical order (a selling point for future
//! range-partitioned keys). The encoding as a whole is still *not*
//! order-preserving — B-tree index keys keep using
//! [`OrdValue`]/`CompoundKey` — and is deliberately not decoded:
//! group output needs the first-seen representative key anyway (so
//! `Int32(1)`, `Int64(1)`, and `Double(1.0)` report whichever arrived
//! first, exactly like the legacy `OrdValue` map), which a decoder
//! could not reconstruct from the unified bytes.

use doclite_bson::{Document, NumericKey, Value};

/// Appends the canonical encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        // Numerics encode their exact NumericKey normal form so
        // cross-type equal values produce identical bytes and — within
        // the numeric family — byte order is canonical order. The
        // class byte keeps the variable-length payloads prefix-free.
        Value::Int32(_) | Value::Int64(_) | Value::Double(_) => {
            out.push(1);
            match NumericKey::of(v).expect("numeric") {
                NumericKey::Nan => out.push(0),
                NumericKey::Negative { ck, cm } => {
                    out.push(1);
                    out.extend_from_slice(&ck.to_be_bytes());
                    out.extend_from_slice(&cm.to_be_bytes());
                }
                NumericKey::Zero => out.push(2),
                NumericKey::Positive { k, m } => {
                    out.push(3);
                    out.extend_from_slice(&k.to_be_bytes());
                    out.extend_from_slice(&m.to_be_bytes());
                }
            }
        }
        Value::String(s) => {
            out.push(2);
            encode_len(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Document(d) => {
            out.push(3);
            encode_len(d.len(), out);
            for (k, val) in d.iter() {
                encode_len(k.len(), out);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
        Value::Array(items) => {
            out.push(4);
            encode_len(items.len(), out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Bool(b) => {
            out.push(5);
            out.push(u8::from(*b));
        }
        Value::ObjectId(oid) => {
            out.push(6);
            out.extend_from_slice(oid.bytes());
        }
        Value::DateTime(ms) => {
            out.push(7);
            out.extend_from_slice(&ms.to_le_bytes());
        }
    }
}

fn encode_len(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(n as u64).to_le_bytes());
}

/// Clears `scratch` and encodes `v` into it — the per-document probe
/// pattern: one buffer reused across the whole stream.
pub fn encode_into(v: &Value, scratch: &mut Vec<u8>) {
    scratch.clear();
    encode_value(v, scratch);
}

/// Encodes a whole document as if it were `Value::Document` without
/// cloning it into one.
pub fn encode_document(d: &Document, out: &mut Vec<u8>) {
    out.push(3);
    encode_len(d.len(), out);
    for (k, val) in d.iter() {
        encode_len(k.len(), out);
        out.extend_from_slice(k.as_bytes());
        encode_value(val, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordvalue::OrdValue;
    use doclite_bson::{array, doc, ObjectId};
    use proptest::prelude::*;

    fn enc(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        out
    }

    #[test]
    fn numeric_types_unify() {
        assert_eq!(enc(&Value::Int32(1)), enc(&Value::Int64(1)));
        assert_eq!(enc(&Value::Int64(1)), enc(&Value::Double(1.0)));
        assert_eq!(enc(&Value::Double(0.0)), enc(&Value::Double(-0.0)));
        assert_ne!(enc(&Value::Int64(1)), enc(&Value::Int64(2)));
    }

    #[test]
    fn nan_is_canonical() {
        let a = enc(&Value::Double(f64::NAN));
        let b = enc(&Value::Double(-f64::NAN));
        assert_eq!(a, b);
        assert_ne!(a, enc(&Value::Double(1.0)));
    }

    #[test]
    fn structural_prefixes_cannot_collide() {
        // Same flattened content, different structure.
        assert_ne!(enc(&array![1i64, 2i64]), enc(&array![array![1i64, 2i64]]));
        assert_ne!(
            enc(&Value::from("ab")),
            enc(&Value::Array(vec![Value::from("a"), Value::from("b")]))
        );
        assert_ne!(
            enc(&Value::Document(doc! {"a" => 1i64})),
            enc(&Value::Document(doc! {"a" => 1i64, "b" => 1i64}))
        );
    }

    #[test]
    fn document_encoding_matches_wrapped_value() {
        let d = doc! {"a" => 1i64, "b" => "x"};
        let mut direct = Vec::new();
        encode_document(&d, &mut direct);
        assert_eq!(direct, enc(&Value::Document(d)));
    }

    /// Extreme integers around the f64-precision cliff: under the old
    /// f64-unified encoding each ± pair below collided with its
    /// neighbour, so the generator must keep them in circulation.
    fn extreme_ints() -> impl Strategy<Value = i64> {
        const BIG: i64 = 1 << 53;
        prop_oneof![
            Just(i64::MIN),
            Just(i64::MIN + 1),
            Just(i64::MAX - 1),
            Just(i64::MAX),
            Just(-BIG - 1),
            Just(-BIG),
            Just(BIG),
            Just(BIG + 1),
        ]
    }

    fn arb_value() -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            (-3i32..4).prop_map(Value::Int32),
            (-3i64..4).prop_map(Value::Int64),
            extreme_ints().prop_map(Value::Int64),
            (-3i64..4).prop_map(|n| Value::Double(n as f64)),
            extreme_ints().prop_map(|n| Value::Double(n as f64)),
            (0.0f64..2.0).prop_map(Value::Double),
            Just(Value::Double(f64::NAN)),
            Just(Value::Double(-0.0)),
            "[ab]{0,2}".prop_map(Value::from),
            (-100i64..100).prop_map(Value::DateTime),
            Just(Value::ObjectId(ObjectId::from_bytes([7; 12]))),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                prop::collection::vec(("[ab]{1,2}", inner), 0..4)
                    .prop_map(|kvs| Value::Document(kvs.into_iter().collect())),
            ]
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The load-bearing invariant: byte equality is exactly
        /// canonical equality, so byte-keyed hash tables group the
        /// same way `HashMap<OrdValue, _>` did.
        #[test]
        fn byte_equality_is_canonical_equality(a in arb_value(), b in arb_value()) {
            let canonical = OrdValue(a.clone()) == OrdValue(b.clone());
            prop_assert_eq!(enc(&a) == enc(&b), canonical, "a={:?} b={:?}", a, b);
        }

        /// Within the numeric family the encoding is also
        /// order-preserving: byte order is canonical order, including
        /// past 2^53 where the old f64 collapse lost resolution.
        #[test]
        fn numeric_byte_order_is_canonical_order(
            a in arb_numeric(),
            b in arb_numeric(),
        ) {
            let byte_ord = enc(&a).cmp(&enc(&b));
            let canonical = a.canonical_cmp(&b);
            prop_assert_eq!(byte_ord, canonical, "a={:?} b={:?}", a, b);
        }
    }

    fn arb_numeric() -> BoxedStrategy<Value> {
        prop_oneof![
            any::<i32>().prop_map(Value::Int32),
            any::<i64>().prop_map(Value::Int64),
            extreme_ints().prop_map(Value::Int64),
            extreme_ints().prop_map(|n| Value::Double(n as f64)),
            any::<f64>().prop_map(Value::Double),
            (-1e18f64..1e18).prop_map(Value::Double),
            Just(Value::Double(f64::NAN)),
            Just(Value::Double(f64::INFINITY)),
            Just(Value::Double(f64::NEG_INFINITY)),
            Just(Value::Double(-0.0)),
            Just(Value::Double(f64::MIN_POSITIVE / 4.0)), // subnormal
        ]
        .boxed()
    }

    #[test]
    fn large_integers_get_distinct_keys() {
        assert_ne!(enc(&Value::Int64(i64::MAX)), enc(&Value::Int64(i64::MAX - 1)));
        assert_ne!(
            enc(&Value::Int64((1 << 53) + 1)),
            enc(&Value::Double((1i64 << 53) as f64))
        );
        assert_eq!(
            enc(&Value::Int64(1 << 53)),
            enc(&Value::Double((1i64 << 53) as f64))
        );
        assert_ne!(enc(&Value::Int64(i64::MIN)), enc(&Value::Int64(i64::MIN + 1)));
    }
}
