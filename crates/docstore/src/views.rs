//! Incrementally maintained materialized views over the change stream.
//!
//! A view is a Q7-shaped aggregation — `$match* → $group [→ $sort [→
//! $limit]]` — registered once with [`ViewSet::create_view`] and kept
//! current by applying change-stream deltas instead of re-executing the
//! pipeline. Reads are served from a cached materialization at
//! point-read cost, tagged with a staleness watermark (the WAL sequence
//! number the view reflects).
//!
//! ## Invertibility
//!
//! Following the expressivity bounds of Botoeva et al. (PAPERS.md),
//! accumulators split into three classes:
//!
//! * **Invertible** — `$sum`, `$avg` (and `$sum: 1` counts): inserts
//!   accumulate, deletes retract by subtraction. Exactness is kept by
//!   counting numeric and double-typed inputs per group instead of
//!   latching flags, so a group whose doubles are all retracted
//!   finishes as an integer again, exactly like a recompute.
//! * **Insert-only maintainable** — `$min`, `$max`: inserts fold in
//!   directly; a retraction that removed a non-null input marks just
//!   the affected group dirty, and the next refresh recomputes that
//!   group (not the view) from the source collection.
//! * **Recompute-only** — `$first`, `$last`, `$push`, `$addToSet`
//!   depend on physical document order; [`ViewSet::create_view`]
//!   rejects them.
//!
//! ## Consistency
//!
//! Group output order is canonical key order (not the executor's
//! first-appearance order), then the registered `$sort`, so a view read
//! is deterministic regardless of delta arrival order. Reads serve the
//! last *clean* materialization: if a refresh leaves dirty groups
//! behind (it recomputes them under the source collection's read lock,
//! so this only happens transiently), readers keep the previous
//! consistent snapshot and its watermark.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use doclite_bson::{Document, Value};
use parking_lot::Mutex;

use crate::agg::exec::sort_documents;
use crate::agg::{Accumulator, Expr, GroupId, Pipeline, Stage};
use crate::changes::{watch, ChangeCursor, ChangeScope};
use crate::database::Database;
use crate::error::{Error, Result};
use crate::keybytes;
use crate::query::{compile, matches_compiled, CompiledFilter};
use crate::wal::{DurableDb, Wal, WalRecord};

/// Rounds of the dirty-group/drain loop per refresh before giving up
/// and leaving the stale-but-consistent cache in place (only reachable
/// under a sustained concurrent write storm).
const MAX_DIRTY_ROUNDS: usize = 32;

/// Frames applied per [`ViewSet::refresh`] call before it returns:
/// keeps one refresh bounded even when writers outpace the applier, so
/// readers blocked on the set mutex are never starved. The next refresh
/// resumes at the cursor position this one reached; the staleness
/// watermark reports the lag honestly in the meantime.
const MAX_FRAMES_PER_REFRESH: usize = 1 << 16;

/// What one [`ViewSet::refresh`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Change-stream frames applied across all views.
    pub frames_applied: u64,
    /// Views rebuilt from a full source scan (resume token truncated,
    /// or first build).
    pub full_rebuilds: u64,
    /// Dirty groups recomputed from the source (non-invertible
    /// accumulators under retraction).
    pub groups_recomputed: u64,
    /// Heartbeat frames appended because the stream was idle.
    pub heartbeats: u64,
}

/// One accumulator's input contribution from one document — what a
/// later retraction needs in order to subtract (or to know it must mark
/// the group dirty instead).
#[derive(Clone, Copy, Debug)]
enum Contrib {
    /// Non-numeric (for `$sum`/`$avg`) or null (for `$min`/`$max`)
    /// input: the accumulator ignored it, so retraction is free.
    Skip,
    /// Numeric input folded into `$sum`/`$avg`.
    Num { n: f64, double: bool },
    /// Non-null input folded into `$min`/`$max`: retraction dirties the
    /// group.
    Ext,
}

/// Running state of one accumulator in one group, with exact
/// retraction support for the invertible kinds.
#[derive(Clone, Debug)]
enum ViewAcc {
    Sum { total: f64, numeric: u64, doubles: u64 },
    Avg { total: f64, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl ViewAcc {
    fn new(spec: &Accumulator) -> Result<ViewAcc> {
        match spec {
            Accumulator::Sum(_) => Ok(ViewAcc::Sum { total: 0.0, numeric: 0, doubles: 0 }),
            Accumulator::Avg(_) => Ok(ViewAcc::Avg { total: 0.0, count: 0 }),
            Accumulator::Min(_) => Ok(ViewAcc::Min(None)),
            Accumulator::Max(_) => Ok(ViewAcc::Max(None)),
            Accumulator::First(_)
            | Accumulator::Last(_)
            | Accumulator::Push(_)
            | Accumulator::AddToSet(_) => Err(Error::InvalidQuery(
                "$first/$last/$push/$addToSet depend on document order and are not \
                 incrementally maintainable; this accumulator is recompute-only"
                    .into(),
            )),
        }
    }

    /// Folds one evaluated input in; returns the contribution to record
    /// for retraction. Semantics mirror `AccState::accumulate_resolved`
    /// exactly (pinned by the view-equivalence proptests).
    fn accumulate(&mut self, v: Value) -> Contrib {
        match self {
            ViewAcc::Sum { total, numeric, doubles } => match v.as_f64() {
                Some(n) => {
                    let double = !matches!(v, Value::Int32(_) | Value::Int64(_));
                    *total += n;
                    *numeric += 1;
                    *doubles += double as u64;
                    Contrib::Num { n, double }
                }
                None => Contrib::Skip,
            },
            ViewAcc::Avg { total, count } => match v.as_f64() {
                Some(n) => {
                    *total += n;
                    *count += 1;
                    Contrib::Num { n, double: false }
                }
                None => Contrib::Skip,
            },
            ViewAcc::Min(cur) => {
                if v.is_null() {
                    return Contrib::Skip;
                }
                if cur
                    .as_ref()
                    .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(v);
                }
                Contrib::Ext
            }
            ViewAcc::Max(cur) => {
                if v.is_null() {
                    return Contrib::Skip;
                }
                if cur
                    .as_ref()
                    .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Greater)
                {
                    *cur = Some(v);
                }
                Contrib::Ext
            }
        }
    }

    /// Subtracts a recorded contribution; returns whether the group
    /// must be recomputed (`$min`/`$max` lost an input).
    fn retract(&mut self, contrib: Contrib) -> bool {
        match (self, contrib) {
            (_, Contrib::Skip) => false,
            (ViewAcc::Sum { total, numeric, doubles }, Contrib::Num { n, double }) => {
                *total -= n;
                *numeric -= 1;
                *doubles -= double as u64;
                false
            }
            (ViewAcc::Avg { total, count }, Contrib::Num { n, .. }) => {
                *total -= n;
                *count -= 1;
                false
            }
            (ViewAcc::Min(_) | ViewAcc::Max(_), Contrib::Ext) => true,
            _ => unreachable!("contribution kind mismatches accumulator kind"),
        }
    }

    /// Final value, mirroring `AccState::finish`.
    fn finish(&self) -> Value {
        match self {
            ViewAcc::Sum { total, numeric, doubles } => {
                if *numeric == 0 {
                    Value::Int64(0)
                } else if *doubles == 0 && total.fract() == 0.0 && total.abs() < i64::MAX as f64
                {
                    Value::Int64(*total as i64)
                } else {
                    Value::Double(*total)
                }
            }
            ViewAcc::Avg { total, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*total / *count as f64)
                }
            }
            ViewAcc::Min(v) | ViewAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// One group's incremental state.
#[derive(Clone, Debug)]
struct GroupState {
    /// First-seen group-key value, emitted as `_id`.
    rep: Value,
    /// Documents currently contributing (passing the view filter).
    live: u64,
    accs: Vec<ViewAcc>,
    /// A `$min`/`$max` input was retracted; the group's accumulators
    /// can't be trusted until recomputed from the source.
    dirty: bool,
}

/// Everything one document contributed, keyed for retraction.
#[derive(Clone, Debug)]
struct DocContrib {
    group: Vec<u8>,
    inputs: Vec<Contrib>,
}

#[derive(Default)]
struct ViewState {
    /// Canonical-key-bytes → group; BTreeMap so materialization is in
    /// canonical key order.
    groups: BTreeMap<Vec<u8>, GroupState>,
    /// `_id` key bytes → contribution, for retraction on delete/update.
    contribs: HashMap<Vec<u8>, DocContrib>,
    dirty_groups: usize,
}

/// The compiled, validated shape of a registered view.
struct CompiledView {
    source: String,
    filters: Vec<CompiledFilter>,
    id: GroupId,
    fields: Vec<(String, Accumulator)>,
    sort: Option<Vec<(String, i32)>>,
    limit: Option<usize>,
    pipeline: Pipeline,
}

impl CompiledView {
    fn compile(source: &str, pipeline: &Pipeline) -> Result<CompiledView> {
        let shape_err = || {
            Error::InvalidQuery(
                "view pipelines must be $match* -> $group [-> $sort [-> $limit]]; other \
                 stages are recompute-only"
                    .into(),
            )
        };
        let mut stages = pipeline.stages().iter();
        let mut filters = Vec::new();
        let mut group = None;
        let mut sort = None;
        let mut limit = None;
        for stage in &mut stages {
            match stage {
                Stage::Match(f) if group.is_none() => filters.push(compile(f)),
                Stage::Group { id, fields } if group.is_none() => {
                    group = Some((id.clone(), fields.clone()));
                }
                Stage::Sort(spec) if group.is_some() && sort.is_none() && limit.is_none() => {
                    sort = Some(spec.clone());
                }
                Stage::Limit(n) if group.is_some() && limit.is_none() => limit = Some(*n),
                _ => return Err(shape_err()),
            }
        }
        let (id, fields) = group.ok_or_else(shape_err)?;
        for (_, spec) in &fields {
            ViewAcc::new(spec)?; // rejects recompute-only accumulators
        }
        Ok(CompiledView {
            source: source.to_owned(),
            filters,
            id,
            fields,
            sort,
            limit,
            pipeline: pipeline.clone(),
        })
    }

    fn matches(&self, doc: &Document) -> bool {
        self.filters.iter().all(|f| matches_compiled(f, doc))
    }

    fn eval_key(&self, doc: &Document) -> Result<Value> {
        match &self.id {
            GroupId::Null => Ok(Value::Null),
            GroupId::Expr(e) => e.eval(doc),
        }
    }
}

struct View {
    def: CompiledView,
    state: ViewState,
    /// WAL seq this view's state reflects (frames at or below are
    /// applied or subsumed by a rebuild scan).
    watermark: u64,
    /// Whether `state` changed since the clean cache was built.
    touched: bool,
    /// The served materialization and the watermark it was clean at.
    clean_docs: Arc<Vec<Document>>,
    clean_watermark: u64,
}

impl View {
    fn mark_dirty(state: &mut ViewState, key: &[u8]) {
        if let Some(g) = state.groups.get_mut(key) {
            if !g.dirty {
                g.dirty = true;
                state.dirty_groups += 1;
            }
        }
    }

    fn apply_insert(def: &CompiledView, state: &mut ViewState, doc: &Document) -> Result<()> {
        if !def.matches(doc) {
            return Ok(());
        }
        let key = def.eval_key(doc)?;
        let mut kb = Vec::new();
        keybytes::encode_into(&key, &mut kb);
        let group = state.groups.entry(kb.clone()).or_insert_with(|| GroupState {
            rep: key,
            live: 0,
            accs: def
                .fields
                .iter()
                .map(|(_, spec)| ViewAcc::new(spec).expect("validated at create_view"))
                .collect(),
            dirty: false,
        });
        group.live += 1;
        let mut inputs = Vec::with_capacity(def.fields.len());
        for ((_, spec), acc) in def.fields.iter().zip(group.accs.iter_mut()) {
            let v = spec_expr(spec).eval(doc)?;
            inputs.push(acc.accumulate(v));
        }
        if let Some(id) = doc.id() {
            let mut idb = Vec::new();
            keybytes::encode_into(id, &mut idb);
            state.contribs.insert(idb, DocContrib { group: kb, inputs });
        }
        Ok(())
    }

    fn apply_retract(state: &mut ViewState, id: &Value) {
        let mut idb = Vec::new();
        keybytes::encode_into(id, &mut idb);
        let Some(contrib) = state.contribs.remove(&idb) else {
            return; // the document never passed the view's filter
        };
        let Some(group) = state.groups.get_mut(&contrib.group) else {
            return;
        };
        let mut needs_recompute = false;
        for (acc, c) in group.accs.iter_mut().zip(contrib.inputs) {
            needs_recompute |= acc.retract(c);
        }
        group.live -= 1;
        if group.live == 0 {
            // The group vanishes outright — a recompute would not emit
            // it, so no dirty recompute is needed either.
            let was_dirty = group.dirty;
            state.groups.remove(&contrib.group);
            if was_dirty {
                state.dirty_groups -= 1;
            }
        } else if needs_recompute {
            View::mark_dirty(state, &contrib.group);
        }
    }

    /// Applies one change-stream record; the caller advances the
    /// watermark.
    fn apply_record(&mut self, record: &WalRecord) -> Result<()> {
        match record {
            WalRecord::Insert { doc, .. } => {
                self.touched = true;
                View::apply_insert(&self.def, &mut self.state, doc)
            }
            WalRecord::Update { doc, .. } => {
                self.touched = true;
                if let Some(id) = doc.id() {
                    let id = id.clone();
                    View::apply_retract(&mut self.state, &id);
                }
                View::apply_insert(&self.def, &mut self.state, doc)
            }
            WalRecord::Delete { ids, .. } => {
                self.touched = true;
                for id in ids {
                    View::apply_retract(&mut self.state, id);
                }
                Ok(())
            }
            WalRecord::DropCollection { .. } => {
                self.touched = true;
                self.state = ViewState::default();
                Ok(())
            }
            // Index ops don't change content; Noop/Seal are markers.
            WalRecord::CreateIndex { .. }
            | WalRecord::DropIndex { .. }
            | WalRecord::Seal { .. }
            | WalRecord::Noop => Ok(()),
        }
    }

    fn materialize(&self) -> Vec<Document> {
        let mut out = Vec::with_capacity(self.state.groups.len());
        for group in self.state.groups.values() {
            let mut d = Document::new();
            d.set("_id", group.rep.clone());
            for ((name, _), acc) in self.def.fields.iter().zip(&group.accs) {
                d.set(name.clone(), acc.finish());
            }
            out.push(d);
        }
        if let Some(spec) = &self.def.sort {
            sort_documents(&mut out, spec);
        }
        if let Some(n) = self.def.limit {
            out.truncate(n);
        }
        out
    }
}

fn spec_expr(spec: &Accumulator) -> &Expr {
    match spec {
        Accumulator::Sum(e)
        | Accumulator::Avg(e)
        | Accumulator::Min(e)
        | Accumulator::Max(e)
        | Accumulator::First(e)
        | Accumulator::Last(e)
        | Accumulator::Push(e)
        | Accumulator::AddToSet(e) => e,
    }
}

struct SetInner {
    cursor: ChangeCursor,
    views: BTreeMap<String, View>,
}

/// A view's served materialization and the watermark it is clean at.
type Snapshot = (Arc<Vec<Document>>, u64);

/// A registry of incrementally maintained views over one database's
/// WAL. All maintenance happens inside [`ViewSet::refresh`]; reads
/// never touch the source collections.
pub struct ViewSet {
    db: Arc<Database>,
    wal: Arc<Wal>,
    inner: Mutex<SetInner>,
    /// Clean snapshots by view name, behind their own lock: a read
    /// never queues behind a refresh mid-drain. Lock order: `inner`
    /// before `published` (reads take only `published`).
    published: Mutex<BTreeMap<String, Snapshot>>,
    heartbeat_on_idle: std::sync::atomic::AtomicBool,
}

impl ViewSet {
    /// A view set following `db`'s writes through `wal`. The stream
    /// starts at the current tip; views register with a full build.
    pub fn new(db: Arc<Database>, wal: Arc<Wal>) -> Result<ViewSet> {
        let cursor = watch(&wal, ChangeScope::Database, None)?;
        Ok(ViewSet {
            db,
            wal,
            inner: Mutex::new(SetInner { cursor, views: BTreeMap::new() }),
            published: Mutex::new(BTreeMap::new()),
            heartbeat_on_idle: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Convenience constructor over a [`DurableDb`].
    pub fn for_durable(ddb: &DurableDb) -> Result<ViewSet> {
        ViewSet::new(Arc::clone(ddb.db()), Arc::clone(ddb.wal()))
    }

    /// When enabled, an idle [`ViewSet::refresh`] appends a
    /// [`WalRecord::Noop`] heartbeat so watermarks (and resume tokens)
    /// demonstrably advance without real traffic.
    pub fn set_heartbeat_on_idle(&self, on: bool) {
        self.heartbeat_on_idle.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Registers and fully builds a view. Fails if the name is taken,
    /// the pipeline shape is not maintainable, or the initial build
    /// hits an expression error.
    pub fn create_view(&self, name: &str, source: &str, pipeline: Pipeline) -> Result<()> {
        let def = CompiledView::compile(source, &pipeline)?;
        let mut inner = self.inner.lock();
        if inner.views.contains_key(name) {
            return Err(Error::InvalidQuery(format!("view already exists: {name}")));
        }
        let mut view = View {
            def,
            state: ViewState::default(),
            watermark: 0,
            touched: false,
            clean_docs: Arc::new(Vec::new()),
            clean_watermark: 0,
        };
        self.rebuild(&mut view)?;
        view.clean_docs = Arc::new(view.materialize());
        view.clean_watermark = view.watermark;
        view.touched = false;
        self.published
            .lock()
            .insert(name.to_owned(), (Arc::clone(&view.clean_docs), view.clean_watermark));
        inner.views.insert(name.to_owned(), view);
        Ok(())
    }

    /// Unregisters a view; returns whether it existed.
    pub fn drop_view(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        let existed = inner.views.remove(name).is_some();
        self.published.lock().remove(name);
        existed
    }

    /// Registered view names.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.lock().views.keys().cloned().collect()
    }

    /// The registered pipeline (for re-execution comparisons).
    pub fn pipeline(&self, name: &str) -> Option<(String, Pipeline)> {
        let inner = self.inner.lock();
        inner
            .views
            .get(name)
            .map(|v| (v.def.source.clone(), v.def.pipeline.clone()))
    }

    /// The view's current consistent materialization and the WAL seq it
    /// reflects. Point-read cost: one (uncontended) mutex, one `Arc`
    /// clone — reads go through the published-snapshot map, never the
    /// maintenance lock, so a refresh mid-drain cannot stall them.
    pub fn read(&self, name: &str) -> Result<(Arc<Vec<Document>>, u64)> {
        let published = self.published.lock();
        let (docs, watermark) = published
            .get(name)
            .ok_or_else(|| Error::InvalidQuery(format!("no such view: {name}")))?;
        Ok((Arc::clone(docs), *watermark))
    }

    /// How many frames the served materialization trails the log tip.
    pub fn staleness(&self, name: &str) -> Result<u64> {
        let (_, watermark) = self.read(name)?;
        Ok(self.wal.last_seq().saturating_sub(watermark))
    }

    /// Explains the view's registered pipeline against its source
    /// collection (per-stage estimates and physical decisions, as
    /// [`Collection::explain_aggregate`]) and reports how far the
    /// served materialization currently trails the log tip.
    ///
    /// [`Collection::explain_aggregate`]: crate::Collection::explain_aggregate
    pub fn explain(&self, name: &str) -> Result<crate::AggExplain> {
        let (source, pipeline) = self
            .pipeline(name)
            .ok_or_else(|| Error::InvalidQuery(format!("no such view: {name}")))?;
        let staleness = self.staleness(name)?;
        let coll = self.db.get_collection(&source)?;
        let mut explain = coll.explain_aggregate(&pipeline, Some(self.db.as_ref()))?;
        explain.view_staleness = Some(staleness);
        Ok(explain)
    }

    /// Applies every committed change, recomputes dirty groups, and
    /// republishes clean materializations. On a truncated resume token
    /// (the set fell behind a checkpoint) every view is rebuilt from a
    /// full source scan — the documented fallback.
    pub fn refresh(&self) -> Result<ViewStats> {
        let mut inner = self.inner.lock();
        let mut stats = ViewStats::default();
        self.drain(&mut inner, &mut stats)?;

        // Dirty groups are recomputed under the source collection's
        // read lock, which also blocks new source writes; frames that
        // raced in from *other* collections are applied first, so the
        // scan and the incremental state agree on the watermark. A
        // recompute can itself be outrun by writes to other views'
        // sources, hence the bounded loop.
        for _ in 0..MAX_DIRTY_ROUNDS {
            let Some(name) = inner
                .views
                .iter()
                .find(|(_, v)| v.state.dirty_groups > 0)
                .map(|(n, _)| n.clone())
            else {
                break;
            };
            self.recompute_dirty(&mut inner, &name, &mut stats)?;
        }

        if stats.frames_applied == 0
            && self.heartbeat_on_idle.load(std::sync::atomic::Ordering::Relaxed)
        {
            self.wal.heartbeat()?;
            stats.heartbeats += 1;
            self.drain(&mut inner, &mut stats)?;
        }

        for (name, view) in inner.views.iter_mut() {
            let clean = view.state.dirty_groups == 0;
            if clean && (view.touched || view.watermark > view.clean_watermark) {
                if view.touched {
                    view.clean_docs = Arc::new(view.materialize());
                }
                view.clean_watermark = view.watermark;
                view.touched = false;
                self.published
                    .lock()
                    .insert(name.clone(), (Arc::clone(&view.clean_docs), view.clean_watermark));
            }
        }
        Ok(stats)
    }

    /// Drains the shared cursor (up to [`MAX_FRAMES_PER_REFRESH`]
    /// frames), fanning each frame out to every view whose watermark
    /// hasn't subsumed it. A truncated token rebuilds everything.
    fn drain(&self, inner: &mut SetInner, stats: &mut ViewStats) -> Result<()> {
        let mut budget = MAX_FRAMES_PER_REFRESH;
        loop {
            let next = match inner.cursor.try_next() {
                Ok(next) => next,
                Err(Error::TruncatedToken { .. }) => {
                    // Re-subscribe at the tip *before* rebuilding, so
                    // nothing committed after the rebuild scan is lost.
                    inner.cursor = watch(&self.wal, ChangeScope::Database, None)?;
                    for view in inner.views.values_mut() {
                        self.rebuild(view)?;
                        stats.full_rebuilds += 1;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            let Some(frame) = next else { return Ok(()) };
            stats.frames_applied += 1;
            for view in inner.views.values_mut() {
                if frame.seq <= view.watermark {
                    continue;
                }
                if frame.record.coll().is_none_or(|c| c == view.def.source) {
                    view.apply_record(&frame.record)?;
                }
                view.watermark = frame.seq;
            }
            budget -= 1;
            if budget == 0 {
                return Ok(());
            }
        }
    }

    /// Rebuilds one view from a full scan of its source, capturing the
    /// watermark under the collection's read lock so no write can fall
    /// between the scan and the token.
    fn rebuild(&self, view: &mut View) -> Result<()> {
        let coll = self.db.collection(&view.def.source);
        let mut state = ViewState::default();
        let mut token = 0;
        let mut failed = None;
        coll.with_docs(&mut |docs| {
            token = self.wal.last_seq();
            for doc in docs {
                if let Err(e) = View::apply_insert(&view.def, &mut state, doc) {
                    failed = Some(e);
                    return;
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        view.state = state;
        view.watermark = token;
        view.touched = true;
        Ok(())
    }

    /// Recomputes the named view's dirty groups from its source. Under
    /// the source's read lock no new source frames can commit, so after
    /// an in-lock catch-up the scan is exactly the state at the
    /// cursor's position.
    fn recompute_dirty(
        &self,
        inner: &mut SetInner,
        name: &str,
        stats: &mut ViewStats,
    ) -> Result<()> {
        let source = inner.views[name].def.source.clone();
        let coll = self.db.collection(&source);
        let mut failed = None;
        coll.with_docs(&mut |docs| {
            // Frames committed between the outer drain and this lock
            // acquisition (any collection) are folded in first.
            let pending = match self.wal.frames_since(inner.cursor.resume_token()) {
                Ok(p) => p,
                Err(e) => {
                    failed = Some(e);
                    return;
                }
            };
            if !pending.is_empty() {
                // Cheaper to retry from the top of refresh's loop than
                // to duplicate the drain (with its truncation fallback)
                // inside a lock we want to hold briefly.
                return;
            }
            let view = inner.views.get_mut(name).expect("checked by caller");
            let dirty: Vec<Vec<u8>> = view
                .state
                .groups
                .iter()
                .filter(|(_, g)| g.dirty)
                .map(|(k, _)| k.clone())
                .collect();
            let mut rebuilt: BTreeMap<Vec<u8>, GroupState> = BTreeMap::new();
            let mut kb = Vec::new();
            for doc in docs {
                if !view.def.matches(doc) {
                    continue;
                }
                let key = match view.def.eval_key(doc) {
                    Ok(k) => k,
                    Err(e) => {
                        failed = Some(e);
                        return;
                    }
                };
                keybytes::encode_into(&key, &mut kb);
                if !dirty.iter().any(|d| d == &kb) {
                    continue;
                }
                let group = rebuilt.entry(kb.clone()).or_insert_with(|| GroupState {
                    rep: key,
                    live: 0,
                    accs: view
                        .def
                        .fields
                        .iter()
                        .map(|(_, spec)| ViewAcc::new(spec).expect("validated"))
                        .collect(),
                    dirty: false,
                });
                group.live += 1;
                for ((_, spec), acc) in view.def.fields.iter().zip(group.accs.iter_mut()) {
                    match spec_expr(spec).eval(doc) {
                        Ok(v) => {
                            acc.accumulate(v);
                        }
                        Err(e) => {
                            failed = Some(e);
                            return;
                        }
                    }
                }
            }
            for key in dirty {
                match rebuilt.remove(&key) {
                    Some(g) => {
                        view.state.groups.insert(key, g);
                    }
                    None => {
                        view.state.groups.remove(&key);
                    }
                }
                stats.groups_recomputed += 1;
            }
            view.state.dirty_groups = 0;
            view.touched = true;
        });
        match failed {
            Some(e) => Err(e),
            None => {
                // If pending frames aborted the recompute, fold them in
                // now; the outer loop will come back for the dirt.
                self.drain(inner, stats)
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use crate::update::UpdateSpec;
    use crate::wal::{SyncPolicy, WalOptions};
    use doclite_bson::doc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "doclite-views-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> WalOptions {
        WalOptions { sync: SyncPolicy::Never, faults: None }
    }

    /// The Q7 shape from the thesis: filter, group by category, sum /
    /// count / avg, ordered output.
    fn q7() -> Pipeline {
        Pipeline::new()
            .match_stage(Filter::gte("qty", 0i64))
            .group(
                GroupId::Expr(Expr::field("cat")),
                [
                    ("revenue", Accumulator::sum_field("price")),
                    ("n", Accumulator::count()),
                    ("avg_qty", Accumulator::avg_field("qty")),
                ],
            )
            .sort([("_id", 1)])
    }

    fn recompute(db: &Database, source: &str, pipeline: &Pipeline) -> Vec<Document> {
        db.aggregate(source, pipeline).unwrap()
    }

    #[test]
    fn view_read_matches_recompute_through_inserts_updates_deletes() {
        let dir = tmpdir("equiv");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let sales = ddb.db().collection("sales");
        for i in 0..40i64 {
            sales
                .insert_one(doc! {
                    "_id" => i,
                    "cat" => format!("c{}", i % 5),
                    "price" => (i * 3) % 17,
                    "qty" => i % 7,
                })
                .unwrap();
        }
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("q7", "sales", q7()).unwrap();

        let (docs, _) = views.read("q7").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "sales", &q7()));

        // Mutate: updates move documents between groups, deletes retract.
        sales
            .update(&Filter::eq("_id", 3i64), &UpdateSpec::set("cat", "c0"), false, false)
            .unwrap();
        sales.delete_many(&Filter::eq("cat", "c4"));
        sales.insert_one(doc! {"_id" => 100i64, "cat" => "c9", "price" => 5i64, "qty" => 2i64}).unwrap();
        let stats = views.refresh().unwrap();
        assert!(stats.frames_applied > 0);
        assert_eq!(stats.full_rebuilds, 0, "all deltas must apply incrementally");

        let (docs, watermark) = views.read("q7").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "sales", &q7()));
        assert_eq!(watermark, ddb.wal().last_seq());
        assert_eq!(views.staleness("q7").unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_reports_staleness_and_stage_plan() {
        let dir = tmpdir("explain");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let sales = ddb.db().collection("sales");
        for i in 0..20i64 {
            sales
                .insert_one(doc! {"_id" => i, "cat" => format!("c{}", i % 3), "price" => i, "qty" => 1i64})
                .unwrap();
        }
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("q7", "sales", q7()).unwrap();

        let ex = views.explain("q7").unwrap();
        assert_eq!(ex.collection, "sales");
        assert_eq!(ex.view_staleness, Some(0));
        assert_eq!(ex.stages.len(), 3); // $match, $group, $sort
        assert_eq!(ex.stages[0].stage, "$match");
        assert!(ex.stages[0].decision.is_some());

        // New writes the view has not refreshed past show up as lag.
        sales.insert_one(doc! {"_id" => 100i64, "cat" => "c0", "price" => 1i64, "qty" => 1i64}).unwrap();
        let lag = views.explain("q7").unwrap().view_staleness.unwrap();
        assert!(lag > 0, "unrefreshed write must surface as staleness");
        views.refresh().unwrap();
        assert_eq!(views.explain("q7").unwrap().view_staleness, Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filter_transitions_are_tracked_across_updates() {
        let dir = tmpdir("filter");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        c.insert_one(doc! {"_id" => 1i64, "cat" => "a", "price" => 10i64, "qty" => 1i64}).unwrap();
        c.insert_one(doc! {"_id" => 2i64, "cat" => "a", "price" => 20i64, "qty" => -5i64}).unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        // _id 2 fails the qty >= 0 filter; only _id 1 contributes.
        let (docs, _) = views.read("v").unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].get("revenue"), Some(&Value::Int64(10)));

        // Leave the filter (1), enter it (2): retraction must only touch
        // documents that contributed.
        c.update(&Filter::eq("_id", 1i64), &UpdateSpec::set("qty", -1i64), false, false).unwrap();
        c.update(&Filter::eq("_id", 2i64), &UpdateSpec::set("qty", 5i64), false, false).unwrap();
        views.refresh().unwrap();
        let (docs, _) = views.read("v").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "s", &q7()));
        assert_eq!(docs[0].get("revenue"), Some(&Value::Int64(20)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn min_max_deletes_recompute_only_the_dirty_group() {
        let dir = tmpdir("minmax");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        for i in 0..10i64 {
            c.insert_one(doc! {"_id" => i, "g" => i % 2, "v" => i}).unwrap();
        }
        let pipeline = Pipeline::new()
            .group(
                GroupId::Expr(Expr::field("g")),
                [
                    ("lo", Accumulator::Min(Expr::field("v"))),
                    ("hi", Accumulator::Max(Expr::field("v"))),
                ],
            )
            .sort([("_id", 1)]);
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("mm", "s", pipeline.clone()).unwrap();

        // Deleting the max of group 1 (v=9) invalidates that group only.
        c.delete_many(&Filter::eq("_id", 9i64));
        let stats = views.refresh().unwrap();
        assert_eq!(stats.groups_recomputed, 1);
        let (docs, _) = views.read("mm").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "s", &pipeline));
        assert_eq!(docs[1].get("hi"), Some(&Value::Int64(7)));

        // Deleting a middle value retracts without recomputation.
        c.delete_many(&Filter::eq("_id", 4i64));
        let stats = views.refresh().unwrap();
        assert_eq!(stats.groups_recomputed, 1, "min/max retraction is conservative");
        assert_eq!(*views.read("mm").unwrap().0, recompute(ddb.db(), "s", &pipeline));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_disappears_when_its_last_contributor_leaves() {
        let dir = tmpdir("vanish");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        c.insert_one(doc! {"_id" => 1i64, "cat" => "only", "price" => 1i64, "qty" => 1i64})
            .unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        assert_eq!(views.read("v").unwrap().0.len(), 1);
        c.delete_many(&Filter::eq("_id", 1i64));
        views.refresh().unwrap();
        assert!(views.read("v").unwrap().0.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recompute_only_accumulators_and_bad_shapes_are_rejected() {
        let dir = tmpdir("reject");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        let push = Pipeline::new().group(
            GroupId::Null,
            [("all", Accumulator::Push(Expr::field("v")))],
        );
        assert!(matches!(views.create_view("p", "s", push), Err(Error::InvalidQuery(_))));
        let unwind = Pipeline::new().unwind("tags").group(
            GroupId::Null,
            [("n", Accumulator::count())],
        );
        assert!(matches!(views.create_view("u", "s", unwind), Err(Error::InvalidQuery(_))));
        let no_group = Pipeline::new().match_stage(Filter::eq("a", 1i64));
        assert!(matches!(views.create_view("m", "s", no_group), Err(Error::InvalidQuery(_))));
        // $match after $group is a post-filter the delta path can't model.
        let late_match = Pipeline::new()
            .group(GroupId::Null, [("n", Accumulator::count())])
            .match_stage(Filter::eq("n", 1i64));
        assert!(matches!(views.create_view("l", "s", late_match), Err(Error::InvalidQuery(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncation_falls_back_to_full_rebuild() {
        let dir = tmpdir("trunc");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        c.insert_one(doc! {"_id" => 0i64, "cat" => "a", "price" => 1i64, "qty" => 1i64}).unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();

        // Shrink the in-memory tail so the checkpoint's truncation
        // really leaves the cursor's token unreachable.
        ddb.wal().set_change_capacity(1);
        for i in 1..20i64 {
            c.insert_one(doc! {"_id" => i, "cat" => "a", "price" => i, "qty" => 1i64}).unwrap();
        }
        ddb.checkpoint().unwrap();
        c.insert_one(doc! {"_id" => 100i64, "cat" => "b", "price" => 2i64, "qty" => 1i64})
            .unwrap();

        let stats = views.refresh().unwrap();
        assert_eq!(stats.full_rebuilds, 1, "lost log range must force a rebuild");
        let (docs, watermark) = views.read("v").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "s", &q7()));
        assert_eq!(watermark, ddb.wal().last_seq());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn idle_refresh_heartbeats_and_advances_the_watermark() {
        let dir = tmpdir("idle");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        ddb.db()
            .collection("s")
            .insert_one(doc! {"_id" => 1i64, "cat" => "a", "price" => 1i64, "qty" => 1i64})
            .unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        let before = views.read("v").unwrap().1;

        let stats = views.refresh().unwrap();
        assert_eq!(stats.heartbeats, 0, "heartbeating is opt-in");
        assert_eq!(views.read("v").unwrap().1, before);

        views.set_heartbeat_on_idle(true);
        let stats = views.refresh().unwrap();
        assert_eq!(stats.heartbeats, 1);
        assert_eq!(stats.frames_applied, 1, "the Noop itself flows through the stream");
        assert_eq!(views.read("v").unwrap().1, before + 1);
        assert_eq!(views.staleness("v").unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_the_source_collection_empties_the_view() {
        let dir = tmpdir("dropsrc");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        ddb.db()
            .collection("s")
            .insert_one(doc! {"_id" => 1i64, "cat" => "a", "price" => 1i64, "qty" => 1i64})
            .unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        assert_eq!(views.read("v").unwrap().0.len(), 1);
        ddb.db().drop_collection("s");
        views.refresh().unwrap();
        assert!(views.read("v").unwrap().0.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sum_type_latch_survives_retraction() {
        // A double-typed contribution forces Double output; retracting
        // it must restore integer output, exactly like a recompute.
        let dir = tmpdir("latch");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        c.insert_one(doc! {"_id" => 1i64, "cat" => "a", "price" => 2i64, "qty" => 1i64}).unwrap();
        c.insert_one(doc! {"_id" => 2i64, "cat" => "a", "price" => 0.25f64, "qty" => 1i64})
            .unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        assert_eq!(views.read("v").unwrap().0[0].get("revenue"), Some(&Value::Double(2.25)));

        c.delete_many(&Filter::eq("_id", 2i64));
        views.refresh().unwrap();
        let (docs, _) = views.read("v").unwrap();
        assert_eq!(*docs, recompute(ddb.db(), "s", &q7()));
        assert_eq!(docs[0].get("revenue"), Some(&Value::Int64(2)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_are_shared_snapshots_at_point_read_cost() {
        let dir = tmpdir("snap");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("s");
        c.insert_one(doc! {"_id" => 1i64, "cat" => "a", "price" => 1i64, "qty" => 1i64}).unwrap();
        let views = ViewSet::for_durable(&ddb).unwrap();
        views.create_view("v", "s", q7()).unwrap();
        let (before, _) = views.read("v").unwrap();
        // An unrefreshed read returns the same Arc — no recomputation.
        let (again, _) = views.read("v").unwrap();
        assert!(Arc::ptr_eq(&before, &again));
        // Refresh with changes swaps in a new snapshot; the old one is
        // still usable (readers are never invalidated in place).
        c.insert_one(doc! {"_id" => 2i64, "cat" => "a", "price" => 1i64, "qty" => 1i64}).unwrap();
        views.refresh().unwrap();
        let (after, _) = views.read("v").unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before[0].get("revenue"), Some(&Value::Int64(1)));
        assert_eq!(after[0].get("revenue"), Some(&Value::Int64(2)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
