//! The update language: `$set`, `$unset`, `$inc`, `$push`, whole-document
//! replacement, and upsert semantics.
//!
//! The thesis's `EmbedDocuments` algorithm (Fig 4.7) drives this API: its
//! step 10 is exactly `update(query, {$set: {fk: dimension_doc}},
//! upsert:false, multi:true)`.

use crate::error::{Error, Result};
use crate::query::filter::{CmpOp, Filter};
use doclite_bson::{Document, Value};

/// A single update operator application.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// `{$set: {path: value}}` — creates intermediate documents.
    Set(String, Value),
    /// `{$unset: {path: 1}}`.
    Unset(String),
    /// `{$inc: {path: n}}` — missing fields start at 0; non-numeric
    /// targets are an error.
    Inc(String, f64),
    /// `{$push: {path: value}}` — missing fields become 1-element arrays;
    /// non-array targets are an error.
    Push(String, Value),
}

/// An update specification: operator list or full replacement.
///
/// The two forms are mutually exclusive, exactly as in MongoDB: an
/// update document is either *all* operators (`$set`, `$inc`, …) or a
/// plain replacement body — never a mix. Chaining a builder method such
/// as [`UpdateSpec::and_set`] onto a [`UpdateSpec::Replace`] therefore
/// panics instead of silently discarding the operator.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateSpec {
    /// Apply operators in order.
    Ops(Vec<UpdateOp>),
    /// Replace the document body (the stored `_id` is preserved).
    Replace(Document),
}

impl UpdateSpec {
    /// Builder: a single `$set`.
    pub fn set(path: impl Into<String>, value: impl Into<Value>) -> Self {
        UpdateSpec::Ops(vec![UpdateOp::Set(path.into(), value.into())])
    }

    /// Builder: appends another op.
    pub fn and_set(self, path: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push_op(UpdateOp::Set(path.into(), value.into()))
    }

    /// Builder: `$unset`.
    pub fn and_unset(self, path: impl Into<String>) -> Self {
        self.push_op(UpdateOp::Unset(path.into()))
    }

    /// Builder: `$inc`.
    pub fn and_inc(self, path: impl Into<String>, by: f64) -> Self {
        self.push_op(UpdateOp::Inc(path.into(), by))
    }

    /// Builder: `$push`.
    pub fn and_push(self, path: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push_op(UpdateOp::Push(path.into(), value.into()))
    }

    /// Appends an operator. Panics on a [`UpdateSpec::Replace`] spec:
    /// replacement and operator updates are mutually exclusive, and
    /// dropping the chained operator on the floor would silently lose a
    /// user update.
    fn push_op(self, op: UpdateOp) -> Self {
        match self {
            UpdateSpec::Ops(mut ops) => {
                ops.push(op);
                UpdateSpec::Ops(ops)
            }
            UpdateSpec::Replace(_) => panic!(
                "cannot chain update operator {op:?} onto UpdateSpec::Replace: \
                 replacement and operator updates are mutually exclusive"
            ),
        }
    }
}

/// Outcome of an update call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateResult {
    /// Documents matched by the filter.
    pub matched: usize,
    /// Documents actually changed.
    pub modified: usize,
    /// `_id` of a document created by upsert, if any.
    pub upserted_id: Option<Value>,
}

/// Applies an update spec to a document in place. Returns whether the
/// document changed.
pub fn apply_update(doc: &mut Document, spec: &UpdateSpec) -> Result<bool> {
    match spec {
        UpdateSpec::Replace(body) => {
            let id = doc.id().cloned();
            let mut new_doc = body.clone();
            if let Some(id) = id {
                // _id is immutable: a replacement keeps the stored id.
                new_doc.remove("_id");
                let mut with_id = Document::with_capacity(new_doc.len() + 1);
                with_id.set("_id", id);
                for (k, v) in new_doc.into_iter() {
                    with_id.set(k, v);
                }
                let changed = *doc != with_id;
                *doc = with_id;
                Ok(changed)
            } else {
                let changed = doc != body;
                *doc = body.clone();
                Ok(changed)
            }
        }
        UpdateSpec::Ops(ops) => {
            let mut changed = false;
            for op in ops {
                changed |= apply_op(doc, op)?;
            }
            Ok(changed)
        }
    }
}

fn apply_op(doc: &mut Document, op: &UpdateOp) -> Result<bool> {
    match op {
        UpdateOp::Set(path, value) => {
            if path == "_id" {
                return Err(Error::InvalidQuery("_id is immutable".into()));
            }
            let before = doc.get_path(path);
            if before.as_ref() == Some(value) {
                return Ok(false);
            }
            if !doc.set_path(path, value.clone()) {
                return Err(Error::InvalidQuery(format!(
                    "cannot create field at path {path}: intermediate is not a document"
                )));
            }
            Ok(true)
        }
        UpdateOp::Unset(path) => Ok(remove_path(doc, path)),
        UpdateOp::Inc(path, by) => {
            let current = doc.get_path(path);
            let new_value = match &current {
                None => Value::Double(*by),
                Some(v) => match v.as_f64() {
                    Some(n) => {
                        // Preserve integer representation when possible.
                        let sum = n + by;
                        if v.is_numeric()
                            && !matches!(v, Value::Double(_))
                            && by.fract() == 0.0
                            && sum.fract() == 0.0
                            && sum.abs() < i64::MAX as f64
                        {
                            Value::Int64(sum as i64)
                        } else {
                            Value::Double(sum)
                        }
                    }
                    None => {
                        return Err(Error::InvalidQuery(format!(
                            "$inc target {path} is {}",
                            v.type_name()
                        )))
                    }
                },
            };
            // $inc by 0 (or a cancelling float) leaves the stored value
            // as-is: report unmodified, like $set on an equal value.
            if current.as_ref() == Some(&new_value) {
                return Ok(false);
            }
            if !doc.set_path(path, new_value) {
                return Err(Error::InvalidQuery(format!("bad $inc path {path}")));
            }
            Ok(true)
        }
        UpdateOp::Push(path, value) => {
            let before = doc.get_path(path);
            let new_value = match before {
                None => Value::Array(vec![value.clone()]),
                Some(Value::Array(mut items)) => {
                    items.push(value.clone());
                    Value::Array(items)
                }
                Some(other) => {
                    return Err(Error::InvalidQuery(format!(
                        "$push target {path} is {}",
                        other.type_name()
                    )))
                }
            };
            if !doc.set_path(path, new_value.clone()) {
                return Err(Error::InvalidQuery(format!("bad $push path {path}")));
            }
            // Compare before/after like $set: only report modified when
            // the stored value actually changed.
            Ok(doc.get_path(path).as_ref() == Some(&new_value))
        }
    }
}

fn remove_path(doc: &mut Document, path: &str) -> bool {
    match path.split_once('.') {
        None => doc.remove(path).is_some(),
        Some((head, rest)) => match doc.get_mut(head) {
            Some(Value::Document(inner)) => remove_path(inner, rest),
            _ => false,
        },
    }
}

/// Synthesizes the base document for an upsert: the filter's top-level
/// equality predicates become fields (MongoDB's upsert seeding rule).
pub fn upsert_seed(filter: &Filter) -> Document {
    let mut doc = Document::new();
    seed(filter, &mut doc);
    doc
}

fn seed(filter: &Filter, doc: &mut Document) {
    match filter {
        Filter::And(fs) => {
            for f in fs {
                seed(f, doc);
            }
        }
        Filter::Cmp { path, op: CmpOp::Eq, value } => {
            doc.set_path(path, value.clone());
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::{array, doc};

    #[test]
    fn set_replaces_and_reports_nochange() {
        let mut d = doc! {"a" => 1i64};
        assert!(apply_update(&mut d, &UpdateSpec::set("a", 2i64)).unwrap());
        assert!(!apply_update(&mut d, &UpdateSpec::set("a", 2i64)).unwrap());
        assert_eq!(d.get("a"), Some(&Value::Int64(2)));
    }

    #[test]
    fn set_creates_nested_path() {
        let mut d = Document::new();
        apply_update(&mut d, &UpdateSpec::set("x.y.z", 1i64)).unwrap();
        assert_eq!(d.get_path("x.y.z"), Some(Value::Int64(1)));
    }

    #[test]
    fn set_id_is_rejected() {
        let mut d = doc! {"_id" => 1i64};
        assert!(apply_update(&mut d, &UpdateSpec::set("_id", 2i64)).is_err());
    }

    #[test]
    fn unset_nested() {
        let mut d = doc! {"a" => doc!{"b" => 1i64, "c" => 2i64}};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Unset("a.b".into())]);
        assert!(apply_update(&mut d, &spec).unwrap());
        assert_eq!(d.get_path("a.b"), None);
        assert_eq!(d.get_path("a.c"), Some(Value::Int64(2)));
        // unsetting again is a no-op
        assert!(!apply_update(&mut d, &spec).unwrap());
    }

    #[test]
    fn inc_preserves_integers_and_seeds_missing() {
        let mut d = doc! {"n" => 5i64};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Inc("n".into(), 2.0)]);
        apply_update(&mut d, &spec).unwrap();
        assert_eq!(d.get("n"), Some(&Value::Int64(7)));
        let spec = UpdateSpec::Ops(vec![UpdateOp::Inc("m".into(), 1.5)]);
        apply_update(&mut d, &spec).unwrap();
        assert_eq!(d.get("m"), Some(&Value::Double(1.5)));
    }

    #[test]
    fn inc_on_string_errors() {
        let mut d = doc! {"s" => "x"};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Inc("s".into(), 1.0)]);
        assert!(apply_update(&mut d, &spec).is_err());
    }

    #[test]
    fn push_appends_or_creates() {
        let mut d = doc! {"xs" => array![1i64]};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Push("xs".into(), Value::Int64(2))]);
        apply_update(&mut d, &spec).unwrap();
        assert_eq!(d.get("xs"), Some(&array![1i64, 2i64]));
        let spec = UpdateSpec::Ops(vec![UpdateOp::Push("ys".into(), Value::Int64(9))]);
        apply_update(&mut d, &spec).unwrap();
        assert_eq!(d.get("ys"), Some(&array![9i64]));
    }

    #[test]
    fn inc_by_zero_reports_unmodified() {
        let mut d = doc! {"n" => 5i64};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Inc("n".into(), 0.0)]);
        assert!(!apply_update(&mut d, &spec).unwrap());
        assert_eq!(d.get("n"), Some(&Value::Int64(5)));
        // Incrementing a *missing* field by 0 still creates it — that is
        // a modification.
        let spec = UpdateSpec::Ops(vec![UpdateOp::Inc("m".into(), 0.0)]);
        assert!(apply_update(&mut d, &spec).unwrap());
        assert_eq!(d.get("m"), Some(&Value::Double(0.0)));
    }

    #[test]
    fn push_through_non_document_intermediate_errors() {
        let mut d = doc! {"a" => 1i64};
        let spec = UpdateSpec::Ops(vec![UpdateOp::Push("a.b".into(), Value::Int64(1))]);
        assert!(apply_update(&mut d, &spec).is_err());
        // The failed op must not report the document as modified.
        assert_eq!(d.get("a"), Some(&Value::Int64(1)));
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn chaining_op_onto_replace_panics() {
        let _ = UpdateSpec::Replace(doc! {"a" => 1i64}).and_set("b", 2i64);
    }

    #[test]
    fn replace_preserves_id() {
        let mut d = doc! {"_id" => 7i64, "a" => 1i64};
        let spec = UpdateSpec::Replace(doc! {"b" => 2i64});
        apply_update(&mut d, &spec).unwrap();
        assert_eq!(d.get("_id"), Some(&Value::Int64(7)));
        assert_eq!(d.get("a"), None);
        assert_eq!(d.get("b"), Some(&Value::Int64(2)));
    }

    #[test]
    fn upsert_seed_takes_equalities_only() {
        let f = Filter::and([
            Filter::eq("a", 1i64),
            Filter::gt("b", 5i64),
            Filter::eq("c.d", "x"),
        ]);
        let seed = upsert_seed(&f);
        assert_eq!(seed.get("a"), Some(&Value::Int64(1)));
        assert_eq!(seed.get("b"), None);
        assert_eq!(seed.get_path("c.d"), Some(Value::from("x")));
    }
}
