//! # doclite-docstore
//!
//! An in-process document store reproducing the MongoDB 3.0 semantics the
//! thesis's experiments exercise: schemaless collections of BSON-like
//! documents, a unique `_id` index plus secondary B-tree / hashed /
//! compound / multikey indexes selected under the index-prefix rule, the
//! match expression language, `$set`-family updates with upsert/multi,
//! and the aggregation pipeline (`$match`, `$project`, `$group`, `$sort`,
//! `$limit`, `$skip`, `$unwind`, `$count`, `$out`).
//!
//! ```
//! use doclite_docstore::{Database, Filter, Pipeline, Accumulator, GroupId, Expr, IndexDef};
//! use doclite_bson::doc;
//!
//! let db = Database::new("shop");
//! let sales = db.collection("sales");
//! sales.insert_one(doc! {"item" => "apple", "qty" => 5i64}).unwrap();
//! sales.insert_one(doc! {"item" => "apple", "qty" => 7i64}).unwrap();
//! sales.create_index(IndexDef::single("item")).unwrap();
//!
//! let out = db.aggregate("sales", &Pipeline::new()
//!     .match_stage(Filter::eq("item", "apple"))
//!     .group(GroupId::Expr(Expr::field("item")),
//!            [("total", Accumulator::sum_field("qty"))])).unwrap();
//! assert_eq!(out[0].get("total"), Some(&doclite_bson::Value::Int64(12)));
//! ```

pub mod agg;
pub mod changes;
pub mod collection;
pub mod columnar;
pub mod database;
pub mod dump;
pub mod error;
pub mod index;
pub mod keybytes;
pub mod ordvalue;
pub mod pool;
pub mod query;
pub mod stats;
pub mod storage;
pub mod update;
pub mod views;
pub mod wal;

pub use agg::{
    auto_morsel_size, default_exec_mode, execute_parallel_with, parallel_morsel_size,
    set_default_exec_mode, set_parallel_morsel_size, Accumulator, CompiledExpr, CompiledSortSpec,
    ExecMode, Expr, GroupId, LookupMeta, Pipeline, ProjectField, Stage,
};
pub use collection::{project_paths, AggExplain, Collection, Explain, FindOptions, StageExplain};
pub use stats::{
    columnar_auto, planner_mode, set_columnar_auto, set_planner_mode, CollStats, PlannerMode,
};
pub use pool::{parallel_for, parallel_workers, set_parallel_workers};
pub use database::Database;
pub use dump::{dump_collection, dump_database, restore_collection, restore_database, DumpReader};
pub use error::{Error, Result};
pub use index::{IndexDef, IndexKind, SortOrder};
pub use ordvalue::{CompoundKey, OrdValue};
pub use query::{compile, matches_compiled, CmpOp, CompiledFilter, Filter};
pub use storage::{crc32, Crc32, DocId, StorageFaults};
pub use update::{UpdateOp, UpdateResult, UpdateSpec};
pub use changes::{watch, ChangeCursor, ChangeEvent, ChangeScope};
pub use views::{ViewSet, ViewStats};
pub use wal::{
    apply_record, db_fingerprint, scan_wal, DurableDb, Frame, RecoveryReport, SyncPolicy, Wal,
    WalOptions, WalRecord,
};

/// Compile-time proof that the types worker threads share by reference
/// in the stress driver are `Send + Sync`. Never called; a violation
/// (e.g. an accidental `Rc` or raw-cell field) fails the build here
/// instead of deep inside a `thread::scope` in a downstream crate.
#[allow(dead_code)]
fn assert_shared_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Database>();
    check::<Collection>();
    check::<DurableDb>();
    check::<Wal>();
    check::<StorageFaults>();
}
