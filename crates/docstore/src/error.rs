//! Engine error type.

use std::fmt;

/// Errors surfaced by the storage and query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A document exceeded the 16 MB encoded-size cap.
    DocumentTooLarge { size: usize, max: usize },
    /// Insert with an `_id` that already exists in the collection.
    DuplicateId(String),
    /// The named collection does not exist.
    NoSuchCollection(String),
    /// An index with this name already exists with a different definition.
    IndexConflict(String),
    /// The named index does not exist.
    NoSuchIndex(String),
    /// An index definition is invalid (e.g. no fields, or more than one
    /// array-valued field per compound key).
    InvalidIndex(String),
    /// A malformed filter, update, or pipeline specification.
    InvalidQuery(String),
    /// An aggregation expression failed to evaluate.
    ExprError(String),
    /// A node, replica-set member, or shard could not be reached (or a
    /// write concern could not be satisfied). Retryable: the request may
    /// succeed after failover or fault recovery.
    Unavailable(String),
    /// A durability-layer failure: WAL I/O, checkpoint I/O, or a
    /// recovery integrity check (checksum, fingerprint) that did not
    /// pass. Carries the rendered cause; `io::Error` itself is not
    /// `PartialEq`, which this enum requires.
    Storage(String),
    /// The targeted shard no longer owns the key range the operation
    /// addressed (a chunk migrated away, or the shard itself left the
    /// cluster). Retryable: the router must refresh its routing view
    /// and re-target before trying again.
    StaleRoute(String),
    /// A change-stream resume token (WAL sequence number) older than
    /// what the log can still replay: a checkpoint truncated the frames
    /// the caller would need. Not retryable with the same token — the
    /// caller must fall back to a full re-read and resume from
    /// `oldest` or later.
    TruncatedToken {
        /// The token the caller presented.
        token: u64,
        /// The oldest sequence number still replayable.
        oldest: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DocumentTooLarge { size, max } => {
                write!(f, "document of {size} bytes exceeds the {max} byte cap")
            }
            Error::DuplicateId(id) => write!(f, "duplicate _id: {id}"),
            Error::NoSuchCollection(name) => write!(f, "no such collection: {name}"),
            Error::IndexConflict(name) => write!(f, "conflicting index definition: {name}"),
            Error::NoSuchIndex(name) => write!(f, "no such index: {name}"),
            Error::InvalidIndex(msg) => write!(f, "invalid index: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::ExprError(msg) => write!(f, "expression error: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::Storage(msg) => write!(f, "storage: {msg}"),
            Error::StaleRoute(msg) => write!(f, "stale route: {msg}"),
            Error::TruncatedToken { token, oldest } => write!(
                f,
                "resume token {token} was truncated by a checkpoint (oldest replayable seq \
                 is {oldest}); fall back to a full re-read"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, Error>;
