//! The optional per-collection columnar sidecar and its batch executor.
//!
//! A [`ColumnSet`] maintains typed column vectors (i64 / f64 / bool /
//! dictionary-encoded string) plus presence/typed/exotic validity
//! bitmaps for a declared list of scalar fields, keyed by slab slot.
//! The write path keeps it incrementally consistent (insert / update /
//! delete hooks in [`crate::collection`]); enabling it on a populated
//! collection rebuilds from the slab.
//!
//! [`plan`] compiles a pipeline prefix — the leading `$match` run plus
//! an immediately following `$group` or `$count` — against the declared
//! columns, and [`execute`] evaluates it in row-range chunks:
//! predicates become selection [`Mask`]s over column slices, and the
//! group terminal accumulates `$sum`/`$avg`/`$min`/`$max`/count (and
//! the rest of the accumulator family) straight from column cells
//! without materializing documents.
//!
//! Equivalence with the row executors is the design invariant, not an
//! aspiration:
//!
//! * every per-cell decision mirrors [`crate::query::matcher`] exactly
//!   (null-vs-missing, `$in` null lists, same-family gating of ordered
//!   comparisons);
//! * any cell the column representation cannot hold losslessly —
//!   arrays, documents, ObjectIds, DateTimes, or a scalar of the wrong
//!   type for the column (no lossy numeric promotion) — is marked
//!   *exotic*, and any chunk whose relevant columns contain an exotic
//!   cell falls back to the row path ([`matches_compiled`] /
//!   [`GroupKernel::feed`]) for that chunk, with identical results;
//! * pipelines (or suffixes) the planner does not cover run on the
//!   streaming executor unchanged, so results *and error strings* are
//!   identical by construction — every covered expression is a field
//!   path or literal, which cannot fail.
//!
//! Chunks are scanned in slot order; serial execution (one worker, or
//! fewer than two chunks) feeds one accumulator in slot order and is
//! bit-identical to streaming over a collection scan. Parallel chunks
//! merge in chunk order, sharing [`ExecMode::Parallel`]'s one caveat:
//! float running sums may differ by ULP-level non-associativity.
//!
//! [`ExecMode::Parallel`]: crate::agg::ExecMode::Parallel
//! [`GroupKernel::feed`]: crate::agg::kernel::GroupKernel::feed

use crate::agg::accum::Accumulator;
use crate::agg::kernel::GroupKernel;
use crate::agg::stage::{GroupId, Stage};
use crate::agg::Expr;
use crate::error::Result;
use crate::ordvalue::OrdValue;
use crate::pool;
use crate::query::filter::{CmpOp, Filter};
use crate::query::matcher::{compile, compile_set, matches_compiled, set_contains, CompiledFilter};
use crate::storage::{DocId, Slab};
use doclite_bson::{CompiledPath, Document, Resolved, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A growable bitmap keyed by slot index.
#[derive(Clone, Debug, Default)]
struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    fn ensure(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    fn set(&mut self, i: usize) {
        self.ensure(i + 1);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// True if any bit in `[start, end)` is set — word-wise, so gating a
    /// chunk on "any exotic cell here?" costs O(chunk/64).
    fn any_in_range(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return false;
        }
        let (fw, fb) = (start / 64, start % 64);
        let (lw, lb) = ((end - 1) / 64, (end - 1) % 64);
        let head = u64::MAX << fb;
        let tail = u64::MAX >> (63 - lb);
        let word = |i: usize| self.words.get(i).copied().unwrap_or(0);
        if fw == lw {
            return word(fw) & head & tail != 0;
        }
        if word(fw) & head != 0 || word(lw) & tail != 0 {
            return true;
        }
        (fw + 1..lw).any(|i| word(i) != 0)
    }
}

/// Column storage for one declared field. Which vector is live is
/// decided by the first typed scalar the column sees.
#[derive(Clone, Debug, Default)]
enum ColumnData {
    /// No typed scalar seen yet (cells so far are missing/null/exotic).
    #[default]
    Empty,
    /// `Int32`/`Int64` cells widened to `i64`; the `narrow` bitmap
    /// remembers which cells were `Int32` so reconstruction returns the
    /// exact original variant (group `_id` representatives and
    /// `$min`/`$first`-style accumulators compare output documents with
    /// derived `PartialEq`, which distinguishes `Int32(5)` from
    /// `Int64(5)`).
    I64 { vals: Vec<i64>, narrow: Bitmap },
    F64(Vec<f64>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings; `dict` holds `Value::String` so
    /// cells can be lent to accumulators without per-row clones.
    Str {
        ids: Vec<u32>,
        dict: Vec<Value>,
        map: HashMap<String, u32>,
    },
}

/// One cell as the batch kernel sees it, borrowed from the column.
#[derive(Clone, Copy, Debug)]
enum Cell<'a> {
    /// The path did not resolve in this document.
    Missing,
    /// The path resolved to an explicit null.
    Null,
    /// The value could not be stored losslessly; row fallback required.
    Exotic,
    Int(i64),
    F64(f64),
    Bool(bool),
    Str(&'a str),
}

#[derive(Clone, Debug, Default)]
struct Column {
    data: ColumnData,
    /// Path resolved (null cells included).
    present: Bitmap,
    /// Scalar of the column's type, stored in `data`.
    typed: Bitmap,
    /// Present but not representable: wrong scalar type for the column,
    /// array, document, ObjectId, DateTime.
    exotic: Bitmap,
    /// Slots tracked so far (the data vectors stay this long).
    len: usize,
}

impl Column {
    fn ensure(&mut self, n: usize) {
        if self.len >= n {
            return;
        }
        match &mut self.data {
            ColumnData::Empty => {}
            ColumnData::I64 { vals, .. } => vals.resize(n, 0),
            ColumnData::F64(vals) => vals.resize(n, 0.0),
            ColumnData::Bool(vals) => vals.resize(n, false),
            ColumnData::Str { ids, .. } => ids.resize(n, 0),
        }
        self.len = n;
    }

    fn set_cell(&mut self, slot: usize, v: Option<&Value>) {
        self.ensure(slot + 1);
        self.present.clear(slot);
        self.typed.clear(slot);
        self.exotic.clear(slot);
        if let ColumnData::I64 { narrow, .. } = &mut self.data {
            narrow.clear(slot);
        }
        let Some(v) = v else { return };
        self.present.set(slot);
        match v {
            Value::Null => {}
            Value::Int32(_) | Value::Int64(_) | Value::Double(_) | Value::Bool(_)
            | Value::String(_) => {
                if matches!(self.data, ColumnData::Empty) {
                    self.allocate_for(v);
                }
                if !self.store_typed(slot, v) {
                    self.exotic.set(slot);
                }
            }
            Value::Array(_) | Value::Document(_) | Value::ObjectId(_) | Value::DateTime(_) => {
                self.exotic.set(slot);
            }
        }
    }

    /// First typed scalar decides the column type; earlier slots keep
    /// their default payloads (their `typed` bits are unset, so the
    /// payloads are never read).
    fn allocate_for(&mut self, v: &Value) {
        self.data = match v {
            Value::Int32(_) | Value::Int64(_) => ColumnData::I64 {
                vals: vec![0; self.len],
                narrow: Bitmap::default(),
            },
            Value::Double(_) => ColumnData::F64(vec![0.0; self.len]),
            Value::Bool(_) => ColumnData::Bool(vec![false; self.len]),
            Value::String(_) => ColumnData::Str {
                ids: vec![0; self.len],
                dict: Vec::new(),
                map: HashMap::new(),
            },
            _ => unreachable!("allocate_for is called for typed scalars only"),
        };
    }

    /// Stores `v` if it is a scalar of the column's type; false means
    /// the caller must mark the cell exotic. Integers never promote to
    /// an `F64` column (and doubles never demote) — exactness over
    /// coverage.
    fn store_typed(&mut self, slot: usize, v: &Value) -> bool {
        match (&mut self.data, v) {
            (ColumnData::I64 { vals, narrow }, Value::Int32(n)) => {
                vals[slot] = i64::from(*n);
                narrow.set(slot);
            }
            (ColumnData::I64 { vals, .. }, Value::Int64(n)) => vals[slot] = *n,
            (ColumnData::F64(vals), Value::Double(n)) => vals[slot] = *n,
            (ColumnData::Bool(vals), Value::Bool(b)) => vals[slot] = *b,
            (ColumnData::Str { ids, dict, map }, Value::String(s)) => {
                let id = match map.get(s.as_str()) {
                    Some(&id) => id,
                    None => {
                        let id = u32::try_from(dict.len()).expect("dictionary fits in u32");
                        dict.push(Value::String(s.clone()));
                        map.insert(s.clone(), id);
                        id
                    }
                };
                ids[slot] = id;
            }
            _ => return false,
        }
        self.typed.set(slot);
        true
    }

    fn cell(&self, slot: usize) -> Cell<'_> {
        if !self.present.get(slot) {
            return Cell::Missing;
        }
        if self.exotic.get(slot) {
            return Cell::Exotic;
        }
        if !self.typed.get(slot) {
            return Cell::Null;
        }
        match &self.data {
            ColumnData::Empty => unreachable!("typed bit implies allocated data"),
            ColumnData::I64 { vals, .. } => Cell::Int(vals[slot]),
            ColumnData::F64(vals) => Cell::F64(vals[slot]),
            ColumnData::Bool(vals) => Cell::Bool(vals[slot]),
            ColumnData::Str { ids, dict, .. } => match &dict[ids[slot] as usize] {
                Value::String(s) => Cell::Str(s),
                _ => unreachable!("dictionary holds strings"),
            },
        }
    }

    /// The cell as the value `Expr::Field` would evaluate to: missing
    /// and null cells are `Null`, typed cells reconstruct their exact
    /// original variant. Never called on exotic cells (chunks with
    /// exotic cells take the row path).
    fn value_at(&self, slot: usize) -> Resolved<'_> {
        match self.cell(slot) {
            Cell::Missing | Cell::Null => Resolved::Owned(Value::Null),
            Cell::Exotic => unreachable!("exotic cells are row-fallback only"),
            Cell::Int(n) => {
                if let ColumnData::I64 { narrow, .. } = &self.data {
                    if narrow.get(slot) {
                        return Resolved::Owned(Value::Int32(n as i32));
                    }
                }
                Resolved::Owned(Value::Int64(n))
            }
            Cell::F64(n) => Resolved::Owned(Value::Double(n)),
            Cell::Bool(b) => Resolved::Owned(Value::Bool(b)),
            Cell::Str(_) => match &self.data {
                ColumnData::Str { ids, dict, .. } => Resolved::Borrowed(&dict[ids[slot] as usize]),
                _ => unreachable!("Str cell implies Str data"),
            },
        }
    }
}

/// Typed column vectors for a collection's declared fields, keyed by
/// slab slot. Owned by the collection under its lock; the write path
/// calls [`set_row`](Self::set_row)/[`clear_row`](Self::clear_row) on
/// every slab mutation.
pub struct ColumnSet {
    fields: Vec<(String, CompiledPath)>,
    cols: Vec<Column>,
    /// Live slots — dead slab slots must not read as documents with
    /// missing fields (a `$ne` would match them).
    live: Bitmap,
    rows: usize,
}

impl ColumnSet {
    /// Declares the fields to columnarize (dotted paths allowed).
    pub fn new(fields: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let fields: Vec<(String, CompiledPath)> = fields
            .into_iter()
            .map(|f| {
                let f = f.into();
                let path = CompiledPath::new(&f);
                (f, path)
            })
            .collect();
        let cols = fields.iter().map(|_| Column::default()).collect();
        ColumnSet { fields, cols, live: Bitmap::default(), rows: 0 }
    }

    /// Rebuilds every column from the slab's live documents.
    pub fn rebuild(&mut self, slab: &Slab) {
        for c in &mut self.cols {
            *c = Column::default();
        }
        self.live = Bitmap::default();
        self.rows = 0;
        for (id, doc) in slab.iter() {
            self.set_row(id, doc);
        }
    }

    /// Writes one document's cells (insert, update, or delete-rollback).
    pub fn set_row(&mut self, slot: DocId, doc: &Document) {
        let slot = slot as usize;
        self.rows = self.rows.max(slot + 1);
        self.live.set(slot);
        for ((_, path), col) in self.fields.iter().zip(&mut self.cols) {
            let resolved = path.resolve(doc);
            col.set_cell(slot, resolved.as_ref().map(Resolved::as_value));
        }
    }

    /// Marks a slot dead (delete, or insert rollback).
    pub fn clear_row(&mut self, slot: DocId) {
        let slot = slot as usize;
        self.live.clear(slot);
        for col in &mut self.cols {
            if slot < col.len {
                col.set_cell(slot, None);
            }
        }
    }

    /// Number of slots tracked (dead slots included).
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn col_index(&self, path: &str) -> Option<usize> {
        self.fields.iter().position(|(f, _)| f == path)
    }
}

/// A `$match` predicate compiled against declared columns.
#[derive(Clone, Debug)]
enum ColPred {
    True,
    Cmp { col: usize, op: CmpOp, rhs: Value },
    In { col: usize, set: Box<[OrdValue]>, has_null: bool },
    Nin { col: usize, set: Box<[OrdValue]>, has_null: bool },
    Exists { col: usize, exists: bool },
    And(Vec<ColPred>),
    Or(Vec<ColPred>),
    Nor(Vec<ColPred>),
    Not(Box<ColPred>),
}

/// Compiles a filter against the declared columns; `None` if any leaf
/// references an undeclared path (the step then evaluates per row).
fn compile_pred(f: &Filter, cs: &ColumnSet) -> Option<ColPred> {
    let all = |fs: &[Filter]| -> Option<Vec<ColPred>> {
        fs.iter().map(|f| compile_pred(f, cs)).collect()
    };
    Some(match f {
        Filter::True => ColPred::True,
        Filter::Cmp { path, op, value } => ColPred::Cmp {
            col: cs.col_index(path)?,
            op: *op,
            rhs: value.clone(),
        },
        Filter::In { path, values } => ColPred::In {
            col: cs.col_index(path)?,
            set: compile_set(values),
            has_null: values.iter().any(Value::is_null),
        },
        Filter::Nin { path, values } => ColPred::Nin {
            col: cs.col_index(path)?,
            set: compile_set(values),
            has_null: values.iter().any(Value::is_null),
        },
        Filter::Exists { path, exists } => {
            ColPred::Exists { col: cs.col_index(path)?, exists: *exists }
        }
        Filter::And(fs) => ColPred::And(all(fs)?),
        Filter::Or(fs) => ColPred::Or(all(fs)?),
        Filter::Nor(fs) => ColPred::Nor(all(fs)?),
        Filter::Not(f) => ColPred::Not(Box::new(compile_pred(f, cs)?)),
    })
}

fn pred_cols(p: &ColPred, out: &mut Vec<usize>) {
    match p {
        ColPred::True => {}
        ColPred::Cmp { col, .. }
        | ColPred::In { col, .. }
        | ColPred::Nin { col, .. }
        | ColPred::Exists { col, .. } => {
            if !out.contains(col) {
                out.push(*col);
            }
        }
        ColPred::And(ps) | ColPred::Or(ps) | ColPred::Nor(ps) => {
            for p in ps {
                pred_cols(p, out);
            }
        }
        ColPred::Not(p) => pred_cols(p, out),
    }
}

/// One leading `$match` stage: the column form when every path is
/// declared, and the compiled row form for fallback chunks.
struct MatchStep {
    col: Option<ColPred>,
    cols_used: Vec<usize>,
    row: CompiledFilter,
}

/// A `$group` accumulator input: a column, or a literal (`{$sum: 1}`).
enum GroupInput {
    Col(usize),
    Lit(Value),
}

enum ColTerminal<'p> {
    /// No covered terminal: emit the selected documents.
    Docs,
    /// `{$count: name}` over the selection.
    Count(&'p str),
    /// Covered `$group`: key from a column (or `_id: null`), every
    /// accumulator input a column or literal.
    Group {
        id_col: Option<usize>,
        fields: &'p [(String, Accumulator)],
        inputs: Vec<GroupInput>,
        cols_used: Vec<usize>,
        spec: &'p GroupId,
    },
}

/// A pipeline prefix compiled for columnar execution; `rest` is the
/// uncovered suffix the caller runs on the streaming executor.
pub(crate) struct ColPlan<'p> {
    steps: Vec<MatchStep>,
    terminal: ColTerminal<'p>,
    pub(crate) rest: &'p [Stage],
}

/// Plans the pipeline prefix against the columns. `None` means the
/// columnar path offers nothing (no column-covered `$match` and no
/// `$group`/`$count` terminal) and the caller should run the whole
/// pipeline on the streaming executor.
pub(crate) fn plan<'p>(body: &'p [Stage], cs: &ColumnSet) -> Option<ColPlan<'p>> {
    let mut steps = Vec::new();
    let mut i = 0;
    while let Some(Stage::Match(f)) = body.get(i) {
        let col = compile_pred(f, cs);
        let mut cols_used = Vec::new();
        if let Some(p) = &col {
            pred_cols(p, &mut cols_used);
        }
        steps.push(MatchStep { col, cols_used, row: compile(f) });
        i += 1;
    }
    let (terminal, rest) = match body.get(i) {
        Some(Stage::Group { id, fields }) => match group_coverage(id, fields, cs) {
            Some((id_col, inputs, cols_used)) => (
                ColTerminal::Group { id_col, fields, inputs, cols_used, spec: id },
                &body[i + 1..],
            ),
            None => (ColTerminal::Docs, &body[i..]),
        },
        Some(Stage::Count(name)) => (ColTerminal::Count(name), &body[i + 1..]),
        _ => (ColTerminal::Docs, &body[i..]),
    };
    let worthwhile = steps.iter().any(|s| s.col.is_some())
        || matches!(terminal, ColTerminal::Group { .. } | ColTerminal::Count(_));
    worthwhile.then_some(ColPlan { steps, terminal, rest })
}

#[allow(clippy::type_complexity)]
fn group_coverage(
    id: &GroupId,
    fields: &[(String, Accumulator)],
    cs: &ColumnSet,
) -> Option<(Option<usize>, Vec<GroupInput>, Vec<usize>)> {
    let id_col = match id {
        GroupId::Null => None,
        GroupId::Expr(Expr::Field(path)) => Some(cs.col_index(path)?),
        GroupId::Expr(_) => return None,
    };
    let mut inputs = Vec::with_capacity(fields.len());
    for (_, acc) in fields {
        inputs.push(match acc.expr() {
            Expr::Field(path) => GroupInput::Col(cs.col_index(path)?),
            Expr::Literal(v) => GroupInput::Lit(v.clone()),
            _ => return None,
        });
    }
    let mut cols_used: Vec<usize> = id_col.into_iter().collect();
    for input in &inputs {
        if let GroupInput::Col(c) = input {
            if !cols_used.contains(c) {
                cols_used.push(*c);
            }
        }
    }
    Some((id_col, inputs, cols_used))
}

/// A selection bitmask over one chunk's rows (`len` bits, bit `i` =
/// chunk-relative row `i`).
struct Mask {
    words: Vec<u64>,
    len: usize,
}

impl Mask {
    fn zeros(len: usize) -> Self {
        Mask { words: vec![0; len.div_ceil(64)], len }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[cfg(test)]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    fn and_assign(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    fn or_assign(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim_tail();
    }

    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail);
            }
        }
    }

    fn retain(&mut self, mut f: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                let i = wi * 64 + b;
                if !f(i) {
                    self.words[wi] &= !(1u64 << b);
                }
                w &= w - 1;
            }
        }
    }

    fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * 64 + b);
                w &= w - 1;
            }
        }
    }

    /// Fallible visit: stops at the first error.
    fn try_for_each_one(&self, mut f: impl FnMut(usize) -> Result<()>) -> Result<()> {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * 64 + b)?;
                w &= w - 1;
            }
        }
        Ok(())
    }
}

/// Live-slot mask for `[start, end)`, chunk-relative.
fn live_mask(cs: &ColumnSet, start: usize, end: usize) -> Mask {
    let mut m = Mask::zeros(end - start);
    for i in 0..end - start {
        if cs.live.get(start + i) {
            m.set(i);
        }
    }
    m
}

/// Evaluates a column predicate over `[start, end)`; cell decisions
/// mirror the matcher exactly (see the leaf helpers).
fn eval_pred(p: &ColPred, cs: &ColumnSet, start: usize, end: usize) -> Mask {
    let len = end - start;
    match p {
        ColPred::True => {
            let mut m = Mask::zeros(len);
            for i in 0..len {
                m.set(i);
            }
            m
        }
        ColPred::Cmp { col, op, rhs } => {
            let c = &cs.cols[*col];
            let mut m = Mask::zeros(len);
            for i in 0..len {
                if cell_cmp_matches(c.cell(start + i), *op, rhs) {
                    m.set(i);
                }
            }
            m
        }
        ColPred::In { col, set, has_null } => {
            let c = &cs.cols[*col];
            let mut m = Mask::zeros(len);
            for i in 0..len {
                if cell_in_set(c.cell(start + i), set, *has_null) {
                    m.set(i);
                }
            }
            m
        }
        ColPred::Nin { col, set, has_null } => {
            let c = &cs.cols[*col];
            let mut m = Mask::zeros(len);
            for i in 0..len {
                if !cell_in_set(c.cell(start + i), set, *has_null) {
                    m.set(i);
                }
            }
            m
        }
        ColPred::Exists { col, exists } => {
            let c = &cs.cols[*col];
            let mut m = Mask::zeros(len);
            for i in 0..len {
                if c.present.get(start + i) == *exists {
                    m.set(i);
                }
            }
            m
        }
        ColPred::And(ps) => {
            let mut m = eval_pred(&ColPred::True, cs, start, end);
            for p in ps {
                m.and_assign(&eval_pred(p, cs, start, end));
            }
            m
        }
        ColPred::Or(ps) => {
            let mut m = Mask::zeros(len);
            for p in ps {
                m.or_assign(&eval_pred(p, cs, start, end));
            }
            m
        }
        ColPred::Nor(ps) => {
            let mut m = eval_pred(&ColPred::Or(ps.clone()), cs, start, end);
            m.negate();
            m
        }
        ColPred::Not(p) => {
            let mut m = eval_pred(p, cs, start, end);
            m.negate();
            m
        }
    }
}

/// Orders a typed cell against `rhs` under canonical semantics, gated
/// on the matcher's `same_family` rule: `None` for missing/null cells
/// and for cross-family pairs (which never order-match).
fn cell_family_cmp(cell: Cell<'_>, rhs: &Value) -> Option<Ordering> {
    match (cell, rhs) {
        (Cell::Int(v), Value::Int32(_) | Value::Int64(_) | Value::Double(_)) => {
            // Int32 cells widened to i64 compare identically: numeric
            // canonical comparison is value-exact across variants.
            Some(Value::Int64(v).canonical_cmp(rhs))
        }
        (Cell::F64(v), Value::Int32(_) | Value::Int64(_) | Value::Double(_)) => {
            Some(Value::Double(v).canonical_cmp(rhs))
        }
        (Cell::Bool(b), Value::Bool(r)) => Some(b.cmp(r)),
        (Cell::Str(s), Value::String(r)) => Some(s.cmp(r.as_str())),
        _ => None,
    }
}

/// `$eq`/`$ne`/ordered comparison on one cell, mirroring
/// `matches_compiled` on the equivalent document: missing and null
/// cells equality-match only a null rhs and never order-match.
fn cell_cmp_matches(cell: Cell<'_>, op: CmpOp, rhs: &Value) -> bool {
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let eq = match cell {
                Cell::Missing | Cell::Null => rhs.is_null(),
                Cell::Exotic => unreachable!("exotic chunks take the row path"),
                _ => cell_family_cmp(cell, rhs) == Some(Ordering::Equal),
            };
            (op == CmpOp::Ne) != eq
        }
        CmpOp::Gt | CmpOp::Gte | CmpOp::Lt | CmpOp::Lte => {
            let Some(ord) = cell_family_cmp(cell, rhs) else {
                return false;
            };
            match op {
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Gte => ord != Ordering::Less,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Lte => ord != Ordering::Greater,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

/// `$in` membership for one cell. Numeric and bool cells probe through
/// a stack temporary; string cells binary-search without allocating —
/// cross-family canonical comparison is rank-only, so a static empty
/// string stands in for "any string" against non-string set members.
fn cell_in_set(cell: Cell<'_>, set: &[OrdValue], has_null: bool) -> bool {
    static STR_PROBE: Value = Value::String(String::new());
    match cell {
        // {$in: [.., null]} matches explicit nulls and missing fields.
        Cell::Missing | Cell::Null => has_null,
        Cell::Exotic => unreachable!("exotic chunks take the row path"),
        Cell::Int(v) => set_contains(set, &Value::Int64(v)),
        Cell::F64(v) => set_contains(set, &Value::Double(v)),
        Cell::Bool(b) => set_contains(set, &Value::Bool(b)),
        Cell::Str(s) => set
            .binary_search_by(|ov| match ov.value() {
                Value::String(m) => m.as_str().cmp(s),
                other => other.canonical_cmp(&STR_PROBE),
            })
            .is_ok(),
    }
}

/// Per-chunk running state for the plan's terminal.
enum ChunkState<'p> {
    Docs(Vec<Document>),
    Count(usize),
    Group(GroupKernel<'p>),
}

fn new_state<'p>(terminal: &ColTerminal<'p>) -> ChunkState<'p> {
    match terminal {
        ColTerminal::Docs => ChunkState::Docs(Vec::new()),
        ColTerminal::Count(_) => ChunkState::Count(0),
        ColTerminal::Group { spec, fields, .. } => {
            ChunkState::Group(GroupKernel::new(spec, fields))
        }
    }
}

/// Merges the state of the *later* chunk in slot order into `a`.
fn merge_states<'p>(mut a: ChunkState<'p>, b: ChunkState<'p>) -> ChunkState<'p> {
    match (&mut a, b) {
        (ChunkState::Docs(d), ChunkState::Docs(more)) => d.extend(more),
        (ChunkState::Count(n), ChunkState::Count(m)) => *n += m,
        (ChunkState::Group(gk), ChunkState::Group(other)) => gk.merge(other),
        _ => unreachable!("chunk states share one terminal"),
    }
    a
}

/// Runs one chunk `[start, end)` of slots through the plan: selection
/// masks per `$match` step (row fallback when a used column has an
/// exotic cell in range), then the terminal over the surviving rows.
fn run_chunk(
    cs: &ColumnSet,
    slab: &Slab,
    plan: &ColPlan<'_>,
    start: usize,
    end: usize,
    state: &mut ChunkState<'_>,
) -> Result<()> {
    let any_exotic = |cols: &[usize]| {
        cols.iter().any(|&c| cs.cols[c].exotic.any_in_range(start, end))
    };
    let mut sel = live_mask(cs, start, end);
    for step in &plan.steps {
        match &step.col {
            Some(pred) if !any_exotic(&step.cols_used) => {
                sel.and_assign(&eval_pred(pred, cs, start, end));
            }
            _ => {
                // Undeclared path or exotic cells in range: evaluate
                // this stage's compiled row filter per surviving doc.
                sel.retain(|i| {
                    slab.get((start + i) as DocId)
                        .is_some_and(|d| matches_compiled(&step.row, d))
                });
            }
        }
    }
    match (state, &plan.terminal) {
        (ChunkState::Docs(out), ColTerminal::Docs) => {
            sel.for_each_one(|i| {
                if let Some(d) = slab.get((start + i) as DocId) {
                    out.push(d.clone());
                }
            });
        }
        (ChunkState::Count(n), ColTerminal::Count(_)) => *n += sel.count_ones(),
        (ChunkState::Group(gk), ColTerminal::Group { id_col, inputs, cols_used, .. }) => {
            if any_exotic(cols_used) {
                return sel.try_for_each_one(|i| {
                    let d = slab.get((start + i) as DocId).expect("selected slots are live");
                    gk.feed(d)
                });
            }
            sel.for_each_one(|i| {
                let slot = start + i;
                let bucket = match id_col {
                    Some(c) => {
                        let key = cs.cols[*c].value_at(slot);
                        gk.bucket_for(key.as_value())
                    }
                    None => gk.bucket_for(&Value::Null),
                };
                for (input, st) in inputs.iter().zip(gk.bucket_states(bucket)) {
                    match input {
                        GroupInput::Col(c) => st.accumulate_resolved(cs.cols[*c].value_at(slot)),
                        GroupInput::Lit(v) => st.accumulate_resolved(Resolved::Borrowed(v)),
                    }
                }
            });
        }
        _ => unreachable!("chunk state matches the plan terminal"),
    }
    Ok(())
}

/// Executes a columnar plan over the slab: serial in slot order when
/// one worker (or fewer than two chunks), otherwise chunks fan out over
/// the shared pool and merge in slot order. Returns the terminal's
/// output documents; the caller runs `plan.rest` on them.
pub(crate) fn execute(
    cs: &ColumnSet,
    slab: &Slab,
    plan: &ColPlan<'_>,
    workers: usize,
    chunk: usize,
) -> Result<Vec<Document>> {
    let chunk = chunk.max(1);
    let rows = cs.rows();
    let ranges: Vec<(usize, usize)> = (0..rows)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(rows)))
        .collect();
    let merged = if workers <= 1 || ranges.len() < 2 {
        let mut st = new_state(&plan.terminal);
        for &(s, e) in &ranges {
            run_chunk(cs, slab, plan, s, e, &mut st)?;
        }
        st
    } else {
        let slots: Vec<OnceLock<Result<ChunkState<'_>>>> =
            (0..ranges.len()).map(|_| OnceLock::new()).collect();
        pool::parallel_for(workers, ranges.len(), &|i| {
            let (s, e) = ranges[i];
            let mut st = new_state(&plan.terminal);
            let r = run_chunk(cs, slab, plan, s, e, &mut st).map(|()| st);
            let _ = slots[i].set(r);
        });
        // Collect in chunk order so the first error reported is the one
        // serial execution would hit first, and order-sensitive
        // accumulators merge in slot order.
        let mut acc: Option<ChunkState<'_>> = None;
        for slot in slots {
            let st = slot.into_inner().expect("parallel_for completes every task")?;
            acc = Some(match acc {
                None => st,
                Some(a) => merge_states(a, st),
            });
        }
        acc.unwrap_or_else(|| new_state(&plan.terminal))
    };
    Ok(match merged {
        ChunkState::Docs(docs) => docs,
        ChunkState::Count(n) => {
            // $count emits its single document even over empty input,
            // exactly like the streaming executor.
            let name = match &plan.terminal {
                ColTerminal::Count(name) => *name,
                _ => unreachable!("Count state implies Count terminal"),
            };
            let mut d = Document::new();
            d.set(name.to_owned(), Value::Int64(n as i64));
            vec![d]
        }
        ChunkState::Group(gk) => gk.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn slab_of(docs: Vec<Document>) -> Slab {
        let mut s = Slab::new();
        for d in docs {
            s.insert(d);
        }
        s
    }

    fn cs_over(slab: &Slab, fields: &[&str]) -> ColumnSet {
        let mut cs = ColumnSet::new(fields.iter().copied());
        cs.rebuild(slab);
        cs
    }

    /// Runs `body` through plan+execute (serial), panicking if the plan
    /// is not worthwhile.
    fn run(slab: &Slab, cs: &ColumnSet, body: &[Stage]) -> Vec<Document> {
        let plan = plan(body, cs).expect("plan covers this pipeline");
        assert!(plan.rest.is_empty(), "test pipelines are fully covered");
        execute(cs, slab, &plan, 1, 16).expect("covered plans are infallible")
    }

    #[test]
    fn bitmap_any_in_range_hits_word_boundaries() {
        let mut b = Bitmap::default();
        b.set(63);
        b.set(130);
        assert!(b.any_in_range(0, 64));
        assert!(!b.any_in_range(0, 63));
        assert!(b.any_in_range(63, 64));
        assert!(!b.any_in_range(64, 130));
        assert!(b.any_in_range(64, 131));
        assert!(b.any_in_range(0, 1000));
        assert!(!b.any_in_range(131, 1000));
        assert!(!b.any_in_range(10, 10));
    }

    #[test]
    fn cells_classify_and_reconstruct_exact_variants() {
        let mut c = Column::default();
        c.set_cell(0, Some(&Value::Int32(5)));
        c.set_cell(1, Some(&Value::Int64(5)));
        c.set_cell(2, Some(&Value::Null));
        c.set_cell(3, None);
        c.set_cell(4, Some(&Value::Double(1.5))); // wrong type for I64 column
        c.set_cell(5, Some(&Value::Array(vec![Value::Int64(1)])));
        assert_eq!(c.value_at(0).as_value(), &Value::Int32(5));
        assert_eq!(c.value_at(1).as_value(), &Value::Int64(5));
        assert_eq!(c.value_at(2).as_value(), &Value::Null);
        assert_eq!(c.value_at(3).as_value(), &Value::Null);
        assert!(matches!(c.cell(4), Cell::Exotic));
        assert!(matches!(c.cell(5), Cell::Exotic));
        // Overwriting an exotic cell with a typed scalar re-types it.
        c.set_cell(4, Some(&Value::Int64(9)));
        assert_eq!(c.value_at(4).as_value(), &Value::Int64(9));
    }

    #[test]
    fn exotic_first_column_types_on_later_scalar() {
        let mut c = Column::default();
        c.set_cell(0, Some(&Value::DateTime(5)));
        assert!(matches!(c.cell(0), Cell::Exotic));
        c.set_cell(1, Some(&Value::from("x")));
        assert!(matches!(c.cell(1), Cell::Str("x")));
        assert!(matches!(c.cell(0), Cell::Exotic));
    }

    #[test]
    fn string_dictionary_interns() {
        let mut c = Column::default();
        for (i, s) in ["a", "b", "a", "a", "b"].iter().enumerate() {
            c.set_cell(i, Some(&Value::from(*s)));
        }
        match &c.data {
            ColumnData::Str { dict, .. } => assert_eq!(dict.len(), 2),
            other => panic!("expected Str column, got {other:?}"),
        }
        assert!(matches!(c.cell(3), Cell::Str("a")));
        assert!(matches!(c.cell(4), Cell::Str("b")));
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut slab = Slab::new();
        let mut cs = ColumnSet::new(["a", "b"]);
        let id0 = slab.insert(doc! {"a" => 1i64, "b" => "x"});
        cs.set_row(id0, slab.get(id0).unwrap());
        let id1 = slab.insert(doc! {"a" => 2i64});
        cs.set_row(id1, slab.get(id1).unwrap());
        // Update: replace slot 0's document wholesale.
        slab.replace(id0, doc! {"a" => 7i64, "b" => "y"});
        cs.set_row(id0, slab.get(id0).unwrap());
        // Delete slot 1, then insert a new doc (free-list reuses it).
        slab.remove(id1);
        cs.clear_row(id1);
        let id2 = slab.insert(doc! {"b" => Value::Null});
        assert_eq!(id2, id1, "free list reuses the slot");
        cs.set_row(id2, slab.get(id2).unwrap());

        let mut rebuilt = ColumnSet::new(["a", "b"]);
        rebuilt.rebuild(&slab);
        for slot in 0..cs.rows() {
            assert_eq!(cs.live.get(slot), rebuilt.live.get(slot), "live bit, slot {slot}");
            for col in 0..2 {
                assert_eq!(
                    format!("{:?}", cs.cols[col].cell(slot)),
                    format!("{:?}", rebuilt.cols[col].cell(slot)),
                    "col {col} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn dead_slots_never_match() {
        let mut slab = Slab::new();
        let a = slab.insert(doc! {"k" => 1i64});
        let b = slab.insert(doc! {"k" => 2i64});
        let mut cs = cs_over(&slab, &["k"]);
        slab.remove(a);
        cs.clear_row(a);
        // $ne matches missing fields — but not dead slots.
        let body = [Stage::Match(Filter::ne("k", 99i64))];
        let plan = plan(&body, &cs).expect("covered");
        let out = execute(&cs, &slab, &plan, 1, 16).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("k"), Some(&Value::Int64(2)));
        let _ = b;
    }

    #[test]
    fn masks_agree_with_matcher_on_mixed_cells() {
        let docs = vec![
            doc! {"k" => 1i64, "s" => "a"},
            doc! {"k" => Value::Null},
            doc! {"s" => "b"},
            doc! {"k" => 2.5f64, "s" => "a"},
            doc! {"k" => i64::MAX, "s" => "c"},
            doc! {"k" => i64::MAX - 1},
            doc! {"k" => true},
            doc! {"k" => Value::Int32(1)},
        ];
        let slab = slab_of(docs.clone());
        let cs = cs_over(&slab, &["k", "s"]);
        let filters = [
            Filter::eq("k", 1i64),
            Filter::eq("k", Value::Null),
            Filter::ne("k", 1.0f64),
            Filter::gt("k", 1i64),
            Filter::lte("k", i64::MAX - 1),
            Filter::gte("k", "a"),
            Filter::eq("s", "a"),
            Filter::lt("s", "b"),
            Filter::is_in("k", [Value::Null, Value::Int64(2)]),
            Filter::is_in("s", ["a", "c"]),
            Filter::not_in("k", [1i64, i64::MAX]),
            Filter::exists("s"),
            Filter::not_exists("k"),
            Filter::or([Filter::eq("k", 1i64), Filter::eq("s", "b")]),
            Filter::Nor(vec![Filter::eq("k", 1i64), Filter::exists("s")]),
            Filter::not(Filter::gt("k", 0i64)),
        ];
        for f in &filters {
            // eval_pred's precondition is "no exotic cell in range for
            // any used column" (run_chunk row-falls-back otherwise), so
            // probe one-row ranges and skip the exotic ones — exactly
            // the gate run_chunk applies per chunk.
            let pred = compile_pred(f, &cs).expect("declared paths only");
            let mut used = Vec::new();
            pred_cols(&pred, &mut used);
            let compiled = compile(f);
            for (i, d) in docs.iter().enumerate() {
                if used.iter().any(|&c| cs.cols[c].exotic.get(i)) {
                    continue; // run_chunk would row-fallback this chunk
                }
                let mask = eval_pred(&pred, &cs, i, i + 1);
                assert_eq!(
                    mask.get(0),
                    matches_compiled(&compiled, d),
                    "filter {f:?} doc {i}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn group_terminal_matches_row_kernel() {
        let docs: Vec<Document> = (0..100)
            .map(|i| doc! {"g" => i % 3, "v" => f64::from(i) * 0.5})
            .collect();
        let slab = slab_of(docs.clone());
        let cs = cs_over(&slab, &["g", "v"]);
        let body = [
            Stage::Match(Filter::gte("v", 10.0f64)),
            Stage::Group {
                id: GroupId::Expr(Expr::field("g")),
                fields: vec![
                    ("n".into(), Accumulator::count()),
                    ("avg".into(), Accumulator::avg_field("v")),
                    ("lo".into(), Accumulator::Min(Expr::field("v"))),
                    ("hi".into(), Accumulator::Max(Expr::field("v"))),
                ],
            },
        ];
        let columnar = run(&slab, &cs, &body);
        let row = crate::agg::execute_streaming(docs, &body, None).unwrap();
        assert_eq!(columnar, row);
    }

    #[test]
    fn exotic_cells_force_identical_row_fallback() {
        // Array / mixed-type cells in the grouped columns.
        let docs = vec![
            doc! {"g" => 1i64, "v" => 1i64},
            doc! {"g" => 1i64, "v" => Value::Array(vec![Value::Int64(5)])},
            doc! {"g" => Value::Array(vec![Value::Int64(2)]), "v" => 3i64},
            doc! {"g" => 2i64, "v" => 4.5f64},
            doc! {"g" => 2i64},
        ];
        let slab = slab_of(docs.clone());
        let cs = cs_over(&slab, &["g", "v"]);
        let body = [Stage::Group {
            id: GroupId::Expr(Expr::field("g")),
            fields: vec![("s".into(), Accumulator::sum_field("v"))],
        }];
        let columnar = run(&slab, &cs, &body);
        let row = crate::agg::execute_streaming(docs, &body, None).unwrap();
        assert_eq!(columnar, row);
    }

    #[test]
    fn count_terminal_counts_and_emits_on_empty() {
        let slab = slab_of(vec![doc! {"k" => 1i64}, doc! {"k" => 2i64}, doc! {"k" => 3i64}]);
        let cs = cs_over(&slab, &["k"]);
        let body = [
            Stage::Match(Filter::gt("k", 1i64)),
            Stage::Count("n".into()),
        ];
        let out = run(&slab, &cs, &body);
        assert_eq!(out, vec![doc! {"n" => 2i64}]);
        // Zero matches still emit the count document.
        let body = [
            Stage::Match(Filter::gt("k", 99i64)),
            Stage::Count("n".into()),
        ];
        assert_eq!(run(&slab, &cs, &body), vec![doc! {"n" => 0i64}]);
    }

    #[test]
    fn parallel_chunks_match_serial() {
        let docs: Vec<Document> = (0..500)
            .map(|i| doc! {"g" => i % 7, "v" => i * 2})
            .collect();
        let slab = slab_of(docs);
        let cs = cs_over(&slab, &["g", "v"]);
        let body = [
            Stage::Match(Filter::lt("v", 800i64)),
            Stage::Group {
                id: GroupId::Expr(Expr::field("g")),
                fields: vec![
                    ("n".into(), Accumulator::count()),
                    ("sum".into(), Accumulator::sum_field("v")),
                    ("first".into(), Accumulator::First(Expr::field("v"))),
                    ("last".into(), Accumulator::Last(Expr::field("v"))),
                ],
            },
        ];
        let p = plan(&body, &cs).expect("covered");
        let serial = execute(&cs, &slab, &p, 1, 16).unwrap();
        for workers in [2, 4, 8] {
            for chunk in [3, 17, 64] {
                let par = execute(&cs, &slab, &p, workers, chunk).unwrap();
                assert_eq!(par, serial, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn uncovered_pipelines_are_not_planned() {
        let slab = slab_of(vec![doc! {"k" => 1i64}]);
        let cs = cs_over(&slab, &["k"]);
        // Match on an undeclared field with no covered terminal.
        let body = [Stage::Match(Filter::eq("other", 1i64))];
        assert!(plan(&body, &cs).is_none());
        // Leading $sort: nothing to vectorize.
        let body = [Stage::Sort(vec![("k".into(), 1)])];
        assert!(plan(&body, &cs).is_none());
        // Empty pipeline.
        assert!(plan(&[], &cs).is_none());
    }

    #[test]
    fn plan_rest_is_the_uncovered_suffix() {
        let slab = slab_of(vec![doc! {"k" => 1i64}]);
        let cs = cs_over(&slab, &["k"]);
        let body = [
            Stage::Match(Filter::gt("k", 0i64)),
            Stage::Group { id: GroupId::Null, fields: vec![("n".into(), Accumulator::count())] },
            Stage::Sort(vec![("n".into(), 1)]),
        ];
        let p = plan(&body, &cs).expect("covered prefix");
        assert_eq!(p.rest, &body[2..]);
        // A $group with a computed id is uncovered: it (and everything
        // after) becomes the rest, run on the streaming executor.
        let body = [
            Stage::Match(Filter::gt("k", 0i64)),
            Stage::Group {
                id: GroupId::Expr(Expr::Add(vec![Expr::field("k"), Expr::lit(1i64)])),
                fields: vec![("n".into(), Accumulator::count())],
            },
        ];
        let p = plan(&body, &cs).expect("match still covered");
        assert_eq!(p.rest, &body[1..]);
    }
}
