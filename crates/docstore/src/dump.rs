//! Dump/restore: length-prefixed binary persistence of collections and
//! databases (the `mongodump`/`mongorestore` pair), built on the BSON
//! codec. The paper's workflow reloads datasets repeatedly; dumping a
//! migrated database once and restoring it is much cheaper than
//! re-migrating `.dat` files.
//!
//! File layout: magic `DLDUMP1\n`, then for each document its
//! BSON-encoded bytes (each document already carries its own length
//! prefix, so the stream is self-delimiting).

use crate::collection::Collection;
use crate::database::Database;
use doclite_bson::{codec, Document};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DLDUMP1\n";

/// Writes a collection's documents to a dump file. Returns the count.
pub fn dump_collection(coll: &Collection, path: &Path) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let mut n = 0;
    let mut err: Option<io::Error> = None;
    coll.for_each(|doc| {
        if err.is_some() {
            return;
        }
        match w.write_all(&codec::encode_document(doc)) {
            Ok(()) => n += 1,
            Err(e) => err = Some(e),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    w.flush()?;
    Ok(n)
}

/// Streams documents out of a dump file.
pub struct DumpReader {
    r: BufReader<File>,
}

impl DumpReader {
    /// Opens a dump file, validating the magic header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a doclite dump"));
        }
        Ok(DumpReader { r })
    }
}

impl Iterator for DumpReader {
    type Item = io::Result<Document>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut len_buf = [0u8; 4];
        match self.r.read_exact(&mut len_buf) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
            Ok(()) => {}
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len < 5 {
            return Some(Err(io::Error::new(io::ErrorKind::InvalidData, "bad length")));
        }
        let mut buf = vec![0u8; len];
        buf[..4].copy_from_slice(&len_buf);
        if let Err(e) = self.r.read_exact(&mut buf[4..]) {
            return Some(Err(e));
        }
        Some(
            codec::decode_document(&buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        )
    }
}

/// Restores a dump file into a collection (documents keep their `_id`s).
/// Returns the count inserted.
pub fn restore_collection(coll: &Collection, path: &Path) -> io::Result<u64> {
    let mut n = 0;
    let mut batch = Vec::with_capacity(1024);
    for doc in DumpReader::open(path)? {
        batch.push(doc?);
        n += 1;
        if batch.len() == 1024 {
            coll.insert_many(std::mem::take(&mut batch))
                .map_err(|(_, e)| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
    }
    coll.insert_many(batch)
        .map_err(|(_, e)| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(n)
}

/// Dumps every collection of a database into `<dir>/<collection>.dump`.
pub fn dump_database(db: &Database, dir: &Path) -> io::Result<Vec<(String, u64)>> {
    db.collection_names()
        .into_iter()
        .map(|name| {
            let coll = db
                .get_collection(&name)
                .map_err(|e| io::Error::new(io::ErrorKind::NotFound, e.to_string()))?;
            let n = dump_collection(&coll, &dir.join(format!("{name}.dump")))?;
            Ok((name, n))
        })
        .collect()
}

/// Restores every `*.dump` file in a directory into a database.
pub fn restore_database(db: &Database, dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dump"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad dump name"))?
            .to_owned();
        let n = restore_collection(&db.collection(&name), &path)?;
        out.push((name, n));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;
    use doclite_bson::doc;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("doclite-dump-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn collection_roundtrip_preserves_documents_and_ids() {
        let dir = tmp("coll");
        let src = Collection::new("src");
        src.insert_many((0..500i64).map(|i| doc! {"_id" => i, "v" => i * 3, "s" => format!("row{i}")}))
            .unwrap();
        let path = dir.join("src.dump");
        assert_eq!(dump_collection(&src, &path).unwrap(), 500);

        let dst = Collection::new("dst");
        assert_eq!(restore_collection(&dst, &path).unwrap(), 500);
        assert_eq!(dst.len(), 500);
        let a = src.find(&Filter::eq("_id", 42i64));
        let b = dst.find(&Filter::eq("_id", 42i64));
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn database_roundtrip() {
        let dir = tmp("db");
        let db = Database::new("d1");
        db.collection("a").insert_many((0..10i64).map(|i| doc! {"i" => i})).unwrap();
        db.collection("b").insert_one(doc! {"x" => "y"}).unwrap();
        let dumped = dump_database(&db, &dir).unwrap();
        assert_eq!(dumped.len(), 2);

        let restored_db = Database::new("d2");
        let restored = restore_database(&restored_db, &dir).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored_db.get_collection("a").unwrap().len(), 10);
        assert_eq!(restored_db.get_collection("b").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tmp("magic");
        let path = dir.join("x.dump");
        std::fs::write(&path, b"NOTADUMP").unwrap();
        assert!(DumpReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_stream_surfaces_an_error() {
        let dir = tmp("trunc");
        let src = Collection::new("src");
        src.insert_one(doc! {"a" => "long enough to truncate meaningfully"}).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert!(results.iter().any(|r| r.is_err()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_collection_dump_restores_empty() {
        let dir = tmp("empty");
        let src = Collection::new("src");
        let path = dir.join("src.dump");
        assert_eq!(dump_collection(&src, &path).unwrap(), 0);
        let dst = Collection::new("dst");
        assert_eq!(restore_collection(&dst, &path).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
