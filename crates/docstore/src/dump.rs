//! Dump/restore: length-prefixed binary persistence of collections and
//! databases (the `mongodump`/`mongorestore` pair), built on the BSON
//! codec. The paper's workflow reloads datasets repeatedly; dumping a
//! migrated database once and restoring it is much cheaper than
//! re-migrating `.dat` files.
//!
//! ## Format v2 (`DLDUMP2\n`, written)
//!
//! Magic, then for each document its BSON-encoded bytes (self-delimiting
//! via BSON's own length prefix) followed by a CRC32 trailer over those
//! bytes, and finally an end-of-stream footer: a zero length word plus
//! the document count as a `u64`. The footer makes truncation detectable
//! — a stream that stops without it is corrupt, loudly — and the
//! per-document CRC catches bit rot that still parses as BSON.
//!
//! ```text
//! DLDUMP2\n  [doc bytes][crc32]  ...  [0u32][count: u64]
//! ```
//!
//! ## Format v1 (`DLDUMP1\n`, read for back-compat)
//!
//! Magic then raw document bytes to EOF: no checksums, no footer. A v1
//! stream ends cleanly only on a document boundary; EOF inside a
//! document is an error.
//!
//! Dumps are written to a `.tmp` sibling and atomically renamed into
//! place, so a crash mid-dump never leaves a half-written file where a
//! good dump (or none) should be.

use crate::collection::Collection;
use crate::database::Database;
use crate::storage::{crc32, fsync_dir, Crc32};
use doclite_bson::{codec, Document, MAX_DOCUMENT_SIZE};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"DLDUMP1\n";
const MAGIC_V2: &[u8; 8] = b"DLDUMP2\n";

/// Writes a collection's documents to a dump file (format v2). The
/// bytes land in a `.tmp` sibling first and are renamed over `path`
/// only after a successful sync, so `path` is always either absent or a
/// complete dump. Returns the count.
pub fn dump_collection(coll: &Collection, path: &Path) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    let file = File::create(&tmp)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC_V2)?;
    let mut n: u64 = 0;
    // try_for_each stops at the first I/O error instead of encoding the
    // rest of the collection into a sink that already failed.
    coll.try_for_each(|doc| -> io::Result<()> {
        let bytes = codec::encode_document(doc);
        w.write_all(&bytes)?;
        w.write_all(&crc32(&bytes).to_le_bytes())?;
        n += 1;
        Ok(())
    })?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&n.to_le_bytes())?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?
        .sync_data()?;
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable: without the directory fsync a
    // power loss can forget the swap even though the file data synced.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fsync_dir(parent)?;
    }
    Ok(n)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum DumpVersion {
    V1,
    V2,
}

/// Streams documents out of a dump file (either format version).
pub struct DumpReader {
    r: BufReader<File>,
    version: DumpVersion,
    yielded: u64,
    /// Set once the stream has terminated (cleanly or not), so the
    /// iterator is fused and never re-reads past a footer.
    done: bool,
}

/// Reads until `buf` is full or EOF; returns the number of bytes read.
/// Unlike `read_exact`, a caller can distinguish "no bytes at all"
/// (clean EOF at a boundary) from "some but not all" (truncation).
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl DumpReader {
    /// Opens a dump file, validating the magic header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let version = match &magic {
            m if m == MAGIC_V1 => DumpVersion::V1,
            m if m == MAGIC_V2 => DumpVersion::V2,
            _ => return Err(invalid("not a doclite dump")),
        };
        Ok(DumpReader { r, version, yielded: 0, done: false })
    }

    /// Consumes and validates the v2 footer (the zero length word has
    /// already been read).
    fn finish_v2(&mut self) -> io::Result<()> {
        let mut count_buf = [0u8; 8];
        if read_fully(&mut self.r, &mut count_buf)? != 8 {
            return Err(invalid("dump footer truncated"));
        }
        let count = u64::from_le_bytes(count_buf);
        if count != self.yielded {
            return Err(invalid(format!(
                "dump footer count {count} != {} documents read",
                self.yielded
            )));
        }
        Ok(())
    }
}

impl Iterator for DumpReader {
    type Item = io::Result<Document>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut step = || -> io::Result<Option<Document>> {
            let mut len_buf = [0u8; 4];
            match read_fully(&mut self.r, &mut len_buf)? {
                0 => {
                    // EOF at a document boundary: clean end for v1, a
                    // missing footer (truncation) for v2.
                    return match self.version {
                        DumpVersion::V1 => Ok(None),
                        DumpVersion::V2 => Err(invalid("dump ends without footer")),
                    };
                }
                4 => {}
                _ => return Err(invalid("dump truncated mid length prefix")),
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if len == 0 && self.version == DumpVersion::V2 {
                // End-of-stream sentinel: validate the count footer.
                self.finish_v2()?;
                return Ok(None);
            }
            if len < 5 {
                return Err(invalid("bad length"));
            }
            if len > MAX_DOCUMENT_SIZE {
                return Err(invalid(format!(
                    "document of {len} bytes exceeds the {MAX_DOCUMENT_SIZE} byte cap"
                )));
            }
            let mut buf = vec![0u8; len];
            buf[..4].copy_from_slice(&len_buf);
            if read_fully(&mut self.r, &mut buf[4..])? != len - 4 {
                return Err(invalid("dump truncated mid document"));
            }
            if self.version == DumpVersion::V2 {
                let mut crc_buf = [0u8; 4];
                if read_fully(&mut self.r, &mut crc_buf)? != 4 {
                    return Err(invalid("dump truncated mid checksum"));
                }
                let mut hasher = Crc32::new();
                hasher.update(&buf);
                if hasher.finish() != u32::from_le_bytes(crc_buf) {
                    return Err(invalid("document checksum mismatch"));
                }
            }
            let doc = codec::decode_document(&buf).map_err(|e| invalid(e.to_string()))?;
            self.yielded += 1;
            Ok(Some(doc))
        };
        match step() {
            Ok(Some(doc)) => Some(Ok(doc)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Restores a dump file into a collection (documents keep their `_id`s).
/// Returns the count inserted.
pub fn restore_collection(coll: &Collection, path: &Path) -> io::Result<u64> {
    let mut n = 0;
    let mut batch = Vec::with_capacity(1024);
    for doc in DumpReader::open(path)? {
        batch.push(doc?);
        n += 1;
        if batch.len() == 1024 {
            coll.insert_many(std::mem::take(&mut batch))
                .map_err(|(_, e)| invalid(e.to_string()))?;
        }
    }
    coll.insert_many(batch)
        .map_err(|(_, e)| invalid(e.to_string()))?;
    Ok(n)
}

/// Dumps every collection of a database into `<dir>/<collection>.dump`.
pub fn dump_database(db: &Database, dir: &Path) -> io::Result<Vec<(String, u64)>> {
    db.collection_names()
        .into_iter()
        .map(|name| {
            let coll = db
                .get_collection(&name)
                .map_err(|e| io::Error::new(io::ErrorKind::NotFound, e.to_string()))?;
            let n = dump_collection(&coll, &dir.join(format!("{name}.dump")))?;
            Ok((name, n))
        })
        .collect()
}

/// Restores every `*.dump` file in a directory into a database.
pub fn restore_database(db: &Database, dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dump"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| invalid("bad dump name"))?
            .to_owned();
        let n = restore_collection(&db.collection(&name), &path)?;
        out.push((name, n));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;
    use doclite_bson::doc;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("doclite-dump-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes `coll` in the legacy v1 layout (magic + raw documents, no
    /// checksums, no footer) for back-compat testing.
    fn dump_v1(coll: &Collection, path: &Path) -> u64 {
        let mut w = BufWriter::new(File::create(path).unwrap());
        w.write_all(MAGIC_V1).unwrap();
        let mut n = 0;
        coll.for_each(|doc| {
            w.write_all(&codec::encode_document(doc)).unwrap();
            n += 1;
        });
        w.flush().unwrap();
        n
    }

    #[test]
    fn collection_roundtrip_preserves_documents_and_ids() {
        let dir = tmp("coll");
        let src = Collection::new("src");
        src.insert_many((0..500i64).map(|i| doc! {"_id" => i, "v" => i * 3, "s" => format!("row{i}")}))
            .unwrap();
        let path = dir.join("src.dump");
        assert_eq!(dump_collection(&src, &path).unwrap(), 500);

        let dst = Collection::new("dst");
        assert_eq!(restore_collection(&dst, &path).unwrap(), 500);
        assert_eq!(dst.len(), 500);
        let a = src.find(&Filter::eq("_id", 42i64));
        let b = dst.find(&Filter::eq("_id", 42i64));
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_dumps_still_restore() {
        let dir = tmp("v1");
        let src = Collection::new("src");
        src.insert_many((0..100i64).map(|i| doc! {"_id" => i, "v" => i})).unwrap();
        let path = dir.join("src.dump");
        assert_eq!(dump_v1(&src, &path), 100);

        let dst = Collection::new("dst");
        assert_eq!(restore_collection(&dst, &path).unwrap(), 100);
        assert_eq!(
            src.find(&Filter::eq("_id", 7i64)),
            dst.find(&Filter::eq("_id", 7i64))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dump_leaves_no_tmp_sibling_and_is_atomic() {
        let dir = tmp("atomic");
        let src = Collection::new("src");
        src.insert_one(doc! {"x" => 1i64}).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn database_roundtrip() {
        let dir = tmp("db");
        let db = Database::new("d1");
        db.collection("a").insert_many((0..10i64).map(|i| doc! {"i" => i})).unwrap();
        db.collection("b").insert_one(doc! {"x" => "y"}).unwrap();
        let dumped = dump_database(&db, &dir).unwrap();
        assert_eq!(dumped.len(), 2);

        let restored_db = Database::new("d2");
        let restored = restore_database(&restored_db, &dir).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored_db.get_collection("a").unwrap().len(), 10);
        assert_eq!(restored_db.get_collection("b").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tmp("magic");
        let path = dir.join("x.dump");
        std::fs::write(&path, b"NOTADUMP").unwrap();
        assert!(DumpReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_stream_surfaces_an_error() {
        let dir = tmp("trunc");
        let src = Collection::new("src");
        src.insert_one(doc! {"a" => "long enough to truncate meaningfully"}).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert!(results.iter().any(|r| r.is_err()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_a_document_boundary_is_loud_in_v2() {
        // A v2 stream cut exactly between documents parses every
        // remaining document fine — only the missing footer reveals the
        // loss. This is the case v1 could not detect at all.
        let dir = tmp("boundary");
        let src = Collection::new("src");
        src.insert_many((0..3i64).map(|i| doc! {"_id" => i})).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Strip the footer (4-byte sentinel + 8-byte count) and the
        // last document (encoded size + 4-byte crc).
        let doc_len = codec::encode_document(&doc! {"_id" => 2i64}).len();
        let cut = bytes.len() - 12 - doc_len - 4;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 2);
        let err = results.last().unwrap().as_ref().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_caught_by_document_checksum() {
        let dir = tmp("bitflip");
        let src = Collection::new("src");
        src.insert_one(doc! {"_id" => 1i64, "v" => "payload"}).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the document body (past the
        // magic and the BSON length prefix).
        let mid = MAGIC_V2.len() + 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert!(results.iter().any(|r| r
            .as_ref()
            .is_err_and(|e| e.to_string().contains("checksum"))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_count_mismatch_is_rejected() {
        let dir = tmp("count");
        let src = Collection::new("src");
        src.insert_many((0..5i64).map(|i| doc! {"_id" => i})).unwrap();
        let path = dir.join("src.dump");
        dump_collection(&src, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert!(results
            .last()
            .unwrap()
            .as_ref()
            .is_err_and(|e| e.to_string().contains("footer count")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_document_length_is_rejected_on_restore() {
        let dir = tmp("oversize");
        let path = dir.join("x.dump");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&((MAX_DOCUMENT_SIZE as u32) + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let results: Vec<_> = DumpReader::open(&path).unwrap().collect();
        assert!(results.last().unwrap().as_ref().is_err_and(|e| e
            .to_string()
            .contains("exceeds")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_collection_dump_restores_empty() {
        let dir = tmp("empty");
        let src = Collection::new("src");
        let path = dir.join("src.dump");
        assert_eq!(dump_collection(&src, &path).unwrap(), 0);
        let dst = Collection::new("dst");
        assert_eq!(restore_collection(&dst, &path).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
