//! Change streams over the WAL.
//!
//! The WAL (PR 3) already totally orders every acknowledged write; this
//! module exposes that order as a subscription surface. A
//! [`ChangeCursor`] delivers committed frames — inserts, updates,
//! deletes, index operations, collection drops, and [`WalRecord::Noop`]
//! heartbeats — in sequence order, scoped to one collection or the
//! whole database.
//!
//! ## Resume tokens
//!
//! The resume token *is* the WAL sequence number of the last event the
//! caller processed. A cursor opened with token `t` replays every
//! committed frame with `seq > t`, then follows live writes. Frames are
//! served from two places: the in-memory [`ChangeHub`] ring buffer
//! (newest frames, survives log truncation) and the log file itself
//! (everything since the last checkpoint truncation). When a checkpoint
//! has truncated past `t` *and* the ring has evicted the gap, the
//! cursor reports [`Error::TruncatedToken`] so the caller can fall back
//! to a full re-read — exactly the contract replica log shipping and
//! view rebuilds use.
//!
//! ## What is never emitted
//!
//! Rolled-back writes. Frames are published to the hub only after the
//! whole WAL batch committed; a failed append rewinds the file and
//! publishes nothing, so "memory == log == stream".

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::Result;
use crate::wal::{Frame, Wal, WalRecord};
use std::sync::Arc;

/// What a cursor subscribes to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChangeScope {
    /// Every collection in the database.
    Database,
    /// One collection. Stream-control frames (`Noop` heartbeats,
    /// `Seal`) are still delivered: they advance the resume token and
    /// prove liveness without carrying data.
    Collection(String),
}

impl ChangeScope {
    fn admits(&self, record: &WalRecord) -> bool {
        match (self, record.coll()) {
            (ChangeScope::Database, _) => true,
            (ChangeScope::Collection(_), None) => true,
            (ChangeScope::Collection(want), Some(coll)) => want == coll,
        }
    }
}

/// One delivered change: the WAL frame, verbatim. `seq` is the resume
/// token for "everything after this event"; `record` carries the full
/// post-image payload (updates are logged by value), enough to apply
/// downstream without consulting the source.
pub type ChangeEvent = Frame;

/// The in-memory tail of committed frames, owned by the [`Wal`].
/// Publishing happens under the WAL's append lock, so the buffer order
/// is the sequence order; eviction is FIFO once `capacity` is reached.
pub(crate) struct ChangeHub {
    state: Mutex<HubState>,
    cv: Condvar,
}

struct HubState {
    buf: VecDeque<Frame>,
    capacity: usize,
    /// Sequence number of the most recently published frame (0 before
    /// the first publish in this process).
    last_pub: u64,
}

impl ChangeHub {
    pub(crate) fn new(capacity: usize) -> ChangeHub {
        ChangeHub {
            state: Mutex::new(HubState {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
                last_pub: 0,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut st = self.state.lock().expect("change hub poisoned");
        st.capacity = capacity.max(1);
        while st.buf.len() > st.capacity {
            st.buf.pop_front();
        }
    }

    /// Appends committed frames and wakes blocked cursors.
    pub(crate) fn publish(&self, frames: impl Iterator<Item = Frame>) {
        let mut st = self.state.lock().expect("change hub poisoned");
        for f in frames {
            st.last_pub = f.seq;
            st.buf.push_back(f);
            if st.buf.len() > st.capacity {
                st.buf.pop_front();
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// All buffered frames with `seq > token`, or `None` when the ring
    /// has already evicted part of that range (the caller then falls
    /// back to the log file).
    pub(crate) fn buffered_after(&self, token: u64) -> Option<Vec<Frame>> {
        let st = self.state.lock().expect("change hub poisoned");
        let first = st.buf.front()?.seq;
        if token + 1 < first {
            return None;
        }
        Some(st.buf.iter().filter(|f| f.seq > token).cloned().collect())
    }

    /// Sequence number of the oldest buffered frame, if any.
    pub(crate) fn oldest_buffered(&self) -> Option<u64> {
        self.state.lock().expect("change hub poisoned").buf.front().map(|f| f.seq)
    }

    /// Blocks until a frame with `seq > token` has been published or
    /// the timeout elapses; returns whether one was.
    fn wait_past(&self, token: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("change hub poisoned");
        while st.last_pub <= token {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (next, _) = self.cv.wait_timeout(st, left).expect("change hub poisoned");
            st = next;
        }
        true
    }
}

/// A resumable change-stream cursor. Not `Sync` by design: one reader
/// owns the position; clone-free fan-out is the hub's job.
pub struct ChangeCursor {
    wal: Arc<Wal>,
    scope: ChangeScope,
    /// Sequence of the last frame *consumed* (delivered or filtered by
    /// scope) — the resume token.
    pos: u64,
    pending: VecDeque<Frame>,
}

impl std::fmt::Debug for ChangeCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChangeCursor")
            .field("scope", &self.scope)
            .field("pos", &self.pos)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

/// Opens a cursor on `wal`. With `resume_after: None` the stream starts
/// at the current tip (only future events). With `Some(token)` it first
/// replays every committed frame above the token — or fails with
/// [`Error::TruncatedToken`] when a checkpoint truncated that range, in
/// which case the caller must re-read the source in full and resume
/// from the tip it observed.
pub fn watch(
    wal: &Arc<Wal>,
    scope: ChangeScope,
    resume_after: Option<u64>,
) -> Result<ChangeCursor> {
    let pos = resume_after.unwrap_or_else(|| wal.last_seq());
    let pending = VecDeque::from(wal.frames_since(pos)?);
    Ok(ChangeCursor { wal: Arc::clone(wal), scope, pos, pending })
}

impl ChangeCursor {
    /// The token to pass to [`watch`] to continue exactly after the
    /// last event this cursor delivered.
    pub fn resume_token(&self) -> u64 {
        self.pos
    }

    /// The cursor's scope.
    pub fn scope(&self) -> &ChangeScope {
        &self.scope
    }

    /// The next event, without blocking: `Ok(None)` when the cursor is
    /// at the tip. Fails with [`Error::TruncatedToken`] when the cursor
    /// fell so far behind that both the hub ring and the log file
    /// dropped the frames it still needed.
    pub fn try_next(&mut self) -> Result<Option<ChangeEvent>> {
        loop {
            if self.pending.is_empty() {
                self.pending = VecDeque::from(self.wal.frames_since(self.pos)?);
                if self.pending.is_empty() {
                    return Ok(None);
                }
            }
            while let Some(frame) = self.pending.pop_front() {
                self.pos = frame.seq;
                if self.scope.admits(&frame.record) {
                    return Ok(Some(frame));
                }
            }
        }
    }

    /// The next event, blocking up to `timeout` for one to be
    /// committed. `Ok(None)` means the timeout elapsed with the cursor
    /// still at the tip.
    pub fn next_timeout(&mut self, timeout: Duration) -> Result<Option<ChangeEvent>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.try_next()? {
                return Ok(Some(ev));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || !self.wal.change_hub().wait_past(self.pos, left) {
                return Ok(None);
            }
        }
    }

    /// Drains every event currently committed, returning them in order.
    pub fn drain(&mut self) -> Result<Vec<ChangeEvent>> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_next()? {
            out.push(ev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::wal::{DurableDb, SyncPolicy, WalOptions};
    use doclite_bson::doc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "doclite-changes-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> WalOptions {
        WalOptions { sync: SyncPolicy::Never, faults: None }
    }

    #[test]
    fn cursor_sees_inserts_updates_deletes_and_drops_in_order() {
        let dir = tmpdir("order");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let mut cur = watch(ddb.wal(), ChangeScope::Database, None).unwrap();

        let sales = ddb.db().collection("sales");
        sales.insert_one(doc! {"_id" => 1i64, "x" => 1i64}).unwrap();
        sales.insert_one(doc! {"_id" => 2i64, "x" => 2i64}).unwrap();
        sales
            .update(
                &crate::query::Filter::eq("_id", 1i64),
                &crate::update::UpdateSpec::set("x", 9i64),
                false,
                false,
            )
            .unwrap();
        sales.delete_many(&crate::query::Filter::eq("_id", 2i64));
        ddb.db().drop_collection("sales");

        let evs = cur.drain().unwrap();
        let kinds: Vec<&str> = evs
            .iter()
            .map(|e| match &e.record {
                WalRecord::Insert { .. } => "insert",
                WalRecord::Update { .. } => "update",
                WalRecord::Delete { .. } => "delete",
                WalRecord::DropCollection { .. } => "drop",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["insert", "insert", "update", "delete", "drop"]);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq), "events in seq order");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collection_scope_filters_but_still_advances_the_token() {
        let dir = tmpdir("scope");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let mut cur =
            watch(ddb.wal(), ChangeScope::Collection("a".into()), None).unwrap();
        ddb.db().collection("a").insert_one(doc! {"_id" => 1i64}).unwrap();
        ddb.db().collection("b").insert_one(doc! {"_id" => 1i64}).unwrap();
        ddb.db().collection("a").insert_one(doc! {"_id" => 2i64}).unwrap();

        let evs = cur.drain().unwrap();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.record.coll() == Some("a")));
        // The token covers the filtered-out frame too.
        assert_eq!(cur.resume_token(), ddb.wal().last_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_only_whats_after_the_token() {
        let dir = tmpdir("resume");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("c");
        for i in 0..5i64 {
            c.insert_one(doc! {"_id" => i}).unwrap();
        }
        let mut cur = watch(ddb.wal(), ChangeScope::Database, Some(0)).unwrap();
        let first_two: Vec<_> =
            (0..2).map(|_| cur.try_next().unwrap().unwrap()).collect();
        let token = cur.resume_token();
        drop(cur);

        let mut resumed = watch(ddb.wal(), ChangeScope::Database, Some(token)).unwrap();
        let rest = resumed.drain().unwrap();
        assert_eq!(first_two.len() + rest.len(), 5);
        assert_eq!(rest.first().unwrap().seq, token + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncation_past_the_token_is_reported() {
        let dir = tmpdir("trunc");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        // Tiny hub so truncation actually drops history.
        ddb.wal().set_change_capacity(1);
        let c = ddb.db().collection("c");
        for i in 0..10i64 {
            c.insert_one(doc! {"_id" => i}).unwrap();
        }
        ddb.checkpoint().unwrap();
        let err = watch(ddb.wal(), ChangeScope::Database, Some(2)).unwrap_err();
        assert!(matches!(err, Error::TruncatedToken { token: 2, .. }), "{err}");
        // The tip itself is always a valid resume point.
        let mut cur = watch(ddb.wal(), ChangeScope::Database, None).unwrap();
        c.insert_one(doc! {"_id" => 100i64}).unwrap();
        assert!(matches!(
            cur.try_next().unwrap().unwrap().record,
            WalRecord::Insert { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_frames_keep_idle_streams_live() {
        let dir = tmpdir("noop");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        ddb.db().collection("c").insert_one(doc! {"_id" => 1i64}).unwrap();
        let mut cur = watch(ddb.wal(), ChangeScope::Collection("c".into()), None).unwrap();
        // A checkpoint truncates the log and appends a Noop heartbeat;
        // the scoped cursor still observes it.
        ddb.checkpoint().unwrap();
        let ev = cur.next_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert!(matches!(ev.record, WalRecord::Noop));
        assert_eq!(cur.resume_token(), ddb.wal().last_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rolled_back_writes_emit_no_events() {
        let dir = tmpdir("rollback");
        let (ddb, _) = DurableDb::open("db", &dir, opts()).unwrap();
        let c = ddb.db().collection("c");
        c.insert_one(doc! {"_id" => 1i64}).unwrap();
        let mut cur = watch(ddb.wal(), ChangeScope::Database, None).unwrap();
        // Duplicate _id: the write fails before logging anything.
        assert!(c.insert_one(doc! {"_id" => 1i64}).is_err());
        assert!(cur.try_next().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
