//! Databases: named sets of collections, plus `$out` materialization
//! and the cost-based `$in` semi-join rewrite over `$lookup` pipelines.

use crate::agg::exec::{LookupMeta, LookupSource};
use crate::agg::{Pipeline, Stage};
use crate::collection::Collection;
use crate::error::{Error, Result};
use crate::ordvalue::OrdValue;
use crate::query::filter::{CmpOp, Filter};
use crate::stats::{planner_mode, PlannerMode};
use crate::wal::{Wal, WalRecord};
use doclite_bson::{Document, Value};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Caps the key set materialized by the `$in` semi-join rewrite; larger
/// dimension matches abandon the rewrite (the probe list would rival
/// the join itself).
pub const MAX_SEMIJOIN_KEYS: usize = 4096;

/// Dimension-match selectivity above which the semi-join rewrite is not
/// worth it — the paper's crossover: selective dimension filters win by
/// probing, broad ones by scanning.
pub const SEMIJOIN_MAX_FRACTION: f64 = 0.5;

/// A database: a namespace of collections (e.g. `Dataset_1GB` holding the
/// 24 migrated TPC-DS collections).
pub struct Database {
    name: String,
    collections: RwLock<BTreeMap<String, Arc<Collection>>>,
    /// Write-ahead log shared by every collection when the database is
    /// durable (see `docstore::wal::DurableDb`).
    wal: RwLock<Option<Arc<Wal>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            collections: RwLock::new(BTreeMap::new()),
            wal: RwLock::new(None),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Routes writes on every existing and future collection through a
    /// write-ahead log. Recovery attaches the WAL only after replay.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        // Lock order: collections map before the wal slot, matching
        // `collection()` (map lock) → attach (wal slot).
        let map = self.collections.read();
        for coll in map.values() {
            coll.attach_wal(Arc::clone(&wal));
        }
        *self.wal.write() = Some(wal);
    }

    fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.wal.read().clone()
    }

    /// Gets or creates a collection (MongoDB's implicit-creation
    /// behaviour on first use).
    pub fn collection(&self, name: &str) -> Arc<Collection> {
        if let Some(c) = self.collections.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.collections.write();
        Arc::clone(map.entry(name.to_owned()).or_insert_with(|| {
            let c = Arc::new(Collection::new(name));
            if let Some(wal) = self.wal_handle() {
                c.attach_wal(wal);
            }
            c
        }))
    }

    /// Gets an existing collection.
    pub fn get_collection(&self, name: &str) -> Result<Arc<Collection>> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchCollection(name.to_owned()))
    }

    /// True if the collection exists.
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Drops a collection; returns whether it existed. A WAL append
    /// failure rolls the drop back (see
    /// [`Database::try_drop_collection`]) and reports `false`.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.try_drop_collection(name).unwrap_or(false)
    }

    /// Fallible [`Database::drop_collection`]: on WAL append failure the
    /// collection is restored (the append already rewound the log) and
    /// the error is returned, so the drop either fully happened — in
    /// memory and in the log — or not at all.
    pub fn try_drop_collection(&self, name: &str) -> Result<bool> {
        // The map lock is held across the append so the rollback cannot
        // interleave with a concurrent re-creation of the name.
        let mut map = self.collections.write();
        let Some(coll) = map.remove(name) else { return Ok(false) };
        if let Some(wal) = self.wal_handle() {
            if let Err(e) = wal.append(&WalRecord::DropCollection { coll: name.to_owned() }) {
                map.insert(name.to_owned(), coll);
                return Err(e);
            }
        }
        Ok(true)
    }

    /// Collection names in sorted order.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Total data size across collections in bytes.
    pub fn data_size(&self) -> usize {
        self.collections
            .read()
            .values()
            .map(|c| c.data_size())
            .sum()
    }

    /// Runs an aggregation on a collection; a trailing `$out` stage
    /// replaces the target collection with the results (MongoDB `$out`
    /// semantics) and the materialized documents are also returned.
    /// Note the returned documents are read back *as stored*: any
    /// pipeline output lacking an `_id` (e.g. a `$project` that dropped
    /// it) comes back with a store-assigned ObjectId `_id`.
    pub fn aggregate(&self, collection: &str, pipeline: &Pipeline) -> Result<Vec<Document>> {
        let source = self.get_collection(collection)?;
        let rewritten = self.rewrite_semijoin(pipeline);
        let effective = rewritten.as_ref().unwrap_or(pipeline);
        let results = source.aggregate_with(effective, Some(self))?;
        if let Some(Stage::Out(target)) = pipeline.stages().last() {
            self.try_drop_collection(target)?;
            let out = self.collection(target);
            // Move the result set into the target collection instead of
            // cloning every document on the way in; the returned
            // documents are re-read from the store.
            out.insert_many(results).map_err(|(_, e)| e)?;
            return Ok(out.all_docs());
        }
        Ok(results)
    }

    /// The paper's normalized-model strategy: for a
    /// `$lookup` → `$unwind` → `$match`-on-dimension pipeline with a
    /// *selective* dimension filter, filter the dimension first and
    /// pre-filter the fact side with an `$in` over the surviving join
    /// keys. Returns the rewritten pipeline, or `None` when the shape
    /// does not apply, the planner is in rule mode, or the cost gate
    /// says the dimension match is too broad to pay off.
    ///
    /// The rewrite only *inserts* a `Match($in)` in front of the
    /// `$lookup`; every original stage is kept, so an over-approximate
    /// key set cannot change results. It is abandoned whenever a
    /// surviving dimension key is missing, null, or an array — the only
    /// shapes whose `$in` probe semantics could under-approximate the
    /// join's null ↔ missing / whole-array equality.
    pub fn rewrite_semijoin(&self, pipeline: &Pipeline) -> Option<Pipeline> {
        if planner_mode() != PlannerMode::Cost {
            return None;
        }
        let stages = pipeline.stages();
        let i = stages.iter().position(|s| matches!(s, Stage::Lookup { .. }))?;
        let Stage::Lookup { from, local_field, foreign_field, as_field } = &stages[i] else {
            unreachable!("position matched a lookup");
        };
        let Some(Stage::Unwind(unwound)) = stages.get(i + 1) else { return None };
        if unwound.strip_prefix('$').unwrap_or(unwound) != as_field {
            return None;
        }
        let Some(Stage::Match(g)) = stages.get(i + 2) else { return None };
        let dim_filter = dimension_conjuncts(g, as_field)?;
        let dim = self.get_collection(from).ok()?;
        // Cost gate: estimated dimension selectivity and key count.
        let frac = dim.estimate_fraction(&dim_filter);
        let dim_len = dim.len();
        if frac > SEMIJOIN_MAX_FRACTION || frac * dim_len as f64 > MAX_SEMIJOIN_KEYS as f64 {
            return None;
        }
        let mut keys: BTreeSet<OrdValue> = BTreeSet::new();
        for d in dim.find(&dim_filter) {
            match d.get_path(foreign_field) {
                Some(Value::Null) | None => return None,
                Some(Value::Array(_)) => return None,
                Some(v) => {
                    keys.insert(OrdValue(v));
                }
            }
            if keys.len() > MAX_SEMIJOIN_KEYS {
                return None;
            }
        }
        let probe = Filter::In {
            path: local_field.clone(),
            values: keys.into_iter().map(OrdValue::into_value).collect(),
        };
        let mut rewritten: Vec<Stage> = stages.to_vec();
        rewritten.insert(i, Stage::Match(probe));
        Some(rewritten.into_iter().fold(Pipeline::new(), Pipeline::stage))
    }
}

/// Extracts the conjuncts of `g` that constrain `as_field.*` paths,
/// re-rooted onto the dimension document. Only conjuncts whose probe
/// semantics are exactly preserved per dimension document qualify
/// (`$eq`/`$in`/ranges on non-null scalars); a subset of conjuncts
/// over-approximates, which is sound. Returns `None` when no conjunct
/// qualifies.
fn dimension_conjuncts(g: &Filter, as_field: &str) -> Option<Filter> {
    let prefix = format!("{as_field}.");
    let mut picked: Vec<Filter> = Vec::new();
    let mut stack: Vec<&Filter> = vec![g];
    while let Some(f) = stack.pop() {
        match f {
            Filter::And(fs) => stack.extend(fs),
            Filter::Cmp { path, op, value } => {
                if let Some(dim_path) = path.strip_prefix(&prefix) {
                    let ok = !matches!(op, CmpOp::Ne) && !matches!(value, Value::Null);
                    if ok && !dim_path.is_empty() {
                        picked.push(Filter::Cmp {
                            path: dim_path.to_owned(),
                            op: *op,
                            value: value.clone(),
                        });
                    }
                }
            }
            Filter::In { path, values } => {
                if let Some(dim_path) = path.strip_prefix(&prefix) {
                    if !dim_path.is_empty() && !values.iter().any(Value::is_null) {
                        picked.push(Filter::In {
                            path: dim_path.to_owned(),
                            values: values.clone(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    if picked.is_empty() {
        None
    } else {
        Some(Filter::and(picked))
    }
}

impl LookupSource for Database {
    fn collection_docs(&self, name: &str) -> Option<Vec<Document>> {
        self.get_collection(name).ok().map(|c| c.all_docs())
    }

    fn collection_lookup_meta(&self, name: &str, field: &str) -> Option<LookupMeta> {
        self.get_collection(name).ok().map(|c| c.lookup_meta(field))
    }

    fn indexed_foreign_docs(&self, name: &str, field: &str, key: &Value) -> Option<Vec<Document>> {
        self.get_collection(name).ok().map(|c| c.docs_by_field_eq(field, key))
    }

    fn with_collection_docs(
        &self,
        name: &str,
        f: &mut dyn for<'a> FnMut(&mut (dyn Iterator<Item = &'a Document> + 'a)),
    ) {
        // Borrow the foreign collection's documents in place under its
        // read lock instead of cloning them all (the default impl);
        // $lookup builds its join table from the borrowed iterator and
        // clones only matched rows. A missing collection joins as empty.
        match self.get_collection(name) {
            Ok(c) => c.with_docs(f),
            Err(_) => f(&mut std::iter::empty()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{Accumulator, GroupId, Pipeline};
    use crate::query::Filter;
    use doclite_bson::doc;

    #[test]
    fn implicit_collection_creation() {
        let db = Database::new("test");
        assert!(!db.has_collection("a"));
        db.collection("a").insert_one(doc! {"x" => 1i64}).unwrap();
        assert!(db.has_collection("a"));
        assert!(db.get_collection("missing").is_err());
    }

    #[test]
    fn collection_handle_is_shared() {
        let db = Database::new("test");
        let c1 = db.collection("a");
        let c2 = db.collection("a");
        c1.insert_one(doc! {"x" => 1i64}).unwrap();
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new("test");
        db.collection("a");
        assert!(db.drop_collection("a"));
        assert!(!db.drop_collection("a"));
    }

    #[test]
    fn aggregate_with_out_materializes() {
        let db = Database::new("test");
        let src = db.collection("src");
        for i in 0..10i64 {
            src.insert_one(doc! {"k" => i % 2, "v" => i}).unwrap();
        }
        let p = Pipeline::new()
            .group(
                GroupId::Expr(crate::agg::Expr::field("k")),
                [("total", Accumulator::sum_field("v"))],
            )
            .sort([("_id", 1)])
            .out("dst");
        let results = db.aggregate("src", &p).unwrap();
        assert_eq!(results.len(), 2);
        let dst = db.get_collection("dst").unwrap();
        assert_eq!(dst.len(), 2);
        // $out replaces on re-run rather than appending.
        db.aggregate("src", &p).unwrap();
        assert_eq!(db.get_collection("dst").unwrap().len(), 2);
    }

    #[test]
    fn database_data_size_sums_collections() {
        let db = Database::new("test");
        db.collection("a").insert_one(doc! {"x" => 1i64}).unwrap();
        db.collection("b").insert_one(doc! {"y" => "abc"}).unwrap();
        let expected = db.get_collection("a").unwrap().data_size()
            + db.get_collection("b").unwrap().data_size();
        assert_eq!(db.data_size(), expected);
        db.collection("c").find(&Filter::True); // empty collection adds 0
        assert_eq!(db.data_size(), expected);
    }
}
