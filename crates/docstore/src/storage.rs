//! Document slot storage for a collection.

use doclite_bson::{codec::encoded_size, Document};

/// Internal document identifier: a slot number in the collection's record
/// store. Stable for the life of the document (updates keep the slot).
pub type DocId = u64;

/// A slab of document slots with free-list reuse and running
/// encoded-size accounting (feeding chunk-size and load metrics).
#[derive(Debug, Default)]
pub struct Slab {
    slots: Vec<Option<Document>>,
    free: Vec<DocId>,
    live: usize,
    data_size: usize,
}

impl Slab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a document, returning its id.
    pub fn insert(&mut self, doc: Document) -> DocId {
        self.data_size += encoded_size(&doc);
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(doc);
            id
        } else {
            self.slots.push(Some(doc));
            (self.slots.len() - 1) as DocId
        }
    }

    /// Reads a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Replaces a document in place, returning the old one.
    pub fn replace(&mut self, id: DocId, doc: Document) -> Option<Document> {
        let slot = self.slots.get_mut(id as usize)?;
        let old = slot.take()?;
        self.data_size = self.data_size - encoded_size(&old) + encoded_size(&doc);
        *slot = Some(doc);
        Some(old)
    }

    /// Removes a document by id.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        let slot = self.slots.get_mut(id as usize)?;
        let old = slot.take()?;
        self.data_size -= encoded_size(&old);
        self.live -= 1;
        self.free.push(id);
        Some(old)
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live documents.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Sum of encoded sizes of live documents, in bytes.
    pub fn data_size(&self) -> usize {
        self.data_size
    }

    /// Iterates live `(id, document)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|d| (i as DocId, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let id = s.insert(doc! {"a" => 1i64});
        assert_eq!(s.len(), 1);
        assert!(s.get(id).is_some());
        assert!(s.remove(id).is_some());
        assert_eq!(s.len(), 0);
        assert!(s.get(id).is_none());
        assert!(s.remove(id).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(doc! {"a" => 1i64});
        s.remove(a);
        let b = s.insert(doc! {"b" => 2i64});
        assert_eq!(a, b);
    }

    #[test]
    fn data_size_tracks_inserts_replaces_removes() {
        let mut s = Slab::new();
        assert_eq!(s.data_size(), 0);
        let small = doc! {"a" => 1i32};
        let large = doc! {"a" => "a much longer string value for sizing"};
        let id = s.insert(small.clone());
        let after_insert = s.data_size();
        assert!(after_insert > 0);
        s.replace(id, large.clone());
        assert!(s.data_size() > after_insert);
        s.replace(id, small);
        assert_eq!(s.data_size(), after_insert);
        s.remove(id);
        assert_eq!(s.data_size(), 0);
    }

    #[test]
    fn iter_skips_holes() {
        let mut s = Slab::new();
        let a = s.insert(doc! {"i" => 0i64});
        let _b = s.insert(doc! {"i" => 1i64});
        let _c = s.insert(doc! {"i" => 2i64});
        s.remove(a);
        let ids: Vec<DocId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
