//! Document slot storage for a collection, plus the on-disk storage
//! primitives the durability subsystem builds on: a CRC32 checksum and
//! an injectable [`StorageFaults`] layer that simulates the disk-level
//! failure modes (crash mid-write, torn write, short read, transient
//! EIO) a process kill or flaky volume produces.

use doclite_bson::{codec::encoded_size, Document};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// CRC-32 (IEEE 802.3, the zlib/`crc32fast` polynomial), table-driven.
/// Used for WAL frame checksums and the `DLDUMP2` per-document trailers.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 hasher (feed chunks, then [`Crc32::finish`]).
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Fsyncs a directory, making renames and file creations inside it
/// durable. A rename without this can be undone by a power loss even
/// after the renamed file's own contents were synced.
pub fn fsync_dir(dir: &std::path::Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Injectable disk-fault state, mirroring the API shape of the sharding
/// crate's network `Faults`: explicit deterministic knobs behind one
/// relaxed-atomic fast-path guard, shared via `Arc` between the test
/// harness and the file layer under test.
///
/// Fault semantics:
///
/// * **crash-after-N-bytes** — the next writes go through until `N`
///   total bytes have passed, then the "process dies": the write that
///   crosses the budget is cut short at the boundary (a torn write) and
///   every later write fails. Models `kill -9` mid-append.
/// * **torn write** — the next single write persists only its first
///   half, then the layer crashes. Models a power cut mid-sector.
/// * **short read** — reads are truncated to half the requested length
///   once, surfacing as an `UnexpectedEof` to the reader above.
/// * **transient EIO** — the next `N` writes fail with `io::ErrorKind::
///   Other` but leave the file intact; a retry succeeds. Models a
///   flaky volume.
#[derive(Debug, Default)]
pub struct StorageFaults {
    /// Fast-path guard: true iff any fault knob is engaged.
    active: AtomicBool,
    /// Remaining write budget in bytes before a simulated crash
    /// (`u64::MAX` = disabled).
    crash_budget: AtomicU64,
    /// Whether the crash budget is armed (distinguishes "no crash
    /// configured" from "budget exhausted").
    crash_armed: AtomicBool,
    /// The next write is torn in half, then the layer crashes.
    tear_next: AtomicBool,
    /// Reads return half the requested bytes this many more times.
    short_reads: AtomicU64,
    /// Writes fail with a transient EIO this many more times.
    eio_budget: AtomicU64,
    /// Set once a simulated crash fired: all subsequent writes fail.
    crashed: AtomicBool,
}

impl StorageFaults {
    /// No faults, shareable.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn refresh_active(&self) {
        let engaged = self.crash_armed.load(Ordering::Relaxed)
            || self.tear_next.load(Ordering::Relaxed)
            || self.short_reads.load(Ordering::Relaxed) > 0
            || self.eio_budget.load(Ordering::Relaxed) > 0
            || self.crashed.load(Ordering::Relaxed);
        self.active.store(engaged, Ordering::Relaxed);
    }

    /// True iff any fault is configured — the healthy-path fast check.
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Arms a crash after `n` more bytes are written.
    pub fn crash_after_bytes(&self, n: u64) {
        self.crash_budget.store(n, Ordering::Relaxed);
        self.crash_armed.store(true, Ordering::Relaxed);
        self.refresh_active();
    }

    /// Tears the next write in half, then crashes.
    pub fn tear_next_write(&self) {
        self.tear_next.store(true, Ordering::Relaxed);
        self.refresh_active();
    }

    /// Truncates the next `n` reads to half their requested length.
    pub fn short_read_next(&self, n: u64) {
        self.short_reads.store(n, Ordering::Relaxed);
        self.refresh_active();
    }

    /// Fails the next `n` writes with a transient EIO (file untouched).
    pub fn transient_eio(&self, n: u64) {
        self.eio_budget.store(n, Ordering::Relaxed);
        self.refresh_active();
    }

    /// True once a simulated crash has fired (all writes fail until
    /// [`StorageFaults::clear`]).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Clears every fault, including a fired crash ("the process was
    /// restarted").
    pub fn clear(&self) {
        self.crash_budget.store(u64::MAX, Ordering::Relaxed);
        self.crash_armed.store(false, Ordering::Relaxed);
        self.tear_next.store(false, Ordering::Relaxed);
        self.short_reads.store(0, Ordering::Relaxed);
        self.eio_budget.store(0, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
        self.refresh_active();
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated storage crash")
    }

    /// Writes `buf` to `w` under the configured faults. On a crash or
    /// torn-write fault the surviving prefix is written (and flushed)
    /// before the error returns, so the file holds exactly what a real
    /// interrupted process would have persisted.
    pub fn write_all(&self, w: &mut impl Write, buf: &[u8]) -> io::Result<()> {
        if !self.active() {
            return w.write_all(buf);
        }
        if self.crashed.load(Ordering::Relaxed) {
            return Err(Self::crash_error());
        }
        if self.eio_budget.load(Ordering::Relaxed) > 0 {
            self.eio_budget.fetch_sub(1, Ordering::Relaxed);
            self.refresh_active();
            return Err(io::Error::other("simulated transient EIO"));
        }
        if self.tear_next.swap(false, Ordering::Relaxed) {
            w.write_all(&buf[..buf.len() / 2])?;
            w.flush()?;
            self.crashed.store(true, Ordering::Relaxed);
            self.refresh_active();
            return Err(Self::crash_error());
        }
        if self.crash_armed.load(Ordering::Relaxed) {
            let budget = self.crash_budget.load(Ordering::Relaxed);
            if (buf.len() as u64) > budget {
                w.write_all(&buf[..budget as usize])?;
                w.flush()?;
                self.crash_budget.store(0, Ordering::Relaxed);
                self.crashed.store(true, Ordering::Relaxed);
                self.refresh_active();
                return Err(Self::crash_error());
            }
            self.crash_budget.store(budget - buf.len() as u64, Ordering::Relaxed);
        }
        w.write_all(buf)
    }

    /// Reads into `buf` under the configured faults: a short-read fault
    /// fills only half the buffer and reports that length.
    pub fn read(&self, r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
        if self.active() && self.short_reads.load(Ordering::Relaxed) > 0 && buf.len() > 1 {
            self.short_reads.fetch_sub(1, Ordering::Relaxed);
            self.refresh_active();
            let half = buf.len() / 2;
            return r.read(&mut buf[..half]);
        }
        r.read(buf)
    }
}

/// Internal document identifier: a slot number in the collection's record
/// store. Stable for the life of the document (updates keep the slot).
pub type DocId = u64;

/// A slab of document slots with free-list reuse and running
/// encoded-size accounting (feeding chunk-size and load metrics).
///
/// Slots hold `Arc<Document>` so readers can snapshot a document set
/// with cheap refcount bumps and release the collection lock before
/// scanning — documents are immutable in place (updates replace the
/// whole slot), so a snapshotted `Arc` stays consistent no matter what
/// writers do to the slab afterwards.
#[derive(Debug, Default)]
pub struct Slab {
    slots: Vec<Option<Arc<Document>>>,
    free: Vec<DocId>,
    live: usize,
    data_size: usize,
}

impl Slab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a document, returning its id.
    pub fn insert(&mut self, doc: Document) -> DocId {
        self.data_size += encoded_size(&doc);
        self.live += 1;
        let doc = Arc::new(doc);
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(doc);
            id
        } else {
            self.slots.push(Some(doc));
            (self.slots.len() - 1) as DocId
        }
    }

    /// Reads a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.slots.get(id as usize).and_then(|s| s.as_deref())
    }

    /// Reads a document by id as a shared handle (a refcount bump; the
    /// handle stays valid after the collection lock is released).
    pub fn get_shared(&self, id: DocId) -> Option<Arc<Document>> {
        self.slots.get(id as usize).and_then(Clone::clone)
    }

    /// Snapshots all live documents in slot order as shared handles.
    /// O(slots) refcount bumps, no document clones; the caller can drop
    /// the collection lock and scan the snapshot at leisure.
    pub fn snapshot(&self) -> Vec<Arc<Document>> {
        self.slots.iter().filter_map(Clone::clone).collect()
    }

    /// Replaces a document in place, returning the old one.
    pub fn replace(&mut self, id: DocId, doc: Document) -> Option<Document> {
        let slot = self.slots.get_mut(id as usize)?;
        let old = slot.take()?;
        self.data_size = self.data_size - encoded_size(&old) + encoded_size(&doc);
        *slot = Some(Arc::new(doc));
        Some(Arc::unwrap_or_clone(old))
    }

    /// Removes a document by id.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        let slot = self.slots.get_mut(id as usize)?;
        let old = slot.take()?;
        self.data_size -= encoded_size(&old);
        self.live -= 1;
        self.free.push(id);
        Some(Arc::unwrap_or_clone(old))
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live documents.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Sum of encoded sizes of live documents, in bytes.
    pub fn data_size(&self) -> usize {
        self.data_size
    }

    /// Iterates live `(id, document)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|d| (i as DocId, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let id = s.insert(doc! {"a" => 1i64});
        assert_eq!(s.len(), 1);
        assert!(s.get(id).is_some());
        assert!(s.remove(id).is_some());
        assert_eq!(s.len(), 0);
        assert!(s.get(id).is_none());
        assert!(s.remove(id).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(doc! {"a" => 1i64});
        s.remove(a);
        let b = s.insert(doc! {"b" => 2i64});
        assert_eq!(a, b);
    }

    #[test]
    fn data_size_tracks_inserts_replaces_removes() {
        let mut s = Slab::new();
        assert_eq!(s.data_size(), 0);
        let small = doc! {"a" => 1i32};
        let large = doc! {"a" => "a much longer string value for sizing"};
        let id = s.insert(small.clone());
        let after_insert = s.data_size();
        assert!(after_insert > 0);
        s.replace(id, large.clone());
        assert!(s.data_size() > after_insert);
        s.replace(id, small);
        assert_eq!(s.data_size(), after_insert);
        s.remove(id);
        assert_eq!(s.data_size(), 0);
    }

    #[test]
    fn snapshot_is_immune_to_later_slab_mutation() {
        use doclite_bson::Value;
        let mut s = Slab::new();
        let a = s.insert(doc! {"i" => 0i64});
        let b = s.insert(doc! {"i" => 1i64});
        let snap = s.snapshot();
        s.remove(a);
        s.replace(b, doc! {"i" => 9i64});
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].get("i"), Some(&Value::Int64(0)));
        assert_eq!(snap[1].get("i"), Some(&Value::Int64(1)));
        assert_eq!(s.get(b).unwrap().get("i"), Some(&Value::Int64(9)));
    }

    #[test]
    fn get_shared_outlives_removal() {
        let mut s = Slab::new();
        let id = s.insert(doc! {"k" => 7i64});
        let h = s.get_shared(id).unwrap();
        let removed = s.remove(id).unwrap();
        // The shared handle forced a clone-on-unwrap; both views agree.
        assert_eq!(&*h, &removed);
        assert!(s.get_shared(id).is_none());
    }

    #[test]
    fn iter_skips_holes() {
        let mut s = Slab::new();
        let a = s.insert(doc! {"i" => 0i64});
        let _b = s.insert(doc! {"i" => 1i64});
        let _c = s.insert(doc! {"i" => 2i64});
        s.remove(a);
        let ids: Vec<DocId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn crash_after_bytes_cuts_the_crossing_write_and_kills_later_ones() {
        let f = StorageFaults::new();
        f.crash_after_bytes(10);
        let mut sink = Vec::new();
        f.write_all(&mut sink, &[1u8; 6]).unwrap();
        assert!(f.write_all(&mut sink, &[2u8; 6]).is_err());
        assert_eq!(sink.len(), 10, "crossing write torn at the byte budget");
        assert!(f.crashed());
        assert!(f.write_all(&mut sink, &[3u8; 1]).is_err(), "dead after crash");
        f.clear();
        f.write_all(&mut sink, &[4u8; 4]).unwrap();
        assert_eq!(sink.len(), 14);
    }

    #[test]
    fn torn_write_persists_half_then_crashes() {
        let f = StorageFaults::new();
        f.tear_next_write();
        let mut sink = Vec::new();
        assert!(f.write_all(&mut sink, &[7u8; 8]).is_err());
        assert_eq!(sink.len(), 4);
        assert!(f.crashed());
    }

    #[test]
    fn transient_eio_fails_without_touching_the_file() {
        let f = StorageFaults::new();
        f.transient_eio(2);
        let mut sink = Vec::new();
        assert!(f.write_all(&mut sink, b"abc").is_err());
        assert!(f.write_all(&mut sink, b"abc").is_err());
        assert!(sink.is_empty());
        f.write_all(&mut sink, b"abc").unwrap();
        assert_eq!(sink, b"abc");
        assert!(!f.crashed(), "EIO is transient, not a crash");
    }

    #[test]
    fn short_read_truncates_once() {
        let f = StorageFaults::new();
        f.short_read_next(1);
        let data = [9u8; 8];
        let mut buf = [0u8; 8];
        let n = f.read(&mut &data[..], &mut buf).unwrap();
        assert_eq!(n, 4);
        let n = f.read(&mut &data[..], &mut buf).unwrap();
        assert_eq!(n, 8);
    }
}
