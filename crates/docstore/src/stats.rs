//! Per-collection statistics for cost-based planning.
//!
//! The paper's central observation is that the winning physical strategy
//! flips with selectivity: filter the dimension and `$in`-semi-join the
//! fact when predicates are selective, full-scan otherwise. Making that
//! call requires cardinality estimates, so each collection maintains
//! per-field statistics: an exact value→count map for low-cardinality
//! fields that spills into an equi-depth histogram past
//! [`EXACT_CAP`] distinct values. Stats are maintained incrementally on
//! the write path (cheap count adjustments) and rebuilt from the slab
//! once enough writes have accumulated to make the increments drift
//! ([`CollStats::needs_rebuild`]). They serialize into the checkpoint
//! manifest so a recovered database plans as well as it did before the
//! restart.
//!
//! The process-wide [`PlannerMode`] selects between the legacy
//! rule-based planner ("any usable index prefix wins") and the
//! cost-based planner that consumes these stats; `Cost` is the default.

use crate::ordvalue::OrdValue;
use crate::query::filter::Filter;
use crate::query::planner::{conjunctive_constraints, PathConstraint};
use crate::storage::Slab;
use doclite_bson::{Document, Value};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// How plans are chosen, process-wide (mirrors `ExecMode`'s default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannerMode {
    /// Legacy rule: any usable index prefix wins, everywhere — including
    /// under `ExecMode::Columnar`, where an indexable `$match` forces
    /// the row path.
    Rule,
    /// Statistics-driven: index vs full scan (row or columnar) by
    /// estimated selectivity, `$lookup` strategy by build/probe sizes,
    /// `$in` semi-join rewrite when the dimension filter is selective.
    Cost,
}

static PLANNER_MODE: AtomicU8 = AtomicU8::new(1); // Cost

/// Sets the process-wide planner mode.
pub fn set_planner_mode(mode: PlannerMode) {
    PLANNER_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The process-wide planner mode (default [`PlannerMode::Cost`]).
pub fn planner_mode() -> PlannerMode {
    match PLANNER_MODE.load(Ordering::Relaxed) {
        0 => PlannerMode::Rule,
        _ => PlannerMode::Cost,
    }
}

static COLUMNAR_AUTO: AtomicBool = AtomicBool::new(true);

/// Enables/disables the scan-heavy columnar auto-enable heuristic
/// (default on). See `Collection::aggregate_with_mode`.
pub fn set_columnar_auto(on: bool) {
    COLUMNAR_AUTO.store(on, Ordering::Relaxed);
}

/// Whether scan-heavy collections auto-enable their columnar sidecar.
pub fn columnar_auto() -> bool {
    COLUMNAR_AUTO.load(Ordering::Relaxed)
}

/// Full `ExecMode::Columnar` scans without a sidecar before the
/// auto-enable heuristic flips it on.
pub const AUTO_COLUMNAR_SCANS: u64 = 32;
/// Minimum live documents before auto-enabling a sidecar.
pub const AUTO_COLUMNAR_MIN_DOCS: usize = 4096;

/// Distinct values an exact per-field map holds before spilling into an
/// equi-depth histogram.
pub const EXACT_CAP: usize = 256;
/// Target histogram bucket count after a spill or rebuild.
pub const HIST_BUCKETS: usize = 64;
/// Default equality selectivity for untracked fields.
pub const DEFAULT_EQ_FRACTION: f64 = 0.10;
/// Default range selectivity for untracked fields.
pub const DEFAULT_RANGE_FRACTION: f64 = 1.0 / 3.0;

/// One equi-depth histogram bucket: values in `(prev.upper, upper]`.
#[derive(Clone, Debug)]
struct Bucket {
    upper: OrdValue,
    count: u64,
    distinct: u64,
}

#[derive(Clone, Debug)]
enum Dist {
    /// Exact value → occurrence count (≤ [`EXACT_CAP`] distinct).
    Exact(BTreeMap<OrdValue, u64>),
    /// Equi-depth buckets; counts drift incrementally, distincts are
    /// frozen at build time.
    Hist(Vec<Bucket>),
}

/// Statistics for one tracked field.
#[derive(Clone, Debug)]
struct FieldStats {
    dist: Dist,
    /// Documents where the path resolves to a scalar (incl. null).
    scalar: u64,
    /// Documents where the path is absent.
    missing: u64,
    /// Documents where the path resolves to an array or sub-document.
    other: u64,
}

impl FieldStats {
    fn new() -> Self {
        FieldStats { dist: Dist::Exact(BTreeMap::new()), scalar: 0, missing: 0, other: 0 }
    }

    fn total(&self) -> u64 {
        self.scalar + self.missing + self.other
    }

    fn record(&mut self, value: Option<&Value>, delta: i64) {
        let bump = |n: &mut u64| {
            *n = if delta > 0 { n.saturating_add(1) } else { n.saturating_sub(1) }
        };
        match value {
            None => bump(&mut self.missing),
            Some(Value::Array(_) | Value::Document(_)) => bump(&mut self.other),
            Some(v) => {
                bump(&mut self.scalar);
                let key = OrdValue(v.clone());
                match &mut self.dist {
                    Dist::Exact(map) => {
                        if delta > 0 {
                            *map.entry(key).or_insert(0) += 1;
                            if map.len() > EXACT_CAP {
                                let taken = std::mem::take(map);
                                self.dist = Dist::Hist(hist_from_counts(taken));
                            }
                        } else if let Some(n) = map.get_mut(&key) {
                            *n = n.saturating_sub(1);
                            if *n == 0 {
                                map.remove(&key);
                            }
                        }
                    }
                    Dist::Hist(buckets) => {
                        if buckets.is_empty() {
                            if delta > 0 {
                                buckets.push(Bucket { upper: key, count: 1, distinct: 1 });
                            }
                            return;
                        }
                        let i = buckets
                            .partition_point(|b| b.upper < key)
                            .min(buckets.len() - 1);
                        if delta > 0 {
                            buckets[i].count = buckets[i].count.saturating_add(1);
                            if key > buckets[i].upper {
                                buckets[i].upper = key; // extend the tail bucket
                            }
                        } else {
                            buckets[i].count = buckets[i].count.saturating_sub(1);
                        }
                    }
                }
            }
        }
    }

    /// Estimated fraction of documents whose value equals `v`.
    fn eq_fraction(&self, v: &Value) -> f64 {
        let total = self.total().max(1) as f64;
        let key = OrdValue(v.clone());
        match &self.dist {
            Dist::Exact(map) => map.get(&key).copied().unwrap_or(0) as f64 / total,
            Dist::Hist(buckets) => {
                let i = buckets.partition_point(|b| b.upper < key);
                match buckets.get(i) {
                    Some(b) => b.count as f64 / b.distinct.max(1) as f64 / total,
                    None => 0.0,
                }
            }
        }
    }

    /// Estimated fraction of documents whose value lies in the range.
    fn range_fraction(
        &self,
        min: Option<&(Value, bool)>,
        max: Option<&(Value, bool)>,
    ) -> f64 {
        let total = self.total().max(1) as f64;
        let lo = match min {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(OrdValue(v.clone())),
            Some((v, false)) => Bound::Excluded(OrdValue(v.clone())),
        };
        let hi = match max {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(OrdValue(v.clone())),
            Some((v, false)) => Bound::Excluded(OrdValue(v.clone())),
        };
        if let (Some((a, ai)), Some((b, bi))) = (min, max) {
            match OrdValue(a.clone()).cmp(&OrdValue(b.clone())) {
                std::cmp::Ordering::Greater => return 0.0,
                std::cmp::Ordering::Equal if !(*ai && *bi) => return 0.0,
                _ => {}
            }
        }
        match &self.dist {
            Dist::Exact(map) => {
                let n: u64 = map.range((lo, hi)).map(|(_, c)| *c).sum();
                n as f64 / total
            }
            Dist::Hist(buckets) => {
                let mut n = 0.0;
                for (i, b) in buckets.iter().enumerate() {
                    let b_lo = if i == 0 { None } else { Some(&buckets[i - 1].upper) };
                    // Bucket entirely below the range?
                    if let Some((v, incl)) = min {
                        let mv = OrdValue(v.clone());
                        if b.upper < mv || (b.upper == mv && !incl) {
                            continue;
                        }
                    }
                    // Bucket entirely above the range?
                    if let Some((v, _)) = max {
                        let mv = OrdValue(v.clone());
                        if let Some(l) = b_lo {
                            if *l >= mv {
                                break;
                            }
                        }
                    }
                    let covers_lo = match (min, b_lo) {
                        (None, _) => true,
                        (Some((v, _)), Some(l)) => *l >= OrdValue(v.clone()),
                        (Some(_), None) => false,
                    };
                    let covers_hi = match max {
                        None => true,
                        Some((v, incl)) => {
                            let mv = OrdValue(v.clone());
                            b.upper < mv || (b.upper == mv && *incl)
                        }
                    };
                    // Boundary buckets contribute half their mass.
                    n += if covers_lo && covers_hi {
                        b.count as f64
                    } else {
                        b.count as f64 / 2.0
                    };
                }
                n / total
            }
        }
    }

    fn to_doc(&self, name: &str) -> Document {
        let mut d = Document::new();
        d.set("f", name);
        d.set("scalar", self.scalar as i64);
        d.set("missing", self.missing as i64);
        d.set("other", self.other as i64);
        match &self.dist {
            Dist::Exact(map) => {
                d.set("t", "exact");
                d.set(
                    "vals",
                    Value::Array(map.keys().map(|k| k.value().clone()).collect()),
                );
                d.set(
                    "counts",
                    Value::Array(map.values().map(|c| Value::Int64(*c as i64)).collect()),
                );
            }
            Dist::Hist(buckets) => {
                d.set("t", "hist");
                d.set(
                    "uppers",
                    Value::Array(buckets.iter().map(|b| b.upper.value().clone()).collect()),
                );
                d.set(
                    "counts",
                    Value::Array(
                        buckets.iter().map(|b| Value::Int64(b.count as i64)).collect(),
                    ),
                );
                d.set(
                    "distincts",
                    Value::Array(
                        buckets.iter().map(|b| Value::Int64(b.distinct as i64)).collect(),
                    ),
                );
            }
        }
        d
    }

    fn from_doc(d: &Document) -> Option<(String, FieldStats)> {
        let name = d.get("f")?.as_str()?.to_owned();
        let mut fs = FieldStats::new();
        fs.scalar = d.get("scalar")?.as_i64()?.max(0) as u64;
        fs.missing = d.get("missing")?.as_i64()?.max(0) as u64;
        fs.other = d.get("other")?.as_i64()?.max(0) as u64;
        let counts: Vec<u64> = d
            .get("counts")?
            .as_array()?
            .iter()
            .map(|v| v.as_i64().unwrap_or(0).max(0) as u64)
            .collect();
        match d.get("t")?.as_str()? {
            "exact" => {
                let vals = d.get("vals")?.as_array()?;
                if vals.len() != counts.len() {
                    return None;
                }
                let map = vals
                    .iter()
                    .cloned()
                    .map(OrdValue)
                    .zip(counts)
                    .collect::<BTreeMap<_, _>>();
                fs.dist = Dist::Exact(map);
            }
            "hist" => {
                let uppers = d.get("uppers")?.as_array()?;
                let distincts: Vec<u64> = d
                    .get("distincts")?
                    .as_array()?
                    .iter()
                    .map(|v| v.as_i64().unwrap_or(1).max(1) as u64)
                    .collect();
                if uppers.len() != counts.len() || uppers.len() != distincts.len() {
                    return None;
                }
                let buckets = uppers
                    .iter()
                    .zip(counts)
                    .zip(distincts)
                    .map(|((u, count), distinct)| Bucket {
                        upper: OrdValue(u.clone()),
                        count,
                        distinct,
                    })
                    .collect();
                fs.dist = Dist::Hist(buckets);
            }
            _ => return None,
        }
        Some((name, fs))
    }
}

/// Builds equi-depth buckets from an exact (sorted) value→count map.
fn hist_from_counts(map: BTreeMap<OrdValue, u64>) -> Vec<Bucket> {
    let total: u64 = map.values().sum();
    let depth = (total / HIST_BUCKETS as u64).max(1);
    let mut buckets: Vec<Bucket> = Vec::with_capacity(HIST_BUCKETS + 1);
    let mut count = 0;
    let mut distinct = 0;
    let mut last: Option<OrdValue> = None;
    for (v, c) in map {
        count += c;
        distinct += 1;
        last = Some(v);
        if count >= depth {
            buckets.push(Bucket {
                upper: last.take().expect("just set"),
                count,
                distinct,
            });
            count = 0;
            distinct = 0;
        }
    }
    if let Some(upper) = last {
        buckets.push(Bucket { upper, count, distinct });
    }
    buckets
}

/// Incrementally-maintained per-collection statistics.
#[derive(Clone, Debug, Default)]
pub struct CollStats {
    fields: BTreeMap<String, FieldStats>,
    writes_since_build: u64,
    built: bool,
}

impl CollStats {
    /// Empty stats tracking only `_id`.
    pub fn new() -> Self {
        let mut s = CollStats::default();
        s.fields.insert("_id".to_owned(), FieldStats::new());
        s
    }

    /// Registers paths to track (idempotent). Newly-registered paths
    /// force a rebuild before the next cost-based plan.
    pub fn track_fields<'a>(&mut self, paths: impl IntoIterator<Item = &'a str>) {
        for p in paths {
            if !self.fields.contains_key(p) {
                self.fields.insert(p.to_owned(), FieldStats::new());
                self.built = false;
            }
        }
    }

    /// The tracked paths.
    pub fn tracked_fields(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(String::as_str)
    }

    /// True once a full rebuild has run and no tracked field was added
    /// since.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// True when the increments have drifted enough (or a field was
    /// added) that estimates need a fresh scan.
    pub fn needs_rebuild(&self, live: usize) -> bool {
        !self.built || self.writes_since_build > (live as u64 / 4).max(1024)
    }

    /// Rebuilds every tracked field's distribution from the slab.
    pub fn rebuild(&mut self, slab: &Slab) {
        for (path, fs) in self.fields.iter_mut() {
            let mut map: BTreeMap<OrdValue, u64> = BTreeMap::new();
            let mut fresh = FieldStats::new();
            for (_, doc) in slab.iter() {
                match doc.get_path(path) {
                    None => fresh.missing += 1,
                    Some(Value::Array(_) | Value::Document(_)) => fresh.other += 1,
                    Some(v) => {
                        fresh.scalar += 1;
                        *map.entry(OrdValue(v)).or_insert(0) += 1;
                    }
                }
            }
            fresh.dist = if map.len() <= EXACT_CAP {
                Dist::Exact(map)
            } else {
                Dist::Hist(hist_from_counts(map))
            };
            *fs = fresh;
        }
        self.writes_since_build = 0;
        self.built = true;
    }

    /// Adjusts stats for an inserted document.
    pub fn record_insert(&mut self, doc: &Document) {
        self.record(doc, 1);
    }

    /// Adjusts stats for a removed document.
    pub fn record_delete(&mut self, doc: &Document) {
        self.record(doc, -1);
    }

    /// Adjusts stats for a replaced document.
    pub fn record_update(&mut self, old: &Document, new: &Document) {
        self.record(old, -1);
        self.record(new, 1);
    }

    fn record(&mut self, doc: &Document, delta: i64) {
        // Until the first rebuild the distributions are empty and every
        // estimate falls back to defaults, so incremental maintenance
        // would be pure write-path overhead — a collection that never
        // plans never pays for stats.
        if !self.built {
            return;
        }
        for (path, fs) in self.fields.iter_mut() {
            fs.record(doc.get_path(path).as_ref(), delta);
        }
        self.writes_since_build += 1;
    }

    /// Estimated fraction of documents whose `path` equals `v`
    /// (untracked paths use [`DEFAULT_EQ_FRACTION`]).
    pub fn eq_value_fraction(&self, path: &str, v: &Value) -> f64 {
        match self.fields.get(path) {
            Some(fs) if self.built => fs.eq_fraction(v),
            _ => DEFAULT_EQ_FRACTION,
        }
    }

    /// Estimated fraction of documents satisfying one path constraint.
    pub fn constraint_fraction(&self, path: &str, c: &PathConstraint) -> f64 {
        if let Some(eq) = &c.eq_set {
            if eq.is_empty() {
                return 0.0;
            }
            let sum: f64 = eq.iter().map(|v| self.eq_value_fraction(path, v)).sum();
            return sum.min(1.0);
        }
        if c.min.is_some() || c.max.is_some() {
            return match self.fields.get(path) {
                Some(fs) if self.built => fs.range_fraction(c.min.as_ref(), c.max.as_ref()),
                _ => DEFAULT_RANGE_FRACTION,
            };
        }
        1.0
    }

    /// Estimated fraction of documents satisfying a filter's conjunctive
    /// constraints, multiplied under the independence assumption.
    /// Disjunctions contribute nothing (fraction 1.0 — conservative).
    pub fn estimate_fraction(&self, filter: &Filter) -> f64 {
        if matches!(filter, Filter::True) {
            return 1.0;
        }
        let constraints = conjunctive_constraints(filter);
        let mut frac = 1.0;
        for (path, c) in &constraints {
            frac *= self.constraint_fraction(path, c);
        }
        frac.clamp(0.0, 1.0)
    }

    /// Estimated result rows for a filter over `live` documents.
    pub fn estimate_rows(&self, filter: &Filter, live: usize) -> u64 {
        (self.estimate_fraction(filter) * live as f64).round() as u64
    }

    /// Serializes into a checkpoint-manifest sub-document. Readers of
    /// older checkpoints simply miss the key and rebuild lazily.
    pub fn to_doc(&self) -> Document {
        let mut d = Document::new();
        d.set("built", self.built);
        d.set("wsb", self.writes_since_build as i64);
        d.set(
            "fields",
            Value::Array(self.fields.iter().map(|(n, fs)| Value::Document(fs.to_doc(n))).collect()),
        );
        d
    }

    /// Restores from [`CollStats::to_doc`] output; malformed input is
    /// ignored field-by-field (stats are advisory — a rebuild fixes any
    /// gap).
    pub fn from_doc(d: &Document) -> Self {
        let mut s = CollStats::new();
        s.built = d.get("built") == Some(&Value::Bool(true));
        s.writes_since_build =
            d.get("wsb").and_then(Value::as_i64).unwrap_or(0).max(0) as u64;
        if let Some(Value::Array(fields)) = d.get("fields") {
            for f in fields {
                if let Some((name, fs)) = f.as_document().and_then(FieldStats::from_doc) {
                    s.fields.insert(name, fs);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::doc;

    fn slab_of(docs: impl IntoIterator<Item = Document>) -> Slab {
        let mut s = Slab::new();
        for d in docs {
            s.insert(d);
        }
        s
    }

    fn built(slab: &Slab, fields: &[&str]) -> CollStats {
        let mut s = CollStats::new();
        s.track_fields(fields.iter().copied());
        s.rebuild(slab);
        s
    }

    #[test]
    fn exact_tier_estimates_equality_exactly() {
        let slab = slab_of((0..100).map(|i| doc! {"_id" => i as i64, "g" => (i % 10) as i64}));
        let s = built(&slab, &["g"]);
        let f = s.eq_value_fraction("g", &Value::Int64(3));
        assert!((f - 0.1).abs() < 1e-9, "{f}");
        assert_eq!(s.estimate_rows(&Filter::eq("g", 3i64), 100), 10);
    }

    #[test]
    fn spills_to_histogram_past_exact_cap() {
        let slab = slab_of((0..2000).map(|i| doc! {"_id" => i as i64, "k" => i as i64}));
        let s = built(&slab, &["k"]);
        // 2000 distinct values > EXACT_CAP → histogram; a range covering
        // half the domain should estimate roughly half the rows.
        let rows = s.estimate_rows(&Filter::lt("k", 1000i64), 2000);
        assert!((800..=1200).contains(&(rows as usize)), "{rows}");
        // Point estimate lands near 1/2000.
        let f = s.eq_value_fraction("k", &Value::Int64(500));
        assert!(f < 0.05, "{f}");
    }

    #[test]
    fn incremental_writes_track_counts() {
        let slab = slab_of((0..100).map(|i| doc! {"_id" => i as i64, "g" => (i % 10) as i64}));
        let mut s = built(&slab, &["g"]);
        for i in 100..150 {
            s.record_insert(&doc! {"_id" => i as i64, "g" => 3i64});
        }
        let f = s.eq_value_fraction("g", &Value::Int64(3));
        assert!((f - 60.0 / 150.0).abs() < 1e-9, "{f}");
        s.record_delete(&doc! {"_id" => 100i64, "g" => 3i64});
        let f = s.eq_value_fraction("g", &Value::Int64(3));
        assert!((f - 59.0 / 149.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn conjunction_multiplies_independent_fractions() {
        let slab = slab_of(
            (0..100).map(|i| doc! {"_id" => i as i64, "a" => (i % 10) as i64, "b" => (i % 4) as i64}),
        );
        let s = built(&slab, &["a", "b"]);
        let f = s.estimate_fraction(&Filter::and([
            Filter::eq("a", 1i64),
            Filter::eq("b", 2i64),
        ]));
        assert!((f - 0.1 * 0.25).abs() < 1e-6, "{f}");
    }

    #[test]
    fn roundtrips_through_manifest_doc() {
        let slab = slab_of((0..2000).map(|i| doc! {"_id" => i as i64, "k" => (i % 500) as i64}));
        let s = built(&slab, &["k"]);
        let restored = CollStats::from_doc(&s.to_doc());
        assert!(restored.is_built());
        for v in [0i64, 250, 499] {
            let a = s.eq_value_fraction("k", &Value::Int64(v));
            let b = restored.eq_value_fraction("k", &Value::Int64(v));
            assert!((a - b).abs() < 1e-9, "{v}: {a} vs {b}");
        }
    }

    #[test]
    fn rebuild_threshold_scales_with_live_count() {
        let slab = slab_of((0..10).map(|i| doc! {"_id" => i as i64}));
        let mut s = built(&slab, &[]);
        assert!(!s.needs_rebuild(10));
        for i in 0..1025 {
            s.record_insert(&doc! {"_id" => (100 + i) as i64});
        }
        assert!(s.needs_rebuild(1035));
    }

    #[test]
    fn planner_mode_knob_round_trips() {
        assert_eq!(planner_mode(), PlannerMode::Cost);
        set_planner_mode(PlannerMode::Rule);
        assert_eq!(planner_mode(), PlannerMode::Rule);
        set_planner_mode(PlannerMode::Cost);
        assert_eq!(planner_mode(), PlannerMode::Cost);
    }
}
