//! Streaming pipeline execution.
//!
//! The materializing executor in [`super::exec`] collects the full output
//! of every stage into a `Vec<Document>` before the next stage runs, so a
//! pipeline like `$match → $group` clones every matching document once
//! per stage boundary. This module executes the same stages as fused
//! iterator adapters over a [`DocStream`]: documents flow one at a time,
//! stage prefixes like `$match`/`$project`/`$skip`/`$limit` never
//! materialize anything, and — crucially — documents start as *borrowed*
//! references into collection storage and are only cloned at the first
//! stage that must produce new documents (`$project`, `$unwind`,
//! `$sort`'s surviving window, final materialization). A selective
//! `$match` therefore never clones the documents it rejects.
//!
//! `$sort` additionally fuses any directly following `$skip`/`$limit`
//! stages into a window `[start, end)` and clones only the documents
//! inside that window — the classic top-k optimization the sharded
//! router relies on for shard-side sort/limit pushdown.
//!
//! The old executor stays available behind [`ExecMode`] for equivalence
//! testing and for the ablation benchmarks.

use super::exec::LookupSource;
use super::kernel::{
    lookup_stage, unwind_parts_compiled, CompiledProject, CompiledSortSpec, GroupKernel,
};
use super::stage::Stage;
use crate::error::{Error, Result};
use crate::query::matcher::{compile, matches_compiled};
use doclite_bson::{CompiledPath, Document, Value};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Which aggregation executor a collection uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Fused iterator execution with planner pushdown of the leading
    /// `$match` run (the default).
    #[default]
    Streaming,
    /// The original materializing executor: clone out the whole
    /// collection, then run every stage over owned `Vec<Document>`s.
    /// Kept for equivalence testing and ablation benchmarks.
    Legacy,
    /// Morsel-driven parallel execution over the shared worker pool
    /// ([`super::parallel`]), with the streaming executor as the serial
    /// fallback for pipeline shapes that don't partition.
    Parallel,
    /// Vectorized batch execution over the collection's columnar
    /// sidecar ([`crate::columnar`]) for covered `$match`/`$group`/
    /// `$count` prefixes, with per-batch row fallback for exotic cells
    /// and the streaming executor for everything uncovered (including
    /// collections with no sidecar enabled).
    Columnar,
}

static DEFAULT_MODE: AtomicU8 = AtomicU8::new(0); // 0=Streaming 1=Legacy 2=Parallel 3=Columnar

/// Sets the process-wide default [`ExecMode`] (used by ablations and the
/// stress driver).
pub fn set_default_exec_mode(mode: ExecMode) {
    let v = match mode {
        ExecMode::Streaming => 0,
        ExecMode::Legacy => 1,
        ExecMode::Parallel => 2,
        ExecMode::Columnar => 3,
    };
    DEFAULT_MODE.store(v, AtomicOrdering::Relaxed);
}

/// The current process-wide default [`ExecMode`].
pub fn default_exec_mode() -> ExecMode {
    match DEFAULT_MODE.load(AtomicOrdering::Relaxed) {
        1 => ExecMode::Legacy,
        2 => ExecMode::Parallel,
        3 => ExecMode::Columnar,
        _ => ExecMode::Streaming,
    }
}

/// A stream of documents flowing through the pipeline. Documents start
/// borrowed from collection storage and are promoted to owned by the
/// first stage that has to rewrite them.
pub enum DocStream<'a> {
    /// References into collection storage (or any caller-held slice).
    Borrowed(Box<dyn Iterator<Item = &'a Document> + 'a>),
    /// Documents produced by a rewriting stage; errors flow inline so a
    /// failing expression surfaces no matter where it occurs.
    Owned(Box<dyn Iterator<Item = Result<Document>> + 'a>),
}

impl<'a> DocStream<'a> {
    /// A stream borrowing from a slice.
    pub fn from_slice(docs: &'a [Document]) -> Self {
        DocStream::Borrowed(Box::new(docs.iter()))
    }

    /// A stream owning its documents.
    pub fn from_vec(docs: Vec<Document>) -> Self {
        DocStream::Owned(Box::new(docs.into_iter().map(Ok)))
    }
}

/// The sort key of `doc` under `spec` (missing paths key as `Null`,
/// matching [`super::exec::sort_documents`]). Shared with the sharded
/// router's streaming merge.
pub fn sort_keys(doc: &Document, spec: &[(String, i32)]) -> Vec<Value> {
    spec.iter().map(|(p, _)| doc.get_path(p).unwrap_or(Value::Null)).collect()
}

/// Compares two keys produced by [`sort_keys`] under the spec's
/// directions.
pub fn compare_sort_keys(a: &[Value], b: &[Value], spec: &[(String, i32)]) -> Ordering {
    for ((va, vb), (_, dir)) in a.iter().zip(b).zip(spec) {
        let mut ord = va.canonical_cmp(vb);
        if *dir < 0 {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Runs the stages (excluding any trailing `$out`) over owned input with
/// the streaming executor. Entry point for callers that already hold
/// materialized documents (the router's merge step, equivalence tests).
pub fn execute_streaming(
    docs: Vec<Document>,
    stages: &[Stage],
    source: Option<&dyn LookupSource>,
) -> Result<Vec<Document>> {
    run_streaming(DocStream::from_vec(docs), stages, source)
}

/// Drives a [`DocStream`] through the stages and materializes the final
/// result. `$out` stages pass through untouched (the database layer
/// materializes them), mirroring the legacy executor.
pub fn run_streaming<'a>(
    mut docs: DocStream<'a>,
    stages: &'a [Stage],
    source: Option<&'a dyn LookupSource>,
) -> Result<Vec<Document>> {
    let mut i = 0;
    while i < stages.len() {
        let stage = &stages[i];
        i += 1;
        docs = match stage {
            Stage::Match(_) | Stage::Project(_) | Stage::Unwind(_) => {
                apply_per_doc_stage(docs, stage)
            }
            Stage::Skip(n) => match docs {
                DocStream::Borrowed(it) => DocStream::Borrowed(Box::new(it.skip(*n))),
                DocStream::Owned(it) => DocStream::Owned(Box::new(it.skip(*n))),
            },
            Stage::Limit(n) => match docs {
                DocStream::Borrowed(it) => DocStream::Borrowed(Box::new(it.take(*n))),
                DocStream::Owned(it) => DocStream::Owned(Box::new(it.take(*n))),
            },
            Stage::Lookup { from, local_field, foreign_field, as_field } => {
                let Some(source) = source else {
                    return Err(Error::InvalidQuery(
                        "$lookup requires a database context (use Database::aggregate)".into(),
                    ));
                };
                // $lookup is a pipeline breaker here: the input is
                // materialized so the join can run once against a hash
                // table over *borrowed* foreign documents (held in place
                // by `with_collection_docs`) instead of cloning the
                // whole foreign collection per execution.
                let input: Vec<Document> = match docs {
                    DocStream::Borrowed(it) => it.cloned().collect(),
                    DocStream::Owned(it) => it.collect::<Result<_>>()?,
                };
                DocStream::from_vec(lookup_stage(
                    input,
                    source,
                    from,
                    local_field,
                    foreign_field,
                    as_field,
                ))
            }
            Stage::Sort(spec) => {
                // Fuse directly following $skip/$limit stages into a
                // window [start, end): only window survivors get cloned.
                let mut start = 0usize;
                let mut end = usize::MAX;
                while i < stages.len() {
                    match &stages[i] {
                        Stage::Skip(m) => start = start.saturating_add(*m),
                        Stage::Limit(n) => end = end.min(start.saturating_add(*n)),
                        _ => break,
                    }
                    i += 1;
                }
                sort_window(docs, spec, start, end)?
            }
            Stage::Group { id, fields } => {
                let mut gk = GroupKernel::new(id, fields);
                match docs {
                    DocStream::Borrowed(it) => {
                        for d in it {
                            gk.feed(d)?;
                        }
                    }
                    DocStream::Owned(it) => {
                        for r in it {
                            gk.feed(&r?)?;
                        }
                    }
                }
                DocStream::from_vec(gk.finish())
            }
            Stage::Count(name) => {
                let n = match docs {
                    DocStream::Borrowed(it) => it.count(),
                    DocStream::Owned(it) => {
                        let mut n = 0usize;
                        for r in it {
                            r?;
                            n += 1;
                        }
                        n
                    }
                };
                let mut d = Document::new();
                d.set(name.clone(), Value::Int64(n as i64));
                DocStream::from_vec(vec![d])
            }
            Stage::Out(_) => docs, // materialization happens in the caller
        };
    }
    match docs {
        DocStream::Borrowed(it) => Ok(it.cloned().collect()),
        DocStream::Owned(it) => it.collect(),
    }
}

/// Applies one *per-document* stage — `$match`, `$project`, `$unwind` —
/// as a fused stream adapter. These are the stages whose output for a
/// document depends on that document alone, which is exactly what makes
/// them partitionable: the parallel executor applies the same adapters
/// per morsel.
///
/// Panics on any other stage; callers route barrier stages themselves.
pub(crate) fn apply_per_doc_stage<'a>(docs: DocStream<'a>, stage: &'a Stage) -> DocStream<'a> {
    match stage {
        Stage::Match(filter) => {
            let c = compile(filter);
            match docs {
                DocStream::Borrowed(it) => {
                    DocStream::Borrowed(Box::new(it.filter(move |d| matches_compiled(&c, d))))
                }
                DocStream::Owned(it) => DocStream::Owned(Box::new(
                    it.filter(move |r| r.as_ref().map_or(true, |d| matches_compiled(&c, d))),
                )),
            }
        }
        Stage::Project(fields) => {
            let cp = CompiledProject::new(fields);
            match docs {
                DocStream::Borrowed(it) => {
                    DocStream::Owned(Box::new(it.map(move |d| cp.apply(d))))
                }
                DocStream::Owned(it) => {
                    DocStream::Owned(Box::new(it.map(move |r| r.and_then(|d| cp.apply(&d)))))
                }
            }
        }
        Stage::Unwind(path) => {
            let path = CompiledPath::new(path.strip_prefix('$').unwrap_or(path));
            match docs {
                DocStream::Borrowed(it) => DocStream::Owned(Box::new(
                    it.flat_map(move |d| unwind_parts_compiled(d, &path).into_iter().map(Ok)),
                )),
                DocStream::Owned(it) => {
                    DocStream::Owned(Box::new(it.flat_map(move |r| match r {
                        Ok(d) => unwind_parts_compiled(&d, &path).into_iter().map(Ok).collect(),
                        Err(e) => vec![Err(e)],
                    })))
                }
            }
        }
        other => unreachable!("{other:?} is not a per-document stage"),
    }
}

/// `$sort` with a fused `[start, end)` window: the spec is compiled
/// once, keys are extracted once per document as *borrowed*
/// [`doclite_bson::Resolved`]s, an index permutation is sorted stably by
/// `(key, input position)`, and only window survivors are cloned (or
/// moved, for an already-owned stream). Identical ordering to
/// [`super::exec::sort_documents`].
fn sort_window<'a>(
    docs: DocStream<'a>,
    spec: &[(String, i32)],
    start: usize,
    end: usize,
) -> Result<DocStream<'a>> {
    let cs = CompiledSortSpec::new(spec);
    let out: Vec<Document> = match docs {
        DocStream::Borrowed(it) => {
            let docs: Vec<&Document> = it.collect();
            let window = sorted_window_indices(&cs, &docs, start, end);
            window.into_iter().map(|i| docs[i].clone()).collect()
        }
        DocStream::Owned(it) => {
            let docs: Vec<Document> = it.collect::<Result<_>>()?;
            let window = {
                let refs: Vec<&Document> = docs.iter().collect();
                sorted_window_indices(&cs, &refs, start, end)
            };
            // Move (not clone) the survivors out of the owned input.
            let mut slots: Vec<Option<Document>> = docs.into_iter().map(Some).collect();
            window
                .into_iter()
                .map(|i| slots[i].take().expect("window indices are unique"))
                .collect()
        }
    };
    Ok(DocStream::from_vec(out))
}

/// Sorts `docs` by the compiled spec (stable via index tiebreak) and
/// returns the input indices of the `[start, end)` window survivors in
/// output order. Shared with the parallel executor's per-morsel sort.
pub(crate) fn sorted_window_indices(
    cs: &CompiledSortSpec,
    docs: &[&Document],
    start: usize,
    end: usize,
) -> Vec<usize> {
    let keys: Vec<_> = docs.iter().map(|d| cs.key_refs(d)).collect();
    let mut perm: Vec<usize> = (0..docs.len()).collect();
    perm.sort_unstable_by(|&a, &b| cs.compare(&keys[a], &keys[b]).then(a.cmp(&b)));
    // A $limit followed by a larger $skip leaves start > end; clamp
    // start second so the window is empty, not inverted.
    let hi = end.min(perm.len());
    let lo = start.min(hi);
    perm[lo..hi].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::accum::Accumulator;
    use crate::agg::exec;
    use crate::agg::expr::Expr;
    use crate::agg::stage::{GroupId, Pipeline};
    use crate::query::filter::Filter;
    use doclite_bson::{array, doc};

    fn input() -> Vec<Document> {
        (0..40)
            .map(|i| {
                doc! {
                    "_id" => i as i64,
                    "grp" => (i % 4) as i64,
                    "v" => ((i * 7) % 11) as i64,
                    "tags" => array![(i % 3) as i64, "t"]
                }
            })
            .collect()
    }

    fn both(p: &Pipeline) -> (Vec<Document>, Vec<Document>) {
        let legacy = exec::execute(input(), p.stages()).unwrap();
        let streaming = execute_streaming(input(), p.stages(), None).unwrap();
        (legacy, streaming)
    }

    #[test]
    fn match_project_limit_matches_legacy() {
        let p = Pipeline::new()
            .match_stage(Filter::lt("v", 6i64))
            .project([("v", crate::agg::ProjectField::Include)])
            .skip(2)
            .limit(5);
        let (l, s) = both(&p);
        assert_eq!(l, s);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn sort_window_fusion_matches_legacy_sequence() {
        for (skip, limit) in [(0, 3), (2, 4), (5, 100), (0, 0)] {
            let p = Pipeline::new().sort([("v", -1), ("_id", 1)]).skip(skip).limit(limit);
            let (l, s) = both(&p);
            assert_eq!(l, s, "skip={skip} limit={limit}");
        }
        // skip/limit/skip chains compose the same window.
        let p = Pipeline::new().sort([("v", 1)]).skip(1).limit(10).skip(2);
        let (l, s) = both(&p);
        assert_eq!(l, s);
    }

    #[test]
    fn limit_then_larger_skip_yields_empty_window() {
        // Regression: $limit followed by a larger $skip inverts the
        // fused window (start > end); must yield [] like legacy, not
        // panic on an inverted slice range.
        let p = Pipeline::new().sort([("v", 1)]).limit(3).skip(5);
        let (l, s) = both(&p);
        assert!(l.is_empty());
        assert_eq!(l, s);
        // Same window over an Owned stream (a $project upstream of the
        // $sort forces the owned branch of sort_window).
        let p = Pipeline::new()
            .project([("v", crate::agg::ProjectField::Include)])
            .sort([("v", 1)])
            .limit(2)
            .skip(4)
            .limit(1);
        let (l, s) = both(&p);
        assert!(l.is_empty());
        assert_eq!(l, s);
    }

    #[test]
    fn sort_is_stable_like_legacy() {
        let p = Pipeline::new().sort([("grp", 1)]);
        let (l, s) = both(&p);
        assert_eq!(l, s);
    }

    #[test]
    fn group_and_count_match_legacy() {
        let p = Pipeline::new()
            .match_stage(Filter::gte("v", 3i64))
            .group(
                GroupId::Expr(Expr::field("grp")),
                [("n", Accumulator::count()), ("sum", Accumulator::sum_field("v"))],
            )
            .sort([("_id", 1)]);
        let (l, s) = both(&p);
        assert_eq!(l, s);

        let p = Pipeline::new().match_stage(Filter::eq("grp", 2i64)).count("n");
        let (l, s) = both(&p);
        assert_eq!(l, s);
    }

    #[test]
    fn unwind_matches_legacy() {
        let p = Pipeline::new().unwind("$tags").match_stage(Filter::eq("tags", 1i64));
        let (l, s) = both(&p);
        assert_eq!(l, s);
    }

    #[test]
    fn group_on_empty_input_yields_nothing() {
        let out = execute_streaming(
            vec![],
            Pipeline::new().group(GroupId::Null, [("n", Accumulator::count())]).stages(),
            None,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lookup_requires_source() {
        let err = execute_streaming(
            input(),
            Pipeline::new().lookup("other", "grp", "k", "xs").stages(),
            None,
        );
        assert!(err.is_err());
    }

    #[test]
    fn exec_mode_default_round_trips() {
        assert_eq!(default_exec_mode(), ExecMode::Streaming);
        set_default_exec_mode(ExecMode::Legacy);
        assert_eq!(default_exec_mode(), ExecMode::Legacy);
        set_default_exec_mode(ExecMode::Parallel);
        assert_eq!(default_exec_mode(), ExecMode::Parallel);
        set_default_exec_mode(ExecMode::Columnar);
        assert_eq!(default_exec_mode(), ExecMode::Columnar);
        set_default_exec_mode(ExecMode::Streaming);
        assert_eq!(default_exec_mode(), ExecMode::Streaming);
    }
}
