//! Pipeline execution over a materialized document stream.
//!
//! `$out` is not handled here — the executor returns the final stream and
//! the caller ([`crate::database::Database::aggregate`]) materializes it
//! into the target collection, because only the database knows how to
//! create collections.

use super::kernel::{
    lookup_stage, sort_documents_compiled, unwind_parts_compiled, CompiledProject,
    CompiledSortSpec, GroupKernel,
};
use super::stage::Stage;
use crate::error::Result;
use crate::query::matcher::{compile, matches_compiled};
use doclite_bson::{CompiledPath, Document, Value};

/// Size and index metadata for a `$lookup`'s foreign side, used by the
/// cost-based join-strategy choice in [`super::kernel::lookup_stage`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LookupMeta {
    /// Live documents in the foreign collection.
    pub docs: usize,
    /// Whether an index with `foreign_field` as its leading field exists
    /// (enables the index-nested-loop strategy).
    pub has_index: bool,
}

/// Supplies foreign collections to `$lookup` stages. Implemented by
/// [`crate::database::Database`]; the sharded router resolves lookups
/// against its primary shard (MongoDB likewise requires the `from`
/// collection of a `$lookup` to be unsharded).
pub trait LookupSource {
    /// All documents of a collection, or `None` if it does not exist.
    fn collection_docs(&self, name: &str) -> Option<Vec<Document>>;

    /// Foreign-side size/index metadata for a `$lookup` against
    /// `name.field`, or `None` if the source cannot provide it (the
    /// kernel then always builds the full hash table).
    fn collection_lookup_meta(&self, _name: &str, _field: &str) -> Option<LookupMeta> {
        None
    }

    /// Index-nested-loop probe: the documents of `name` whose `field`
    /// resolves canonically equal to `key`, in slab (insertion-slot)
    /// order — the same per-bucket order the hash build produces.
    /// `None` when no leading index on `field` exists. Implementations
    /// must re-check the resolved value against `key` exactly, because
    /// multikey index entries over-approximate whole-value equality.
    fn indexed_foreign_docs(&self, _name: &str, _field: &str, _key: &Value) -> Option<Vec<Document>> {
        None
    }

    /// Runs `f` over the collection's documents *borrowed* in place —
    /// the execution kernel's `$lookup` path, which builds its join
    /// table without cloning the foreign collection. `f` must be
    /// invoked exactly once; a missing collection yields an empty
    /// iterator. The default forwards to [`Self::collection_docs`]
    /// (cloning) so existing implementors stay correct.
    fn with_collection_docs(
        &self,
        name: &str,
        f: &mut dyn for<'a> FnMut(&mut (dyn Iterator<Item = &'a Document> + 'a)),
    ) {
        let docs = self.collection_docs(name).unwrap_or_default();
        f(&mut docs.iter());
    }
}

/// Runs the stages (excluding any trailing `$out`) over the input.
/// `$lookup` stages fail without a source; use [`execute_with`].
pub fn execute(docs: Vec<Document>, stages: &[Stage]) -> Result<Vec<Document>> {
    execute_with(docs, stages, None)
}

/// Runs the stages with an optional `$lookup` resolver.
pub fn execute_with(
    mut docs: Vec<Document>,
    stages: &[Stage],
    source: Option<&dyn LookupSource>,
) -> Result<Vec<Document>> {
    for stage in stages {
        docs = execute_stage(docs, stage, source)?;
    }
    Ok(docs)
}

pub(crate) fn execute_stage(
    docs: Vec<Document>,
    stage: &Stage,
    source: Option<&dyn LookupSource>,
) -> Result<Vec<Document>> {
    match stage {
        Stage::Match(filter) => {
            let compiled = compile(filter);
            Ok(docs
                .into_iter()
                .filter(|d| matches_compiled(&compiled, d))
                .collect())
        }
        Stage::Limit(n) => {
            let mut docs = docs;
            docs.truncate(*n);
            Ok(docs)
        }
        Stage::Skip(n) => Ok(docs.into_iter().skip(*n).collect()),
        Stage::Sort(spec) => {
            let mut docs = docs;
            sort_documents(&mut docs, spec);
            Ok(docs)
        }
        Stage::Count(name) => {
            let mut d = Document::new();
            d.set(name.clone(), Value::Int64(docs.len() as i64));
            Ok(vec![d])
        }
        Stage::Unwind(path) => {
            let path = CompiledPath::new(path.strip_prefix('$').unwrap_or(path));
            let mut out = Vec::with_capacity(docs.len());
            for doc in &docs {
                out.extend(unwind_parts_compiled(doc, &path));
            }
            Ok(out)
        }
        Stage::Lookup { from, local_field, foreign_field, as_field } => {
            let Some(source) = source else {
                return Err(crate::error::Error::InvalidQuery(
                    "$lookup requires a database context (use Database::aggregate)".into(),
                ));
            };
            Ok(lookup_stage(docs, source, from, local_field, foreign_field, as_field))
        }
        Stage::Project(fields) => {
            let cp = CompiledProject::new(fields);
            docs.iter().map(|d| cp.apply(d)).collect()
        }
        Stage::Group { id, fields } => {
            let mut gk = GroupKernel::new(id, fields);
            for doc in &docs {
                gk.feed(doc)?;
            }
            Ok(gk.finish())
        }
        Stage::Out(_) => Ok(docs), // materialization happens in the caller
    }
}

/// Stable multi-key sort under canonical order; missing paths sort as
/// `Null` (i.e. first ascending), matching MongoDB. Compiles the spec
/// and delegates to the kernel's decorate–sort–undecorate pass.
pub fn sort_documents(docs: &mut [Document], spec: &[(String, i32)]) {
    sort_documents_compiled(docs, &CompiledSortSpec::new(spec));
}

pub(crate) fn remove_path(doc: &mut Document, path: &str) {
    match path.split_once('.') {
        None => {
            doc.remove(path);
        }
        Some((head, rest)) => {
            if let Some(Value::Document(inner)) = doc.get_mut(head) {
                remove_path(inner, rest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::accum::Accumulator;
    use crate::agg::expr::Expr;
    use crate::agg::stage::{GroupId, Pipeline, ProjectField};
    use crate::query::filter::Filter;
    use doclite_bson::{array, doc};

    fn input() -> Vec<Document> {
        vec![
            doc! {"_id" => 1i64, "item" => "a", "qty" => 10i64, "price" => 2.5f64},
            doc! {"_id" => 2i64, "item" => "b", "qty" => 20i64, "price" => 1.0f64},
            doc! {"_id" => 3i64, "item" => "a", "qty" => 5i64, "price" => 3.0f64},
            doc! {"_id" => 4i64, "item" => "c", "qty" => 20i64, "price" => 4.0f64},
        ]
    }

    fn run(p: Pipeline) -> Vec<Document> {
        execute(input(), p.stages()).unwrap()
    }

    #[test]
    fn match_limit_skip() {
        let out = run(Pipeline::new().match_stage(Filter::gte("qty", 10i64)));
        assert_eq!(out.len(), 3);
        let out = run(Pipeline::new().skip(1).limit(2));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("_id"), Some(&Value::Int64(2)));
    }

    #[test]
    fn group_by_field_with_sum_and_avg() {
        let out = run(Pipeline::new()
            .group(
                GroupId::Expr(Expr::field("item")),
                [
                    ("total", Accumulator::sum_field("qty")),
                    ("avg_price", Accumulator::avg_field("price")),
                ],
            )
            .sort([("_id", 1)]));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("_id"), Some(&Value::from("a")));
        assert_eq!(out[0].get("total"), Some(&Value::Int64(15)));
        assert_eq!(out[0].get("avg_price"), Some(&Value::Double(2.75)));
    }

    #[test]
    fn group_null_single_bucket() {
        let out = run(Pipeline::new().group(GroupId::Null, [("n", Accumulator::count())]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n"), Some(&Value::Int64(4)));
    }

    #[test]
    fn group_on_empty_input_yields_nothing() {
        let out = execute(
            vec![],
            Pipeline::new()
                .group(GroupId::Null, [("n", Accumulator::count())])
                .stages(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn group_by_compound_document_key() {
        let out = run(Pipeline::new()
            .group(
                GroupId::Expr(Expr::Doc(vec![
                    ("i".into(), Expr::field("item")),
                    ("q".into(), Expr::field("qty")),
                ])),
                [("n", Accumulator::count())],
            )
            .sort([("_id.i", 1), ("_id.q", 1)]));
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].get_path("_id.i"), Some(Value::from("a")));
        assert_eq!(out[0].get_path("_id.q"), Some(Value::Int64(5)));
    }

    #[test]
    fn sort_multi_key_directions() {
        let out = run(Pipeline::new().sort([("qty", -1), ("item", 1)]));
        let ids: Vec<_> = out.iter().map(|d| d.get("_id").unwrap().clone()).collect();
        assert_eq!(
            ids,
            vec![Value::Int64(2), Value::Int64(4), Value::Int64(1), Value::Int64(3)]
        );
    }

    #[test]
    fn project_inclusion_keeps_id_unless_excluded() {
        let out = run(Pipeline::new().project([
            ("item", ProjectField::Include),
            (
                "value",
                ProjectField::Compute(Expr::Multiply(vec![
                    Expr::field("qty"),
                    Expr::field("price"),
                ])),
            ),
        ]));
        assert_eq!(out[0].keys().count(), 3); // _id, item, value
        assert_eq!(out[0].get("value"), Some(&Value::Double(25.0)));

        let out = run(Pipeline::new().project([
            ("_id", ProjectField::Exclude),
            ("item", ProjectField::Include),
        ]));
        assert_eq!(out[0].keys().count(), 1);
    }

    #[test]
    fn project_exclusion_mode() {
        let out = run(Pipeline::new().project([("price", ProjectField::Exclude)]));
        assert!(out[0].get("price").is_none());
        assert!(out[0].get("qty").is_some());
        assert!(out[0].get("_id").is_some());
    }

    #[test]
    fn count_stage() {
        let out = run(Pipeline::new()
            .match_stage(Filter::eq("item", "a"))
            .count("n"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n"), Some(&Value::Int64(2)));
    }

    #[test]
    fn unwind_expands_arrays_and_drops_missing() {
        let docs = vec![
            doc! {"_id" => 1i64, "tags" => array!["x", "y"]},
            doc! {"_id" => 2i64},
            doc! {"_id" => 3i64, "tags" => "scalar"},
            doc! {"_id" => 4i64, "tags" => Value::Array(vec![])},
        ];
        let out = execute(docs, Pipeline::new().unwind("$tags").stages()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("tags"), Some(&Value::from("x")));
        assert_eq!(out[1].get("tags"), Some(&Value::from("y")));
        assert_eq!(out[2].get("tags"), Some(&Value::from("scalar")));
    }

    #[test]
    fn group_keys_unify_numeric_types() {
        let docs = vec![
            doc! {"k" => 1i32, "v" => 1i64},
            doc! {"k" => 1i64, "v" => 2i64},
            doc! {"k" => 1.0f64, "v" => 3i64},
        ];
        let out = execute(
            docs,
            Pipeline::new()
                .group(
                    GroupId::Expr(Expr::field("k")),
                    [("n", Accumulator::count())],
                )
                .stages(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n"), Some(&Value::Int64(3)));
    }
}

#[cfg(test)]
mod lookup_tests {
    use super::*;
    use crate::agg::expr::Expr;
    use crate::agg::stage::{GroupId, Pipeline};
    use crate::database::Database;
    use crate::query::filter::Filter;
    use doclite_bson::{array, doc};

    fn db() -> Database {
        let db = Database::new("t");
        db.collection("orders")
            .insert_many([
                doc! {"_id" => 1i64, "item" => "a", "qty" => 2i64},
                doc! {"_id" => 2i64, "item" => "b", "qty" => 1i64},
                doc! {"_id" => 3i64, "item" => "z", "qty" => 5i64},
                doc! {"_id" => 4i64, "qty" => 9i64}, // missing item
            ])
            .unwrap();
        db.collection("inventory")
            .insert_many([
                doc! {"_id" => 1i64, "sku" => "a", "instock" => 120i64},
                doc! {"_id" => 2i64, "sku" => "b", "instock" => 80i64},
                doc! {"_id" => 3i64, "sku" => "a", "instock" => 40i64},
                doc! {"_id" => 4i64, "instock" => 0i64}, // missing sku
            ])
            .unwrap();
        db
    }

    #[test]
    fn lookup_left_outer_joins() {
        let db = db();
        let out = db
            .aggregate(
                "orders",
                &Pipeline::new()
                    .lookup("inventory", "item", "sku", "stock")
                    .sort([("_id", 1)]),
            )
            .unwrap();
        assert_eq!(out.len(), 4);
        // "a" matches two inventory docs.
        assert_eq!(out[0].get_path("stock").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(out[1].get_path("stock").unwrap().as_array().unwrap().len(), 1);
        // unmatched item keeps an empty array (left outer join)
        assert_eq!(out[2].get_path("stock").unwrap().as_array().unwrap().len(), 0);
        // missing local field joins against the missing-sku doc (null ↔ missing)
        assert_eq!(out[3].get_path("stock").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn lookup_with_array_local_field_matches_any_element() {
        let db = db();
        db.collection("carts")
            .insert_one(doc! {"_id" => 1i64, "items" => array!["a", "b"]})
            .unwrap();
        let out = db
            .aggregate("carts", &Pipeline::new().lookup("inventory", "items", "sku", "stock"))
            .unwrap();
        assert_eq!(out[0].get_path("stock").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn lookup_then_unwind_then_group_is_a_join_aggregate() {
        let db = db();
        let out = db
            .aggregate(
                "orders",
                &Pipeline::new()
                    .match_stage(Filter::exists("item"))
                    .lookup("inventory", "item", "sku", "stock")
                    .unwind("$stock")
                    .group(
                        GroupId::Expr(Expr::Field("item".into())),
                        [(
                            "total_instock",
                            crate::agg::Accumulator::sum_field("stock.instock"),
                        )],
                    )
                    .sort([("_id", 1)]),
            )
            .unwrap();
        assert_eq!(out.len(), 2); // "z" had no stock → dropped by $unwind
        assert_eq!(out[0].get("total_instock"), Some(&Value::Int64(160)));
        assert_eq!(out[1].get("total_instock"), Some(&Value::Int64(80)));
    }

    #[test]
    fn lookup_without_database_context_errors() {
        let coll = crate::collection::Collection::new("c");
        coll.insert_one(doc! {"a" => 1i64}).unwrap();
        let err = coll.aggregate(&Pipeline::new().lookup("other", "a", "b", "x"));
        assert!(err.is_err());
    }

    #[test]
    fn lookup_against_missing_collection_yields_empty_arrays() {
        let db = db();
        let out = db
            .aggregate("orders", &Pipeline::new().lookup("nope", "item", "sku", "stock"))
            .unwrap();
        assert!(out
            .iter()
            .all(|d| d.get_path("stock").unwrap().as_array().unwrap().is_empty()));
    }
}
