//! Aggregation expressions: the `$`-prefixed value language used inside
//! `$project`, `$group` keys, and accumulator arguments.
//!
//! Covers everything Appendix B of the thesis uses: field paths,
//! literals, `$cond`, comparisons, `$and`/`$or`/`$not`, arithmetic
//! (`$add`, `$subtract`, `$multiply`, `$divide`), `$in`, `$ifNull`,
//! `$concat`, and document construction (for compound `$group` ids).

use crate::error::{Error, Result};
use doclite_bson::{Document, Value};
use std::cmp::Ordering;

/// Comparison operators for expressions (`$eq` … `$lte`, `$ne`).
pub use crate::query::filter::CmpOp;

/// An aggregation expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Value),
    /// `"$a.b"` — dotted field path into the current document.
    Field(String),
    /// `{k1: e1, k2: e2}` — document constructor (compound group keys,
    /// computed sub-documents).
    Doc(Vec<(String, Expr)>),
    /// `{$cond: [if, then, else]}`.
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
    /// `{$eq|$ne|$gt|$gte|$lt|$lte: [a, b]}` — canonical-order compare.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `{$and: [..]}` (short-circuits).
    And(Vec<Expr>),
    /// `{$or: [..]}` (short-circuits).
    Or(Vec<Expr>),
    /// `{$not: [e]}`.
    Not(Box<Expr>),
    /// `{$add: [..]}` — numeric sum; Null propagates.
    Add(Vec<Expr>),
    /// `{$subtract: [a, b]}`.
    Subtract(Box<Expr>, Box<Expr>),
    /// `{$multiply: [..]}`.
    Multiply(Vec<Expr>),
    /// `{$divide: [a, b]}` — division by zero yields Null (the SQL `CASE`
    /// guard the thesis's Query 21 uses maps onto this).
    Divide(Box<Expr>, Box<Expr>),
    /// `{$in: [needle, haystack]}`.
    In(Box<Expr>, Box<Expr>),
    /// `{$ifNull: [e, fallback]}`.
    IfNull(Box<Expr>, Box<Expr>),
    /// `{$concat: [..]}` — string concatenation; Null propagates.
    Concat(Vec<Expr>),
}

impl Expr {
    /// Shorthand for a field path expression.
    pub fn field(path: impl Into<String>) -> Self {
        Expr::Field(path.into())
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Literal(v.into())
    }

    /// Shorthand for `$cond`.
    pub fn cond(cond: Expr, then: Expr, otherwise: Expr) -> Self {
        Expr::Cond { cond: Box::new(cond), then: Box::new(then), otherwise: Box::new(otherwise) }
    }

    /// Shorthand for comparison.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Self {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for `$subtract`.
    pub fn subtract(a: Expr, b: Expr) -> Self {
        Expr::Subtract(Box::new(a), Box::new(b))
    }

    /// Shorthand for `$divide`.
    pub fn divide(a: Expr, b: Expr) -> Self {
        Expr::Divide(Box::new(a), Box::new(b))
    }

    /// Evaluates against a document. Missing fields evaluate to `Null`.
    pub fn eval(&self, doc: &Document) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Field(path) => Ok(doc.get_path(path).unwrap_or(Value::Null)),
            Expr::Doc(fields) => {
                let mut out = Document::with_capacity(fields.len());
                for (k, e) in fields {
                    out.set(k.clone(), e.eval(doc)?);
                }
                Ok(Value::Document(out))
            }
            Expr::Cond { cond, then, otherwise } => {
                if cond.eval(doc)?.is_truthy() {
                    then.eval(doc)
                } else {
                    otherwise.eval(doc)
                }
            }
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(doc)?, b.eval(doc)?);
                let ord = va.canonical_cmp(&vb);
                Ok(Value::Bool(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Gte => ord != Ordering::Less,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Lte => ord != Ordering::Greater,
                }))
            }
            Expr::And(es) => {
                for e in es {
                    if !e.eval(doc)?.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(es) => {
                for e in es {
                    if e.eval(doc)?.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval(doc)?.is_truthy())),
            Expr::Add(es) => fold_numeric(es, doc, "$add", |a, b| a + b),
            Expr::Multiply(es) => fold_numeric(es, doc, "$multiply", |a, b| a * b),
            Expr::Subtract(a, b) => {
                let (va, vb) = (a.eval(doc)?, b.eval(doc)?);
                binary_numeric(&va, &vb, "$subtract", |x, y| x - y)
            }
            Expr::Divide(a, b) => {
                let (va, vb) = (a.eval(doc)?, b.eval(doc)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                let x = numeric_operand(&va, "$divide")?;
                let y = numeric_operand(&vb, "$divide")?;
                if y == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Double(x / y))
                }
            }
            Expr::In(needle, haystack) => {
                let n = needle.eval(doc)?;
                match haystack.eval(doc)? {
                    Value::Array(items) => {
                        Ok(Value::Bool(items.iter().any(|i| i.canonical_eq(&n))))
                    }
                    other => Err(Error::ExprError(format!(
                        "$in requires an array, got {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::IfNull(e, fallback) => {
                let v = e.eval(doc)?;
                if v.is_null() {
                    fallback.eval(doc)
                } else {
                    Ok(v)
                }
            }
            Expr::Concat(es) => {
                let mut out = String::new();
                for e in es {
                    match e.eval(doc)? {
                        Value::Null => return Ok(Value::Null),
                        Value::String(s) => out.push_str(&s),
                        other => {
                            return Err(Error::ExprError(format!(
                                "$concat requires strings, got {}",
                                other.type_name()
                            )))
                        }
                    }
                }
                Ok(Value::String(out))
            }
        }
    }
}

pub(crate) fn numeric_operand(v: &Value, op: &str) -> Result<f64> {
    v.as_f64().ok_or_else(|| {
        Error::ExprError(format!("{op} requires numeric operands, got {}", v.type_name()))
    })
}

pub(crate) fn binary_numeric(
    a: &Value,
    b: &Value,
    op: &str,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let (x, y) = (numeric_operand(a, op)?, numeric_operand(b, op)?);
    Ok(make_numeric(f(x, y), both_integral(a, b)))
}

fn fold_numeric(
    es: &[Expr],
    doc: &Document,
    op: &str,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    let mut acc: Option<f64> = None;
    let mut integral = true;
    for e in es {
        let v = e.eval(doc)?;
        if v.is_null() {
            return Ok(Value::Null);
        }
        integral &= is_integral(&v);
        let n = numeric_operand(&v, op)?;
        acc = Some(match acc {
            None => n,
            Some(a) => f(a, n),
        });
    }
    Ok(acc.map_or(Value::Null, |n| make_numeric(n, integral)))
}

pub(crate) fn is_integral(v: &Value) -> bool {
    matches!(v, Value::Int32(_) | Value::Int64(_))
}

fn both_integral(a: &Value, b: &Value) -> bool {
    is_integral(a) && is_integral(b)
}

pub(crate) fn make_numeric(n: f64, integral: bool) -> Value {
    if integral && n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
        Value::Int64(n as i64)
    } else {
        Value::Double(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doclite_bson::{array, doc};

    fn d() -> Document {
        doc! {"a" => 10i64, "b" => 4i64, "s" => "x", "nested" => doc!{"k" => 2i64}, "xs" => array![1i64, 2i64]}
    }

    #[test]
    fn field_and_literal() {
        assert_eq!(Expr::field("a").eval(&d()).unwrap(), Value::Int64(10));
        assert_eq!(Expr::field("nested.k").eval(&d()).unwrap(), Value::Int64(2));
        assert_eq!(Expr::field("missing").eval(&d()).unwrap(), Value::Null);
        assert_eq!(Expr::lit(5i64).eval(&d()).unwrap(), Value::Int64(5));
    }

    #[test]
    fn arithmetic_preserves_integrality() {
        let e = Expr::subtract(Expr::field("a"), Expr::field("b"));
        assert_eq!(e.eval(&d()).unwrap(), Value::Int64(6));
        let e = Expr::Add(vec![Expr::field("a"), Expr::lit(0.5f64)]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Double(10.5));
        let e = Expr::Multiply(vec![Expr::field("a"), Expr::field("b")]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Int64(40));
    }

    #[test]
    fn divide_returns_double_and_null_on_zero() {
        let e = Expr::divide(Expr::field("a"), Expr::field("b"));
        assert_eq!(e.eval(&d()).unwrap(), Value::Double(2.5));
        let e = Expr::divide(Expr::field("a"), Expr::lit(0i64));
        assert_eq!(e.eval(&d()).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = Expr::subtract(Expr::field("missing"), Expr::field("a"));
        assert_eq!(e.eval(&d()).unwrap(), Value::Null);
        let e = Expr::Add(vec![Expr::field("a"), Expr::field("missing")]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_on_strings_errors() {
        let e = Expr::Add(vec![Expr::field("s"), Expr::lit(1i64)]);
        assert!(e.eval(&d()).is_err());
    }

    #[test]
    fn cond_branches_on_truthiness() {
        let e = Expr::cond(
            Expr::cmp(CmpOp::Gt, Expr::field("a"), Expr::lit(5i64)),
            Expr::lit("big"),
            Expr::lit("small"),
        );
        assert_eq!(e.eval(&d()).unwrap(), Value::from("big"));
    }

    #[test]
    fn comparisons_cross_types_use_canonical_order() {
        // number < string in canonical order
        let e = Expr::cmp(CmpOp::Lt, Expr::field("a"), Expr::field("s"));
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(true));
        let e = Expr::cmp(CmpOp::Eq, Expr::lit(2i32), Expr::lit(2.0f64));
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn boolean_ops_short_circuit() {
        // Second operand would error, but $or short-circuits on true.
        let bad = Expr::Add(vec![Expr::field("s")]);
        let e = Expr::Or(vec![Expr::lit(true), bad.clone()]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(true));
        let e = Expr::And(vec![Expr::lit(false), bad]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(false));
        let e = Expr::Not(Box::new(Expr::lit(0i64)));
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_and_ifnull_and_concat() {
        let e = Expr::In(Box::new(Expr::lit(2i64)), Box::new(Expr::field("xs")));
        assert_eq!(e.eval(&d()).unwrap(), Value::Bool(true));
        let e = Expr::IfNull(Box::new(Expr::field("missing")), Box::new(Expr::lit(7i64)));
        assert_eq!(e.eval(&d()).unwrap(), Value::Int64(7));
        let e = Expr::Concat(vec![Expr::field("s"), Expr::lit("y")]);
        assert_eq!(e.eval(&d()).unwrap(), Value::from("xy"));
        let e = Expr::Concat(vec![Expr::field("s"), Expr::field("missing")]);
        assert_eq!(e.eval(&d()).unwrap(), Value::Null);
    }

    #[test]
    fn doc_constructor_builds_compound_keys() {
        let e = Expr::Doc(vec![
            ("x".into(), Expr::field("a")),
            ("y".into(), Expr::field("s")),
        ]);
        let v = e.eval(&d()).unwrap();
        let Value::Document(out) = v else { panic!("expected document") };
        assert_eq!(out.get("x"), Some(&Value::Int64(10)));
        assert_eq!(out.get("y"), Some(&Value::from("x")));
    }
}
