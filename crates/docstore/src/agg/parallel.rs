//! Morsel-driven parallel pipeline execution with two-phase
//! aggregation.
//!
//! The input document set is split into fixed-size contiguous ranges
//! (*morsels*). Workers from the shared pool ([`crate::pool`]) run the
//! pipeline's partitionable prefix over their morsels independently —
//! the same compiled per-document adapters the streaming executor uses
//! ([`super::stream::apply_per_doc_stage`]) feeding a morsel-local
//! terminal — and a second phase merges the per-morsel partial states
//! *in morsel order*:
//!
//! * `$group` → one [`GroupKernel`] per morsel, merged bucket-wise by
//!   canonical key bytes ([`GroupKernel::merge`]); in-order merging
//!   reproduces the serial first-appearance group order and first-seen
//!   `_id` representative.
//! * `$sort` (+ fused `$skip`/`$limit` window) → each morsel sorts
//!   locally and keeps only its top `end` documents; the survivors are
//!   concatenated in morsel order and stably re-sorted, which reproduces
//!   the serial tie order because concatenation order equals input
//!   order.
//! * `$count` → per-morsel counts sum.
//! * no terminal → per-morsel outputs concatenate.
//!
//! Anything after the partitionable prefix (a `$lookup` breaker, a
//! second `$group`, trailing window stages) runs serially on the merged
//! result via the streaming executor, and pipelines with no
//! partitionable prefix at all fall back to serial execution outright.
//!
//! **Error semantics** match serial execution exactly: each morsel
//! processes its documents sequentially, and the merge phase surfaces
//! the first error of the lowest-indexed erroring morsel — the same
//! "first error in document order" the streaming executor reports. One
//! subtlety: when the prefix is followed by a *bare* `$skip`/`$limit`
//! (no barrier in between), the serial executor's laziness means a
//! fallible `$project` may never evaluate past the limit. To keep
//! error-for-error equivalence the prefix is truncated to its leading
//! infallible stages (`$match`, `$unwind`) in that case, leaving the
//! fallible tail to the lazy serial epilogue.
//!
//! **Float caveat:** `$sum`/`$avg` over doubles merge partial f64 sums,
//! which can differ from the serial left-fold by ULP-level rounding
//! (f64 addition is not associative). Integer-valued accumulations are
//! exact in any split.

use super::exec::LookupSource;
use super::kernel::{sort_documents_compiled, CompiledSortSpec, GroupKernel};
use super::stage::Stage;
use super::stream::{apply_per_doc_stage, run_streaming, DocStream};
use crate::error::Result;
use crate::pool;
use doclite_bson::{Document, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default morsel size: 1024 documents is large enough that per-morsel
/// setup (compiling nothing — kernels compile once per morsel from the
/// shared stage slice — plus one group table) amortizes to noise, and
/// small enough that a selective `$match` still splits into plenty of
/// morsels for the pool to balance at the collection sizes the paper's
/// SF range produces.
const DEFAULT_MORSEL: usize = 1024;

static MORSEL: AtomicUsize = AtomicUsize::new(DEFAULT_MORSEL);
static MORSEL_OVERRIDDEN: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Sets the process-wide morsel size (documents per parallel task),
/// overriding the stats-driven auto-tuning. `0` restores auto-tuning.
pub fn set_parallel_morsel_size(n: usize) {
    MORSEL.store(if n == 0 { DEFAULT_MORSEL } else { n }, Ordering::Relaxed);
    MORSEL_OVERRIDDEN.store(n != 0, Ordering::Relaxed);
}

/// The current morsel size (the explicit override, or the default).
pub fn parallel_morsel_size() -> usize {
    MORSEL.load(Ordering::Relaxed)
}

/// The morsel size for a collection of `docs` live documents: the
/// explicit [`set_parallel_morsel_size`] override when one is set,
/// otherwise sized from the stats doc count so each worker sees ~4
/// morsels (enough slack for load balancing without per-morsel setup
/// dominating small collections), clamped to `[256, 8 × default]`.
pub fn auto_morsel_size(docs: usize, workers: usize) -> usize {
    if MORSEL_OVERRIDDEN.load(Ordering::Relaxed) {
        return MORSEL.load(Ordering::Relaxed);
    }
    (docs / (workers.max(1) * 4)).clamp(256, DEFAULT_MORSEL * 8)
}

/// The pipeline's terminal for the partitionable prefix.
enum Terminal<'p> {
    /// Prefix output concatenates; the rest of the pipeline follows.
    None,
    Group { id: &'p super::stage::GroupId, fields: &'p [(String, super::accum::Accumulator)] },
    Count(&'p str),
    /// `$sort` with its fused `[start, end)` window.
    Sort { spec: &'p [(String, i32)], start: usize, end: usize },
}

/// One morsel's partial result.
enum MorselOut<'p> {
    Docs(Vec<Document>),
    Group(GroupKernel<'p>),
    Count(usize),
    /// Locally sorted, truncated to the window's `end` (the global
    /// `skip` cannot be applied locally).
    Sorted(Vec<Document>),
}

/// The partitioned execution plan: a per-document prefix, a terminal,
/// and the serial remainder.
struct Plan<'p> {
    per_doc: &'p [Stage],
    terminal: Terminal<'p>,
    rest: &'p [Stage],
}

/// True for stages whose per-document application cannot fail — safe to
/// evaluate eagerly even where the serial executor would have stopped
/// early at a downstream `$limit`.
fn infallible(stage: &Stage) -> bool {
    matches!(stage, Stage::Match(_) | Stage::Unwind(_))
}

/// Splits `stages` into the longest partitionable prefix (per-document
/// run plus at most one barrier terminal) and the serial remainder.
fn plan(stages: &[Stage]) -> Plan<'_> {
    let mut i = 0;
    while i < stages.len()
        && matches!(stages[i], Stage::Match(_) | Stage::Project(_) | Stage::Unwind(_))
    {
        i += 1;
    }
    let run = &stages[..i];
    match stages.get(i) {
        Some(Stage::Group { id, fields }) => Plan {
            per_doc: run,
            terminal: Terminal::Group { id, fields },
            rest: &stages[i + 1..],
        },
        Some(Stage::Count(name)) => {
            Plan { per_doc: run, terminal: Terminal::Count(name), rest: &stages[i + 1..] }
        }
        Some(Stage::Sort(spec)) => {
            // Fuse directly following $skip/$limit stages into a window,
            // mirroring the streaming executor.
            let mut start = 0usize;
            let mut end = usize::MAX;
            let mut j = i + 1;
            while j < stages.len() {
                match &stages[j] {
                    Stage::Skip(m) => start = start.saturating_add(*m),
                    Stage::Limit(n) => end = end.min(start.saturating_add(*n)),
                    _ => break,
                }
                j += 1;
            }
            Plan {
                per_doc: run,
                terminal: Terminal::Sort { spec, start, end },
                rest: &stages[j..],
            }
        }
        // A bare $skip/$limit consumes the prefix lazily in serial
        // execution; truncate the eager prefix to its infallible lead so
        // no error surfaces that laziness would have skipped.
        Some(Stage::Skip(_)) | Some(Stage::Limit(_)) => {
            let safe = run.iter().take_while(|s| infallible(s)).count();
            Plan { per_doc: &run[..safe], terminal: Terminal::None, rest: &stages[safe..] }
        }
        // $lookup / $out / end of pipeline: no barrier to split on.
        _ => Plan { per_doc: run, terminal: Terminal::None, rest: &stages[i..] },
    }
}

/// Runs one morsel: the per-document prefix as fused borrowed-stream
/// adapters, feeding the terminal's morsel-local state. Documents are
/// processed sequentially within the morsel, so error order inside a
/// morsel is serial order.
fn run_morsel<'p>(
    morsel: &[&'p Document],
    per_doc: &'p [Stage],
    terminal: &Terminal<'p>,
) -> Result<MorselOut<'p>> {
    let mut docs = DocStream::Borrowed(Box::new(morsel.iter().copied()));
    for stage in per_doc {
        docs = apply_per_doc_stage(docs, stage);
    }
    match terminal {
        Terminal::None => Ok(MorselOut::Docs(match docs {
            DocStream::Borrowed(it) => it.cloned().collect(),
            DocStream::Owned(it) => it.collect::<Result<_>>()?,
        })),
        Terminal::Group { id, fields } => {
            let mut gk = GroupKernel::new(id, fields);
            match docs {
                DocStream::Borrowed(it) => {
                    for d in it {
                        gk.feed(d)?;
                    }
                }
                DocStream::Owned(it) => {
                    for r in it {
                        gk.feed(&r?)?;
                    }
                }
            }
            Ok(MorselOut::Group(gk))
        }
        Terminal::Count(_) => {
            let n = match docs {
                DocStream::Borrowed(it) => it.count(),
                DocStream::Owned(it) => {
                    let mut n = 0usize;
                    for r in it {
                        r?;
                        n += 1;
                    }
                    n
                }
            };
            Ok(MorselOut::Count(n))
        }
        Terminal::Sort { spec, end, .. } => {
            let mut local: Vec<Document> = match docs {
                DocStream::Borrowed(it) => it.cloned().collect(),
                DocStream::Owned(it) => it.collect::<Result<_>>()?,
            };
            let cs = CompiledSortSpec::new(spec);
            sort_documents_compiled(&mut local, &cs);
            // Keep only the local top-`end`: a document outside its own
            // morsel's first `end` cannot be in the global first `end`.
            if *end < local.len() {
                local.truncate(*end);
            }
            Ok(MorselOut::Sorted(local))
        }
    }
}

/// Merges per-morsel partials in morsel order and runs the serial
/// remainder of the pipeline.
fn merge_and_finish(
    outs: Vec<MorselOut<'_>>,
    terminal: &Terminal<'_>,
    rest: &[Stage],
    source: Option<&dyn LookupSource>,
) -> Result<Vec<Document>> {
    let merged: Vec<Document> = match terminal {
        Terminal::None => {
            let mut all = Vec::new();
            for o in outs {
                match o {
                    MorselOut::Docs(d) => all.extend(d),
                    _ => unreachable!("terminal/output mismatch"),
                }
            }
            all
        }
        Terminal::Group { .. } => {
            let mut iter = outs.into_iter().map(|o| match o {
                MorselOut::Group(gk) => gk,
                _ => unreachable!("terminal/output mismatch"),
            });
            match iter.next() {
                None => Vec::new(),
                Some(mut acc) => {
                    for gk in iter {
                        acc.merge(gk);
                    }
                    acc.finish()
                }
            }
        }
        Terminal::Count(name) => {
            let n: usize = outs
                .into_iter()
                .map(|o| match o {
                    MorselOut::Count(n) => n,
                    _ => unreachable!("terminal/output mismatch"),
                })
                .sum();
            let mut d = Document::new();
            d.set((*name).to_string(), Value::Int64(n as i64));
            vec![d]
        }
        Terminal::Sort { spec, start, end } => {
            let mut all = Vec::new();
            for o in outs {
                match o {
                    MorselOut::Sorted(d) => all.extend(d),
                    _ => unreachable!("terminal/output mismatch"),
                }
            }
            // Concatenation order equals input order, so a second stable
            // sort reproduces the serial tie order.
            let cs = CompiledSortSpec::new(spec);
            sort_documents_compiled(&mut all, &cs);
            let hi = (*end).min(all.len());
            let lo = (*start).min(hi);
            all.drain(..lo);
            all.truncate(hi - lo);
            all
        }
    };
    run_streaming(DocStream::from_vec(merged), rest, source)
}

/// Executes the pipeline over `docs` with up to `workers` workers and
/// `morsel`-document tasks, falling back to the streaming executor when
/// nothing partitions (no per-document prefix and no terminal barrier),
/// when the input is too small to split, or when `workers <= 1`.
///
/// Produces results — including error strings — identical to
/// [`run_streaming`], except for ULP-level float-sum rounding (see the
/// module docs).
pub fn run_parallel(
    docs: &[&Document],
    stages: &[Stage],
    source: Option<&dyn LookupSource>,
    workers: usize,
    morsel: usize,
) -> Result<Vec<Document>> {
    let p = plan(stages);
    let morsel = morsel.max(1);
    let serial = workers <= 1
        || docs.len() < 2 * morsel
        || (p.per_doc.is_empty() && matches!(p.terminal, Terminal::None));
    if serial {
        return run_streaming(DocStream::Borrowed(Box::new(docs.iter().copied())), stages, source);
    }

    let chunks: Vec<&[&Document]> = docs.chunks(morsel).collect();
    let slots: Vec<OnceLock<Result<MorselOut<'_>>>> =
        (0..chunks.len()).map(|_| OnceLock::new()).collect();
    pool::parallel_for(workers, chunks.len(), &|i| {
        let out = run_morsel(chunks[i], p.per_doc, &p.terminal);
        let _ = slots[i].set(out);
    });

    // Collect in morsel order; the first error seen is the serial
    // executor's first error in document order.
    let mut outs = Vec::with_capacity(chunks.len());
    for slot in slots {
        outs.push(slot.into_inner().expect("pool ran every morsel")?);
    }
    merge_and_finish(outs, &p.terminal, p.rest, source)
}

/// Test/bench entry point with explicit worker count and morsel size
/// (avoiding the process-global knobs, so concurrent test binaries
/// cannot race on configuration).
pub fn execute_parallel_with(
    docs: &[Document],
    stages: &[Stage],
    source: Option<&dyn LookupSource>,
    workers: usize,
    morsel: usize,
) -> Result<Vec<Document>> {
    let refs: Vec<&Document> = docs.iter().collect();
    run_parallel(&refs, stages, source, workers, morsel)
}

/// Executes with the process-wide worker-count and morsel-size knobs
/// ([`crate::pool::set_parallel_workers`], [`set_parallel_morsel_size`]).
pub fn execute_parallel(
    docs: &[Document],
    stages: &[Stage],
    source: Option<&dyn LookupSource>,
) -> Result<Vec<Document>> {
    execute_parallel_with(docs, stages, source, pool::parallel_workers(), parallel_morsel_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::accum::Accumulator;
    use crate::agg::expr::Expr;
    use crate::agg::stage::{GroupId, Pipeline};
    use crate::agg::stream::execute_streaming;
    use crate::query::filter::Filter;
    use doclite_bson::{array, doc};

    fn input(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                doc! {
                    "_id" => i as i64,
                    "grp" => (i % 7) as i64,
                    "v" => ((i * 13) % 23) as i64,
                    "tags" => array![(i % 3) as i64, "t"]
                }
            })
            .collect()
    }

    fn assert_equiv(p: &Pipeline, n: usize) {
        let serial = execute_streaming(input(n), p.stages(), None).unwrap();
        for workers in [2, 8] {
            for morsel in [3, 64] {
                let par =
                    execute_parallel_with(&input(n), p.stages(), None, workers, morsel).unwrap();
                assert_eq!(serial, par, "workers={workers} morsel={morsel}");
            }
        }
    }

    #[test]
    fn match_group_sort_equivalent_to_serial() {
        let p = Pipeline::new()
            .match_stage(Filter::lt("v", 18i64))
            .group(
                GroupId::Expr(Expr::field("grp")),
                [
                    ("n", Accumulator::count()),
                    ("s", Accumulator::sum_field("v")),
                    ("first", Accumulator::First(Expr::field("_id"))),
                    ("last", Accumulator::Last(Expr::field("_id"))),
                    ("set", Accumulator::AddToSet(Expr::field("v"))),
                ],
            )
            .sort([("_id", 1)]);
        assert_equiv(&p, 500);
    }

    #[test]
    fn group_order_is_first_appearance_like_serial() {
        // No trailing sort: output order must be first appearance in
        // document order, which only in-order merging reproduces.
        let p = Pipeline::new()
            .group(GroupId::Expr(Expr::field("grp")), [("n", Accumulator::count())]);
        assert_equiv(&p, 300);
    }

    #[test]
    fn sort_window_and_ties_equivalent_to_serial() {
        let p = Pipeline::new().sort([("grp", 1)]).skip(5).limit(20);
        assert_equiv(&p, 400);
        let p = Pipeline::new().sort([("v", -1), ("grp", 1)]).limit(7);
        assert_equiv(&p, 400);
        // Inverted window (limit then larger skip) must stay empty.
        let p = Pipeline::new().sort([("v", 1)]).limit(3).skip(9);
        assert_equiv(&p, 200);
    }

    #[test]
    fn unwind_count_and_plain_scan_equivalent_to_serial() {
        let p = Pipeline::new().unwind("$tags").count("n");
        assert_equiv(&p, 350);
        let p = Pipeline::new().match_stage(Filter::gte("v", 10i64));
        assert_equiv(&p, 350);
    }

    #[test]
    fn post_barrier_rest_runs_serially_and_matches() {
        // $group, then a second window + projection the merge phase must
        // hand to the serial epilogue.
        let p = Pipeline::new()
            .group(
                GroupId::Expr(Expr::field("grp")),
                [("s", Accumulator::sum_field("v"))],
            )
            .sort([("s", -1)])
            .limit(3)
            .project([("s", crate::agg::ProjectField::Include)]);
        assert_equiv(&p, 450);
    }

    #[test]
    fn bare_limit_after_fallible_project_keeps_lazy_error_semantics() {
        // The first 5 documents project cleanly; every later one would
        // error ($add over an array). Serial laziness stops after the
        // $limit's 5 outputs and succeeds — an eagerly parallel
        // $project would surface an error the serial executor never
        // produces. The plan must leave the fallible tail lazy.
        let docs: Vec<Document> = (0..200)
            .map(|i| {
                if i < 5 {
                    doc! {"_id" => i as i64, "xs" => 1i64}
                } else {
                    doc! {"_id" => i as i64, "xs" => array![1i64]}
                }
            })
            .collect();
        let stages = Pipeline::new()
            .match_stage(Filter::gte("_id", 0i64))
            .project([(
                "y",
                crate::agg::ProjectField::Compute(Expr::Add(vec![
                    Expr::field("xs"),
                    Expr::lit(1i64),
                ])),
            )])
            .limit(5);
        let serial = execute_streaming(docs.clone(), stages.stages(), None).unwrap();
        assert_eq!(serial.len(), 5);
        let par = execute_parallel_with(&docs, stages.stages(), None, 4, 8).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn errors_match_serial_including_position() {
        // Doc 57 is the first whose group-id expression fails.
        let docs: Vec<Document> = (0..300)
            .map(|i| {
                if i >= 57 && i % 10 == 7 {
                    doc! {"_id" => i as i64, "k" => array![1i64]}
                } else {
                    doc! {"_id" => i as i64, "k" => (i % 5) as i64}
                }
            })
            .collect();
        let stages = Pipeline::new().group(
            GroupId::Expr(Expr::Add(vec![Expr::field("k"), Expr::lit(1i64)])),
            [("n", Accumulator::count())],
        );
        let serial = execute_streaming(docs.clone(), stages.stages(), None).unwrap_err();
        for morsel in [4, 50] {
            let par =
                execute_parallel_with(&docs, stages.stages(), None, 8, morsel).unwrap_err();
            assert_eq!(serial.to_string(), par.to_string(), "morsel={morsel}");
        }
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let p = Pipeline::new().match_stage(Filter::gte("v", 0i64));
        let docs = input(10);
        let par = execute_parallel_with(&docs, p.stages(), None, 8, 1024).unwrap();
        let serial = execute_streaming(docs, p.stages(), None).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn morsel_size_knob_round_trips() {
        assert_eq!(parallel_morsel_size(), DEFAULT_MORSEL);
        set_parallel_morsel_size(37);
        assert_eq!(parallel_morsel_size(), 37);
        set_parallel_morsel_size(0);
        assert_eq!(parallel_morsel_size(), DEFAULT_MORSEL);
    }
}
